//! The workload driver: a chain-watching client/provider wallet.
//!
//! A [`ClientDriver`] keeps a full [`ChainTracker`] replica fed by the
//! validators' gossiped blocks — forks, equivocation bans and reorgs
//! included — and derives its next transactions from the adopted head,
//! exactly the way `fi_sim::harness` sweeps derive provider actions from
//! engine state: pending replica transfers become `File_Confirm`
//! submissions ([`fi_sim::harness::pending_confirm_candidates`]), held
//! replicas become periodic `File_Prove`s
//! ([`fi_sim::harness::held_replica_candidates`]), and the client account
//! mixes in `File_Add`s, gas-charged `File_Get` reads and occasional
//! discards. Submissions round-robin across the validator set over the
//! lossy link with bounded retransmit; whichever validator admits a tx
//! forwards it to the slot's scheduled leader, so blocks are realistic
//! mixes of all five shard-local op kinds plus `File_Add`/`AdvanceTo`
//! barriers no matter who proposes.
//!
//! Two kinds of deliberately awkward traffic fall out: the replica view
//! lags the chain, so the driver re-submits already-committed confirms
//! (rejected as duplicates or failing at commit); and providers listed in
//! [`WorkloadConfig::lazy_providers`] never submit proofs, so their
//! replicas miss audits and get slashed — the §V lazy-provider scenario,
//! driven through the real pipeline.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::{Engine, StateView};
use fi_core::ops::Op;
use fi_core::types::SectorId;
use fi_crypto::{sha256, DetRng, Hash256};
use fi_net::sim::SimTime;
use fi_net::world::{Ctx, NodeIdx, Process, Retransmitter, RetryEvent};
use fi_sim::harness::{held_replica_candidates, pending_confirm_candidates};

use crate::chain::{ChainTracker, InsertOutcome, ReplayMode};
use crate::node::{NodeMsg, RETX_TAG_BASE, TAG_SYNC};
use crate::schedule::ProposerSchedule;

/// Shape of the generated workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Submit a `File_Add` every this many slots (0 disables adds).
    pub add_every_slots: u64,
    /// Stop adding after this many files.
    pub max_files: u64,
    /// Size of each added file.
    pub file_size: u64,
    /// Sweep `File_Prove`s every this many slots (match the proof cycle).
    pub prove_every_slots: u64,
    /// Per-slot probability of a `File_Get` on a random live file.
    pub get_prob: f64,
    /// Per-slot probability of discarding a random live file.
    pub discard_prob: f64,
    /// Provider accounts that never submit proofs: their held replicas
    /// fail audits and are force-discarded — the paper's lazy providers.
    pub lazy_providers: Vec<AccountId>,
}

/// Slots before the driver may re-submit an identical op (see
/// [`ClientDriver`]'s dedup field): longer than the view lag plus a
/// round-trip, shorter than a proof cycle so recurring proofs re-admit.
pub const DEDUP_WINDOW_SLOTS: u64 = 8;

/// Distinct validators a submission is tried against before the driver
/// gives up on it (each try spends a full retransmit budget). Covers the
/// whole validator set of the chaos scenarios, so a submission survives
/// any single crash-or-partition pattern that leaves one reachable.
pub const SUBMIT_FAILOVERS: u32 = 5;

/// Retransmit attempts per validator before failing over. Deliberately
/// short: an unreachable home validator should be abandoned within a few
/// slots, because confirms and proofs are deadline-sensitive on-chain.
pub const SUBMIT_ATTEMPTS: u32 = 4;

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            add_every_slots: 2,
            max_files: 40,
            file_size: 4,
            prove_every_slots: 10,
            get_prob: 0.3,
            discard_prob: 0.02,
            lazy_providers: Vec::new(),
        }
    }
}

/// What the driver submitted and saw, readable after a run.
#[derive(Debug, Default)]
pub struct ClientReport {
    /// Transactions submitted (first transmissions, not retries).
    pub txs_submitted: u64,
    /// Submissions whose retransmit budget ran out unacknowledged.
    pub txs_given_up: u64,
    /// Blocks attached to the replica chain view.
    pub blocks_applied: u64,
    /// Reorgs the replica view went through.
    pub reorgs_observed: u64,
    /// Final replica head height.
    pub final_height: u64,
    /// Final replica head block hash.
    pub final_head: Option<Hash256>,
    /// Final replica state root.
    pub final_state_root: Option<Hash256>,
}

/// The chain-watching workload generator.
pub struct ClientDriver {
    tracker: ChainTracker,
    validators: Vec<NodeIdx>,
    sync_every: SimTime,
    retx: Retransmitter<NodeMsg>,
    /// Provider account owning each sector (from the shared genesis).
    sector_owner: HashMap<SectorId, AccountId>,
    client: AccountId,
    lazy: HashSet<AccountId>,
    nonces: HashMap<AccountId, u64>,
    /// Op digests submitted recently (digest → submission slot). A
    /// duplicate submission is rejected at admission and spends its nonce
    /// as a mempool tombstone — harmless for liveness, but pure waste —
    /// so the driver only re-submits an identical op after
    /// [`DEDUP_WINDOW_SLOTS`], by which time its earlier copy has either
    /// committed (and left every pool) or been dropped.
    recent: HashMap<Hash256, u64>,
    /// In-flight submissions by retransmit key: the transaction and how
    /// many validators have been tried, so an exhausted submission fails
    /// over to the next validator instead of dying with an unreachable
    /// one (crashed or partitioned away).
    in_flight: HashMap<u64, (crate::mempool::Tx, u32)>,
    next_key: u64,
    /// Sticky home validator per account (index into `validators`) —
    /// rotated on retransmit exhaustion (see [`SUBMIT_FAILOVERS`]).
    homes: HashMap<AccountId, usize>,
    sync_cursor: usize,
    /// Last time a `BlockRequest` went out — at most one per
    /// `sync_every`, since each can trigger a batch push whose orphans
    /// would otherwise trigger more requests.
    last_request: SimTime,
    last_acted_slot: u64,
    rng: DetRng,
    workload: WorkloadConfig,
    files_added: u64,
    report: Rc<RefCell<ClientReport>>,
}

impl ClientDriver {
    /// A driver watching every validator in `schedule`, acting for
    /// `client` and every provider in `sector_owner`, over its own
    /// `genesis` replica.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        genesis: Engine,
        schedule: ProposerSchedule,
        sector_owner: HashMap<SectorId, AccountId>,
        client: AccountId,
        seed: u64,
        sync_every: SimTime,
        workload: WorkloadConfig,
        report: Rc<RefCell<ClientReport>>,
    ) -> Self {
        let interval = genesis.params().block_interval;
        let validators = schedule.validators().to_vec();
        let lazy = workload.lazy_providers.iter().copied().collect();
        ClientDriver {
            tracker: ChainTracker::new(genesis, schedule, ReplayMode::OpByOp),
            validators,
            sync_every: sync_every.max(2),
            retx: Retransmitter::new(interval.max(2), SUBMIT_ATTEMPTS, RETX_TAG_BASE),
            sector_owner,
            client,
            lazy,
            nonces: HashMap::new(),
            recent: HashMap::new(),
            in_flight: HashMap::new(),
            next_key: 1,
            homes: HashMap::new(),
            sync_cursor: 0,
            last_request: 0,
            last_acted_slot: 0,
            rng: DetRng::from_seed_label(seed, "fi-node/client"),
            workload,
            files_added: 0,
            report,
        }
    }

    /// Submits `op` unless an identical one is still inside the dedup
    /// window (a duplicate would be rejected at admission, wasting the
    /// nonce — see the `recent` field). Each account has a sticky *home*
    /// validator so its nonce stream arrives contiguously at one pool
    /// (the admitting validator forwards to the others); scattering the
    /// stream round-robin would leave a gap in every pool whenever one
    /// forward is lost, stalling the account behind gap-aging timeouts.
    fn submit(&mut self, ctx: &mut Ctx<'_, NodeMsg>, slot: u64, from: AccountId, op: Op) {
        let digest = op.digest();
        if let Some(&at) = self.recent.get(&digest) {
            if slot.saturating_sub(at) < DEDUP_WINDOW_SLOTS {
                return;
            }
        }
        self.recent.insert(digest, slot);
        let nonce = self.nonces.entry(from).or_insert(0);
        let tx = crate::mempool::Tx {
            from,
            nonce: *nonce,
            fee: TokenAmount(1 + self.rng.below(1_000) as u128),
            op,
        };
        *nonce += 1;
        self.report.borrow_mut().txs_submitted += 1;
        self.send_submission(ctx, tx, 0);
    }

    /// Sends (or re-sends, on failover) a submission to the sender
    /// account's current home validator, tracking it for exhaustion
    /// handling.
    fn send_submission(&mut self, ctx: &mut Ctx<'_, NodeMsg>, tx: crate::mempool::Tx, tries: u32) {
        let key = self.next_key;
        self.next_key += 1;
        let home = *self
            .homes
            .entry(tx.from)
            .or_insert(tx.from.0 as usize % self.validators.len());
        let target = self.validators[home % self.validators.len()];
        let bytes = tx.wire_bytes();
        self.in_flight.insert(key, (tx.clone(), tries));
        self.retx
            .send(ctx, target, key, NodeMsg::SubmitTx { key, tx }, bytes);
    }

    /// Derives this slot's submissions from the freshly-adopted head.
    fn act(&mut self, ctx: &mut Ctx<'_, NodeMsg>, slot: u64) {
        // New files from the client account.
        if self.workload.add_every_slots > 0
            && slot.is_multiple_of(self.workload.add_every_slots)
            && self.files_added < self.workload.max_files
        {
            self.files_added += 1;
            let op = Op::FileAdd {
                client: self.client,
                size: self.workload.file_size,
                value: self.tracker.engine().params().min_value,
                merkle_root: sha256(format!("node-file-{slot}-{}", self.files_added).as_bytes()),
            };
            self.submit(ctx, slot, self.client, op);
        }
        // Confirm every transfer the replica still shows pending. Some of
        // these are already committed on-chain (the view lags); those fail
        // admission as duplicates or fail at commit — realistic traffic.
        let confirms: Vec<(AccountId, Op)> = pending_confirm_candidates(self.tracker.engine())
            .into_iter()
            .filter_map(|(f, i, s)| {
                let owner = *self.sector_owner.get(&s)?;
                Some((
                    owner,
                    Op::FileConfirm {
                        caller: owner,
                        file: f,
                        index: i,
                        sector: s,
                    },
                ))
            })
            .collect();
        for (owner, op) in confirms {
            self.submit(ctx, slot, owner, op);
        }
        // Periodic proofs for everything held — except by lazy providers,
        // whose silence the audit cycle punishes.
        if self.workload.prove_every_slots > 0
            && slot.is_multiple_of(self.workload.prove_every_slots)
        {
            let proofs: Vec<(AccountId, Op)> = held_replica_candidates(self.tracker.engine())
                .into_iter()
                .filter_map(|(f, i, s)| {
                    let owner = *self.sector_owner.get(&s)?;
                    if self.lazy.contains(&owner) {
                        return None;
                    }
                    Some((
                        owner,
                        Op::FileProve {
                            caller: owner,
                            file: f,
                            index: i,
                            sector: s,
                        },
                    ))
                })
                .collect();
            for (owner, op) in proofs {
                self.submit(ctx, slot, owner, op);
            }
        }
        // Occasional reads and discards on random live files.
        let live = self.tracker.engine().file_ids();
        if !live.is_empty() {
            if self.rng.bernoulli(self.workload.get_prob) {
                let file = live[self.rng.index(live.len())];
                self.submit(
                    ctx,
                    slot,
                    self.client,
                    Op::FileGet {
                        caller: self.client,
                        file,
                    },
                );
            }
            if live.len() > 4 && self.rng.bernoulli(self.workload.discard_prob) {
                let file = live[self.rng.index(live.len())];
                self.submit(
                    ctx,
                    slot,
                    self.client,
                    Op::FileDiscard {
                        caller: self.client,
                        file,
                    },
                );
            }
        }
    }

    /// Asks `peer` for the blocks the replica is missing, rate-limited to
    /// one request per sync interval. Like the validator's, the request
    /// carries a best-chain locator so the peer serves from just above the
    /// common ancestor even when the canonical chain diverges below this
    /// replica's own height (post-partition reorgs).
    fn request_blocks(&mut self, ctx: &mut Ctx<'_, NodeMsg>, peer: NodeIdx) {
        let now = ctx.now();
        if now < self.last_request + self.sync_every {
            return;
        }
        self.last_request = now;
        let locator = self.tracker.locator();
        let bytes = 24 + 32 * locator.len() as u64;
        ctx.send(peer, NodeMsg::BlockRequest { locator }, bytes);
    }

    /// Acts once per newly-adopted head slot (reorgs to a sibling of the
    /// same or lower slot change state but trigger no new workload — the
    /// next taller head does).
    fn act_if_advanced(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        let head_slot = self.tracker.head_slot();
        if head_slot <= self.last_acted_slot {
            return;
        }
        self.last_acted_slot = head_slot;
        // Bound the dedup memory: anything past the window can go.
        self.recent
            .retain(|_, &mut at| head_slot.saturating_sub(at) < DEDUP_WINDOW_SLOTS);
        self.act(ctx, head_slot);
    }

    /// The replica engine at the adopted head, for post-run inspection.
    pub fn replica(&self) -> &Engine {
        self.tracker.engine()
    }

    /// The full chain view, for post-run inspection.
    pub fn tracker(&self) -> &ChainTracker {
        &self.tracker
    }
}

impl Process<NodeMsg> for ClientDriver {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        ctx.set_timer(self.sync_every, TAG_SYNC);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, NodeMsg>, from: NodeIdx, msg: NodeMsg) {
        match msg {
            NodeMsg::Block { key, block } => {
                if key != 0 {
                    ctx.send(from, NodeMsg::BlockAck { key }, 24);
                }
                let reorgs_before = self.tracker.reorgs();
                match self.tracker.insert(block) {
                    InsertOutcome::Attached { .. } => {
                        let mut report = self.report.borrow_mut();
                        report.blocks_applied += 1;
                        report.reorgs_observed += self.tracker.reorgs() - reorgs_before;
                        report.final_height = self.tracker.head_height();
                        report.final_head = Some(self.tracker.head());
                        report.final_state_root = Some(self.tracker.engine().state_root());
                        drop(report);
                        self.act_if_advanced(ctx);
                    }
                    InsertOutcome::Orphaned { .. } => {
                        self.request_blocks(ctx, from);
                    }
                    _ => {}
                }
            }
            NodeMsg::TxAck { key } => {
                self.retx.ack(key);
                self.in_flight.remove(&key);
            }
            NodeMsg::Status { height, .. } if height > self.tracker.head_height() => {
                self.request_blocks(ctx, from);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NodeMsg>, tag: u64) {
        if tag == TAG_SYNC {
            let target = self.validators[self.sync_cursor % self.validators.len()];
            self.sync_cursor += 1;
            ctx.send(
                target,
                NodeMsg::Status {
                    height: self.tracker.head_height(),
                    head: self.tracker.head(),
                },
                48,
            );
            ctx.set_timer(self.sync_every, TAG_SYNC);
            return;
        }
        if let Some(RetryEvent::Exhausted { key, .. }) = self.retx.handle_timer(ctx, tag) {
            // The targeted validator stayed unreachable through the whole
            // retry budget (crashed or partitioned away): fail over to
            // the next one rather than losing the transaction — a dropped
            // proof submission can cost an honest provider its sector.
            match self.in_flight.remove(&key) {
                Some((tx, tries)) if tries + 1 < SUBMIT_FAILOVERS => {
                    // Move the whole account to the next validator, so
                    // its subsequent submissions don't queue up behind
                    // the same unreachable home.
                    let n = self.validators.len();
                    let home = self.homes.entry(tx.from).or_insert(tx.from.0 as usize % n);
                    *home = (*home + 1) % n;
                    self.send_submission(ctx, tx, tries + 1);
                }
                _ => {
                    self.report.borrow_mut().txs_given_up += 1;
                }
            }
        }
    }
}
