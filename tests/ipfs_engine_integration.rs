//! Integration: FileInsurer on top of IPFS (§II-A, §VI-F) — on-chain
//! metadata, off-chain bytes.
//!
//! The engine stores *locations and commitments*; the actual bytes live in
//! providers' block stores as Merkle DAGs, discoverable through the DHT
//! and fetched via BitSwap. This test drives both layers and checks they
//! agree.

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::{Engine, StateView};
use fi_core::params::ProtocolParams;
use fi_crypto::sha256;
use fi_ipfs::bitswap::fetch_dag;
use fi_ipfs::dag::{export_bytes, import_bytes};
use fi_ipfs::dht::{node_id, Dht};
use fi_ipfs::store::BlockStore;
use fi_porep::post::{derive_challenges, WindowPost};
use fi_porep::seal::{commit_data, PorepProof, ReplicaId, SealedReplica};

const CLIENT: AccountId = AccountId(900);
const PROVIDER_A: AccountId = AccountId(100);
const PROVIDER_B: AccountId = AccountId(101);

#[test]
fn end_to_end_store_prove_retrieve() {
    // --- on-chain layer -------------------------------------------------
    let params = ProtocolParams {
        k: 2,
        delay_per_size: 4,
        ..ProtocolParams::default()
    };
    let mut engine = Engine::new(params).unwrap();
    engine.fund(CLIENT, TokenAmount(100_000_000));
    engine.fund(PROVIDER_A, TokenAmount(1_000_000_000));
    engine.fund(PROVIDER_B, TokenAmount(1_000_000_000));
    let s_a = engine.sector_register(PROVIDER_A, 640).unwrap();
    let s_b = engine.sector_register(PROVIDER_B, 640).unwrap();

    // The file: committed on chain by its content commitment.
    let payload: Vec<u8> = (0..4096u32).map(|i| (i % 241) as u8).collect();
    let comm_d = commit_data(&payload);
    let file = engine
        .file_add(CLIENT, 16, TokenAmount(1_000), comm_d)
        .unwrap();

    // --- off-chain layer: providers seal and store real bytes -----------
    // Each confirmed replica is a unique PoRep sealing bound to its sector.
    let mut replicas = Vec::new();
    for (idx, sector) in engine.pending_confirms(file) {
        let owner = engine.sector(sector).unwrap().owner;
        let tag = sha256(format!("{sector}").as_bytes());
        let rid = ReplicaId::derive(&comm_d, &tag, idx);
        let (replica, proof) = PorepProof::create(&payload, rid);
        assert!(proof.verify(), "sealing proof valid");
        assert_eq!(proof.comm_d, comm_d, "bound to the on-chain commitment");
        engine.file_confirm(owner, file, idx, sector).unwrap();
        replicas.push((sector, replica));
    }
    engine.advance_to(engine.now() + 64);
    assert!(engine.file(file).is_some(), "file stored on chain");

    // --- WindowPoSt against the chain beacon -----------------------------
    let beacon = engine.chain().current_beacon_value();
    for (_, replica) in &replicas {
        let ch = derive_challenges(&beacon, &replica.comm_r(), 4, replica.chunk_count());
        let post = WindowPost::respond(replica, &ch);
        assert!(post.verify(&replica.comm_r(), &ch));
    }
    // And the chain records the proofs.
    engine.honest_providers_act();
    assert!(engine.stats().proofs_accepted >= 2);

    // --- retrieval market: DHT + BitSwap ---------------------------------
    // Providers unseal and serve the raw file as a Merkle DAG.
    let mut store_a = BlockStore::new();
    let unsealed = replicas[0].1.unseal();
    assert_eq!(unsealed, payload, "unsealing recovers the file");
    let root_cid = import_bytes(&mut store_a, &unsealed, 512);
    let store_b = store_a.clone();

    let mut dht = Dht::new(8, 3);
    for i in 0..32 {
        dht.join(node_id(i));
    }
    dht.provide(node_id(1), root_cid);
    dht.provide(node_id(2), root_cid);

    // The client asks the chain who holds the file, then the DHT, then
    // fetches.
    let holders = engine.file_get(CLIENT, file).unwrap();
    assert_eq!(holders.len(), 2);
    assert!(holders.iter().any(|&(s, _)| s == s_a || s == s_b));

    let found = dht.find_providers(node_id(30), root_cid);
    assert_eq!(found.providers.len(), 2);

    let mut client_store = BlockStore::new();
    let stats = fetch_dag(&mut client_store, &[&store_a, &store_b], root_cid).unwrap();
    assert!(stats.corrupt_blocks == 0);
    assert_eq!(export_bytes(&client_store, root_cid).unwrap(), payload);
}

#[test]
fn sybil_provider_cannot_reuse_one_replica_for_two_sectors() {
    // The DRep Sybil-resistance argument, end to end: replicas for
    // different sectors have different commitments, and a PoSt response
    // computed from the wrong sealing does not verify.
    let payload = vec![7u8; 2048];
    let comm_d = commit_data(&payload);
    let tag_a = sha256(b"sector-a");
    let tag_b = sha256(b"sector-b");
    let rid_a = ReplicaId::derive(&comm_d, &tag_a, 0);
    let rid_b = ReplicaId::derive(&comm_d, &tag_b, 0);
    let rep_a = SealedReplica::seal(&payload, rid_a);
    let rep_b = SealedReplica::seal(&payload, rid_b);
    assert_ne!(rep_a.comm_r(), rep_b.comm_r());

    // The cheater stores only replica A but registered commitment B.
    let beacon = sha256(b"challenge-round");
    let ch = derive_challenges(&beacon, &rep_b.comm_r(), 6, rep_b.chunk_count());
    let forged = WindowPost::respond(&rep_a, &ch);
    assert!(
        !forged.verify(&rep_b.comm_r(), &ch),
        "one physical copy cannot answer for two replica commitments"
    );
}
