//! Verifies Theorem 4: the deposit ratio sufficient for full compensation.

use fi_sim::deposit::{paper_example_bound, render, run_sweep};
use fi_sim::robustness::RobustnessConfig;
use fi_sim::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let config = RobustnessConfig::for_scale(scale);
    println!(
        "{}",
        fi_bench::banner(
            "Theorem 4 — deposit ratio for full compensation",
            "FileInsurer (ICDCS'22), Theorem 4 / §V-B.4"
        )
    );
    println!(
        "paper example: k=20, Ns=1e6, capPara=1e3, lambda=0.5 => gamma_deposit = {:.4}\n",
        paper_example_bound()
    );
    let rows = run_sweep(&config, &[4, 10, 20], &[0.1, 0.3, 0.5, 0.7]);
    println!("{}", render(&rows));
    println!("expected shape: 'covered' = yes everywhere (the bound always dominates the");
    println!("empirically required ratio); required ratios shrink rapidly with k.");
}
