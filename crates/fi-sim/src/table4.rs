//! Table IV: the five-protocol comparison, *measured* rather than claimed.
//!
//! For each model in `fi-baselines` the experiment measures:
//!
//! * **Capacity scalability** — per-node share of the workload as the
//!   network grows from `Ns` to `2·Ns` nodes (a scalable DSN halves it);
//! * **Sybil resistance** — extra value an adversary destroys when it may
//!   back many logical nodes with one physical store (Sybil collapse),
//!   versus the honest-identity network, at the same capacity budget;
//! * **Robustness** — `γ_lost` under the greedy adversary at `λ = 0.5`,
//!   compared (for FileInsurer) against the Theorem 3 bound;
//! * **Compensation** — fraction of lost value returned to clients.
//!
//! The rendered table reproduces the qualitative Yes/No rows of the paper
//! plus the quantitative evidence behind each cell.

use fi_analysis::theorems::{theorem3_gamma_lost_bound, RobustnessParams, SECURITY_PARAMETER};
use fi_baselines::sia::SiaModel;
use fi_baselines::{
    all_models, corrupt_nodes, evaluate_loss, AdversaryStrategy, Compensation, DsnModel, FileSpec,
    NetworkSpec,
};
use fi_crypto::DetRng;

use crate::report::{sci, TextTable};
use crate::Scale;

/// Measured behaviour of one protocol.
#[derive(Debug, Clone)]
pub struct ProtocolRow {
    /// Protocol name.
    pub name: &'static str,
    /// Per-node share at Ns and at 2·Ns (scalability evidence).
    pub per_node_share: (f64, f64),
    /// γ_lost at λ=0.5 greedy, honest identities.
    pub gamma_lost_honest: f64,
    /// γ_lost at the *same physical budget* with Sybil identities
    /// (equals the honest number for Sybil-resistant protocols).
    pub gamma_lost_sybil: f64,
    /// Fraction of lost value compensated.
    pub compensation_ratio: f64,
    /// Qualitative flags (claimed — asserted against measurements).
    pub sybil_resistant: bool,
    /// Whether a loss bound is proven (FileInsurer only).
    pub provable: bool,
    /// Theorem 3 bound when `provable` (else `None`).
    pub bound: Option<f64>,
}

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct Table4Config {
    /// Node count.
    pub ns: usize,
    /// File count.
    pub nv: usize,
    /// Replication parameter `k`.
    pub k: u32,
    /// Sybil factor (logical nodes per physical entity) for the Sybil test.
    pub sybil_factor: u32,
    /// Adversary budget λ.
    pub lambda: f64,
    /// Seed.
    pub seed: u64,
}

impl Table4Config {
    /// Scale-dependent defaults.
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Table4Config {
                ns: 2_000,
                nv: 20_000,
                k: 8,
                sybil_factor: 8,
                lambda: 0.5,
                seed: 0x7A_B1E4,
            },
            Scale::Default => Table4Config {
                ns: 400,
                nv: 4_000,
                k: 8,
                sybil_factor: 8,
                lambda: 0.5,
                seed: 0x7A_B1E4,
            },
        }
    }
}

fn workload(nv: usize) -> Vec<FileSpec> {
    (0..nv)
        .map(|_| FileSpec {
            size: 1,
            value: 1.0,
        })
        .collect()
}

fn per_node_share(model: &dyn DsnModel, ns: usize, files: &[FileSpec], seed: u64) -> f64 {
    let net = NetworkSpec::uniform(ns, 64);
    let mut rng = DetRng::from_seed_label(seed, &format!("share/{}/{}", model.name(), ns));
    let placement = model.place(&net, files, &mut rng);
    let total_pieces: usize = placement.locations.iter().map(|l| l.len()).sum();
    total_pieces as f64 / ns as f64 / files.len() as f64
}

/// Runs the comparison for every model.
pub fn run(config: &Table4Config) -> Vec<ProtocolRow> {
    let files = workload(config.nv);
    let models = all_models(config.k);
    let net = NetworkSpec::uniform(config.ns, 64);
    models
        .iter()
        .map(|model| {
            let mut rng = DetRng::from_seed_label(config.seed, &format!("t4/{}", model.name()));
            let placement = model.place(&net, &files, &mut rng);

            // Honest-identity greedy corruption.
            let mut adv_rng =
                DetRng::from_seed_label(config.seed, &format!("t4adv/{}", model.name()));
            let corrupted = corrupt_nodes(
                &net,
                &placement,
                &files,
                config.lambda,
                AdversaryStrategy::GreedyKill,
                false,
                &mut adv_rng,
            );
            let honest = evaluate_loss(&net, &placement, &files, &corrupted);

            // Sybil corruption: vulnerable protocols face a collapsed
            // entity structure (many logical nodes per physical store).
            let gamma_sybil = if model.sybil_vulnerable() {
                let sia = SiaModel::new(config.k, config.sybil_factor);
                let sybil_net = sia.sybilize(&net);
                let mut srng =
                    DetRng::from_seed_label(config.seed, &format!("t4syb/{}", model.name()));
                let c = corrupt_nodes(
                    &sybil_net,
                    &placement,
                    &files,
                    config.lambda,
                    AdversaryStrategy::GreedyKill,
                    true,
                    &mut srng,
                );
                evaluate_loss(&sybil_net, &placement, &files, &c).gamma_lost()
            } else {
                honest.gamma_lost()
            };

            // Compensation.
            let deposit_pool = match model.compensation() {
                Compensation::Full { deposit_ratio } => {
                    // Pool = confiscated deposits of corrupted capacity:
                    // λ' · γ_deposit · total value carried.
                    let lambda_eff = honest.corrupted_capacity as f64 / net.total_capacity() as f64;
                    lambda_eff * deposit_ratio * (config.nv as f64) * 1_000.0
                }
                _ => 0.0,
            };
            let compensated = model.compensate(honest.lost_value, deposit_pool);
            let compensation_ratio = if honest.lost_value > 0.0 {
                compensated / honest.lost_value
            } else {
                match model.compensation() {
                    Compensation::Full { .. } => 1.0,
                    Compensation::Limited { recovered_fraction } => recovered_fraction,
                    Compensation::None => 0.0,
                }
            };

            let bound = model.provable_robustness().then(|| {
                theorem3_gamma_lost_bound(
                    &RobustnessParams {
                        n_s: config.ns as f64,
                        k: config.k as f64,
                        cap_para: 1_000.0,
                        lambda: config.lambda,
                        c: SECURITY_PARAMETER,
                    },
                    0.005,
                )
                .min(1.0)
            });

            ProtocolRow {
                name: model.name(),
                per_node_share: (
                    per_node_share(model.as_ref(), config.ns, &files, config.seed),
                    per_node_share(model.as_ref(), config.ns * 2, &files, config.seed),
                ),
                gamma_lost_honest: honest.gamma_lost(),
                gamma_lost_sybil: gamma_sybil,
                compensation_ratio,
                sybil_resistant: !model.sybil_vulnerable(),
                provable: model.provable_robustness(),
                bound,
            }
        })
        .collect()
}

/// Renders the paper-style Yes/No table followed by the measurements.
pub fn render(rows: &[ProtocolRow]) -> String {
    let mut qual = TextTable::new(vec![
        "Property",
        "FileInsurer",
        "Filecoin",
        "Arweave",
        "Storj",
        "Sia",
    ]);
    let by_name = |name: &str| rows.iter().find(|r| r.name == name).expect("model present");
    let order = ["FileInsurer", "Filecoin", "Arweave", "Storj", "Sia"];
    let yesno = |b: bool| if b { "Yes" } else { "No" }.to_string();
    qual.row({
        let mut v = vec!["Capacity Scalability".to_string()];
        v.extend(order.iter().map(|n| {
            let r = by_name(n);
            yesno(r.per_node_share.1 < r.per_node_share.0 * 0.7)
        }));
        v
    });
    qual.row({
        let mut v = vec!["Preventing Sybil Attacks".to_string()];
        v.extend(order.iter().map(|n| yesno(by_name(n).sybil_resistant)));
        v
    });
    qual.row({
        let mut v = vec!["Provable Robustness".to_string()];
        v.extend(order.iter().map(|n| yesno(by_name(n).provable)));
        v
    });
    qual.row({
        let mut v = vec!["Compensation for File Loss".to_string()];
        v.extend(order.iter().map(|n| {
            let r = by_name(n);
            if r.compensation_ratio >= 0.999 {
                "Yes".to_string()
            } else if r.compensation_ratio > 0.0 {
                "No[1]".to_string()
            } else {
                "No".to_string()
            }
        }));
        v
    });

    let mut quant = TextTable::new(vec![
        "protocol",
        "share/node @Ns",
        "share/node @2Ns",
        "gamma_lost greedy λ=0.5",
        "gamma_lost sybil",
        "compensated/lost",
        "Thm-3 bound",
    ]);
    for name in order {
        let r = by_name(name);
        quant.row(vec![
            r.name.to_string(),
            sci(r.per_node_share.0),
            sci(r.per_node_share.1),
            sci(r.gamma_lost_honest),
            sci(r.gamma_lost_sybil),
            format!("{:.2}", r.compensation_ratio),
            r.bound.map(sci).unwrap_or_else(|| "-".to_string()),
        ]);
    }

    format!(
        "{}\n[1] Provides only limited file loss compensation\n\nmeasured evidence\n{}",
        qual.render(),
        quant.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Table4Config {
        Table4Config {
            ns: 120,
            nv: 1_000,
            k: 6,
            sybil_factor: 6,
            lambda: 0.5,
            seed: 5,
        }
    }

    #[test]
    fn fileinsurer_dominates_comparison() {
        let rows = run(&tiny());
        let fi = rows.iter().find(|r| r.name == "FileInsurer").unwrap();
        // Full compensation, bound satisfied.
        assert!(fi.compensation_ratio >= 0.999);
        if let Some(bound) = fi.bound {
            assert!(fi.gamma_lost_honest <= bound + 1e-9);
        }
        // Everyone else compensates strictly less.
        for r in rows.iter().filter(|r| r.name != "FileInsurer") {
            assert!(
                r.compensation_ratio < 0.999,
                "{}: {}",
                r.name,
                r.compensation_ratio
            );
        }
    }

    #[test]
    fn sia_suffers_under_sybil() {
        let rows = run(&tiny());
        let sia = rows.iter().find(|r| r.name == "Sia").unwrap();
        assert!(
            sia.gamma_lost_sybil > sia.gamma_lost_honest,
            "sybil {} vs honest {}",
            sia.gamma_lost_sybil,
            sia.gamma_lost_honest
        );
        // Sybil-resistant protocols see no such amplification.
        let fi = rows.iter().find(|r| r.name == "FileInsurer").unwrap();
        assert_eq!(fi.gamma_lost_sybil, fi.gamma_lost_honest);
    }

    #[test]
    fn all_protocols_scale_capacity() {
        // Doubling the network halves per-node share for every model
        // (Table IV row 1 is Yes across the board).
        let rows = run(&tiny());
        for r in &rows {
            assert!(
                r.per_node_share.1 < r.per_node_share.0 * 0.7,
                "{}: {:?}",
                r.name,
                r.per_node_share
            );
        }
    }

    #[test]
    fn render_matches_paper_layout() {
        let rows = run(&tiny());
        let text = render(&rows);
        assert!(text.contains("Capacity Scalability"));
        assert!(text.contains("Preventing Sybil Attacks"));
        assert!(text.contains("Provable Robustness"));
        assert!(text.contains("Compensation for File Loss"));
        assert!(text.contains("limited file loss compensation"));
    }
}
