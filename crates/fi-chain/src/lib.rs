//! Minimal deterministic blockchain substrate.
//!
//! FileInsurer "could be an independent blockchain or a decentralized
//! application parasitic on existing blockchains" (paper §III). Its state —
//! the allocation table, the pending list, deposits, rent, compensation —
//! lives *in consensus*. This crate provides exactly the consensus-side
//! machinery the protocol consumes, with consensus security **assumed** as
//! in the paper (§V-A: "the issue of consensus security is not the target
//! of this paper"):
//!
//! * [`account`] — token ledger with conservation-checked mint/burn/transfer
//!   and escrow sub-accounts (deposits, rent pool, prepaid gas);
//! * [`gas`] — gas metering with a fee schedule, including the *prepaid*
//!   gas FileInsurer requires for `Auto_*` tasks (§IV-A.3);
//! * [`tasks`] — the pending list (`time → [task]`, Fig. 1) executed
//!   automatically when block time reaches each entry;
//! * [`block`] — block production: height, timestamp, event log, state
//!   commitment, and a per-height random beacon.
//!
//! The chain is single-producer and deterministic: every honest replica of
//! the simulation derives identical state. That is precisely the abstraction
//! level of the paper's analysis.
//!
//! # Example
//!
//! ```
//! use fi_chain::account::{AccountId, Ledger, TokenAmount};
//!
//! let mut ledger = Ledger::new();
//! let alice = AccountId(1);
//! let bob = AccountId(2);
//! ledger.mint(alice, TokenAmount(1_000));
//! ledger.transfer(alice, bob, TokenAmount(250)).unwrap();
//! assert_eq!(ledger.balance(bob), TokenAmount(250));
//! assert_eq!(ledger.total_supply(), TokenAmount(1_000));
//! ```

pub mod account;
pub mod block;
pub mod gas;
pub mod tasks;

pub use account::{AccountId, Ledger, LedgerError, TokenAmount};
pub use block::{Block, BlockChain, ChainEvent};
pub use gas::{GasError, GasMeter, GasSchedule, Op};
pub use tasks::{PendingList, Scheduler, SchedulerKind, TaskWheel};
