//! Reed–Solomon encode/reconstruct throughput (§VI-C machinery).
//!
//! Every group measures the flat-buffer fast path (`*_flat` /
//! `*_into`) next to the frozen seed implementation
//! (`fi_erasure::reference`) so the speedup is measured, not asserted:
//! `erasure/encode` vs `erasure/encode-seed`, `erasure/reconstruct` vs
//! `erasure/reconstruct-seed`.
//!
//! Payloads and case geometry are shared with the CI snapshot binary via
//! [`fi_bench::erasure_cases`], so both report on identical inputs.

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fi_bench::erasure_cases::{patterns, payload, ENCODE_GRID, KIB, MIB, RECONSTRUCT_GRID};
use fi_erasure::reference::RefReedSolomon;
use fi_erasure::{ReedSolomon, ShardSet};

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/encode");
    for &(data, parity, bytes) in ENCODE_GRID {
        let rs = ReedSolomon::new(data, parity).unwrap();
        let buf = payload(bytes);
        group.throughput(Throughput::Bytes(bytes as u64));
        // Steady-state shape: reuse one flat ShardSet, re-encode in place.
        let mut set = ShardSet::from_payload(&buf, data, data + parity);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{data}+{parity}/{}KiB", bytes / KIB)),
            &data,
            |b, _| b.iter(|| rs.encode_into(black_box(&mut set)).unwrap()),
        );
    }
    group.finish();
}

fn bench_encode_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/encode-seed");
    group.sample_size(10);
    for &(data, parity, bytes) in ENCODE_GRID {
        if bytes > MIB {
            continue; // the seed path is too slow to sample at 16 MiB
        }
        let rs = RefReedSolomon::new(data, parity);
        let buf = payload(bytes);
        group.throughput(Throughput::Bytes(bytes as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{data}+{parity}/{}KiB", bytes / KIB)),
            &data,
            |b, _| b.iter(|| black_box(rs.encode_bytes(&buf))),
        );
    }
    group.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/reconstruct");
    for &(data, parity, bytes) in RECONSTRUCT_GRID {
        let rs = ReedSolomon::new(data, parity).unwrap();
        let encoded = rs.encode_bytes_flat(&payload(bytes));
        group.throughput(Throughput::Bytes(bytes as u64));
        for (label, erased) in patterns(data, parity) {
            let mut present = vec![true; data + parity];
            for &i in &erased {
                present[i] = false;
            }
            let mut set = encoded.clone();
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{data}+{parity}/{}KiB/{label}", bytes / KIB)),
                &data,
                |b, _| {
                    b.iter(|| {
                        // In-place: only the erased rows are recomputed, so
                        // no reset is needed between iterations.
                        rs.reconstruct_into(black_box(&mut set), &present).unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_reconstruct_seed(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/reconstruct-seed");
    group.sample_size(10);
    // The seed path is too slow to sample at MiB scale.
    for &(data, parity, bytes) in RECONSTRUCT_GRID.iter().filter(|(_, _, b)| *b < MIB) {
        let rs = RefReedSolomon::new(data, parity);
        let encoded = rs.encode_bytes(&payload(bytes));
        group.throughput(Throughput::Bytes(bytes as u64));
        for (label, erased) in patterns(data, parity) {
            let mut got: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
            for &i in &erased {
                got[i] = None;
            }
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{data}+{parity}/{}KiB/{label}", bytes / KIB)),
                &data,
                |b, _| b.iter(|| black_box(rs.reconstruct(&got))),
            );
        }
    }
    group.finish();
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_encode, bench_encode_seed, bench_reconstruct, bench_reconstruct_seed
}
criterion_main!(benches);
