//! Reed–Solomon encode/reconstruct throughput (§VI-C machinery).

use std::hint::black_box;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fi_erasure::ReedSolomon;

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/encode");
    for (data, parity) in [(4usize, 2usize), (8, 8), (16, 16)] {
        let rs = ReedSolomon::new(data, parity).unwrap();
        let payload = vec![0x5Au8; 64 * 1024];
        group.throughput(Throughput::Bytes(payload.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{data}+{parity}")),
            &data,
            |b, _| b.iter(|| black_box(rs.encode_bytes(&payload))),
        );
    }
    group.finish();
}

fn bench_reconstruct(c: &mut Criterion) {
    let mut group = c.benchmark_group("erasure/reconstruct");
    for (data, parity) in [(8usize, 8usize), (16, 16)] {
        let rs = ReedSolomon::new(data, parity).unwrap();
        let payload = vec![0xC3u8; 64 * 1024];
        let shards = rs.encode_bytes(&payload);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{data}+{parity}")),
            &data,
            |b, &d| {
                b.iter(|| {
                    let mut got: Vec<Option<Vec<u8>>> =
                        shards.iter().cloned().map(Some).collect();
                    for slot in got.iter_mut().take(d) {
                        *slot = None; // lose all data shards
                    }
                    black_box(rs.reconstruct(&got).unwrap())
                })
            },
        );
    }
    group.finish();
}


fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_secs(1))
        .sample_size(20)
}
criterion_group! {
    name = benches;
    config = quick();
    targets = bench_encode, bench_reconstruct
}
criterion_main!(benches);
