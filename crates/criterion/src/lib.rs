//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so the real criterion cannot
//! be fetched from crates.io. This shim implements the subset of its API that
//! the `fi-bench` benchmarks use — `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Throughput`, `Bencher::{iter, iter_with_setup}`, and the
//! `criterion_group!` / `criterion_main!` macros — backed by a plain
//! wall-clock harness: a timed warm-up, then `sample_size` batches whose
//! median per-iteration time is reported.
//!
//! It is intentionally tiny and has no statistics beyond the median; if the
//! environment ever gains registry access, deleting this crate and switching
//! `fi-bench`'s dev-dependency back to crates.io criterion is a one-line
//! change (the bench sources need no edits).

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Units for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>` form.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { id: s.clone() }
    }
}

/// Timing configuration plus the entry point handed to benchmark functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration (builder style, like real criterion).
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// No-op for CLI-argument parity with real criterion.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
            measurement: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample = run_bench(self.warm_up, self.measurement, self.sample_size, &mut f);
        report(&id.id, &sample, None);
        self
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
    measurement: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Overrides the measurement duration for this group (group-scoped,
    /// like real criterion — it does not leak to later groups).
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = Some(d);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let sample = run_bench(
            self.criterion.warm_up,
            self.measurement.unwrap_or(self.criterion.measurement),
            self.sample_size.unwrap_or(self.criterion.sample_size),
            &mut f,
        );
        report(
            &format!("{}/{}", self.name, id.id),
            &sample,
            self.throughput,
        );
        self
    }

    /// Runs a benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (purely cosmetic here).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the routine.
pub struct Bencher {
    mode: Mode,
    /// Median per-iteration time, filled in by `iter*`.
    elapsed: Duration,
}

enum Mode {
    /// Estimate a batch size from this duration of warm-up.
    WarmUp(Duration),
    /// Timed run: (batch size, samples to record).
    Measure { batch: u64, samples: usize },
}

struct Sample {
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, excluding nothing (the common case).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        match self.mode {
            Mode::WarmUp(budget) => {
                let start = Instant::now();
                let mut iters = 0u64;
                while start.elapsed() < budget || iters == 0 {
                    std_black_box(routine());
                    iters += 1;
                }
                self.elapsed = start.elapsed() / (iters as u32).max(1);
            }
            Mode::Measure { batch, samples } => {
                let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
                for _ in 0..samples {
                    let start = Instant::now();
                    for _ in 0..batch {
                        std_black_box(routine());
                    }
                    per_iter.push(start.elapsed().as_nanos() as f64 / batch as f64);
                }
                self.elapsed = Duration::from_nanos(median(&mut per_iter) as u64);
            }
        }
    }

    /// Times `routine` only, re-running `setup` before every call.
    pub fn iter_with_setup<S, O, FS, R>(&mut self, mut setup: FS, mut routine: R)
    where
        FS: FnMut() -> S,
        R: FnMut(S) -> O,
    {
        match self.mode {
            Mode::WarmUp(budget) => {
                let start = Instant::now();
                let mut iters = 0u64;
                let mut busy = Duration::ZERO;
                while start.elapsed() < budget || iters == 0 {
                    let s = setup();
                    let t = Instant::now();
                    std_black_box(routine(s));
                    busy += t.elapsed();
                    iters += 1;
                }
                self.elapsed = busy / (iters as u32).max(1);
            }
            Mode::Measure { batch, samples } => {
                let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
                for _ in 0..samples {
                    let mut busy = Duration::ZERO;
                    for _ in 0..batch {
                        let s = setup();
                        let t = Instant::now();
                        std_black_box(routine(s));
                        busy += t.elapsed();
                    }
                    per_iter.push(busy.as_nanos() as f64 / batch as f64);
                }
                self.elapsed = Duration::from_nanos(median(&mut per_iter) as u64);
            }
        }
    }
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    xs[xs.len() / 2]
}

fn run_bench<F: FnMut(&mut Bencher)>(
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    f: &mut F,
) -> Sample {
    // Warm-up pass estimates the per-iteration cost...
    let mut b = Bencher {
        mode: Mode::WarmUp(warm_up),
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let est_ns = b.elapsed.as_nanos().max(1) as u64;
    // ...which sizes batches so all samples fit the measurement budget.
    let budget_ns = measurement.as_nanos() as u64 / sample_size.max(1) as u64;
    let batch = (budget_ns / est_ns).clamp(1, 1_000_000_000);
    let mut b = Bencher {
        mode: Mode::Measure {
            batch,
            samples: sample_size,
        },
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    Sample {
        median_ns: b.elapsed.as_nanos() as f64,
    }
}

fn report(id: &str, sample: &Sample, throughput: Option<Throughput>) {
    let t = pretty_time(sample.median_ns);
    match throughput {
        Some(Throughput::Bytes(n)) => {
            let mib_s = n as f64 / (1024.0 * 1024.0) / (sample.median_ns / 1e9);
            println!("{id:<48} time: {t:>12}  thrpt: {mib_s:>10.1} MiB/s");
        }
        Some(Throughput::Elements(n)) => {
            let elem_s = n as f64 / (sample.median_ns / 1e9);
            println!("{id:<48} time: {t:>12}  thrpt: {elem_s:>10.0} elem/s");
        }
        None => println!("{id:<48} time: {t:>12}"),
    }
}

fn pretty_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Collects benchmark functions into a runnable group, mirroring criterion's
/// two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("build", 64).id, "build/64");
        assert_eq!(BenchmarkId::from_parameter("8+8").id, "8+8");
    }

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn group_with_throughput_runs() {
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20))
            .sample_size(5);
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_with_input(BenchmarkId::from_parameter(1), &1, |b, _| {
            b.iter_with_setup(|| vec![0u8; 64], |v| v.len())
        });
        group.finish();
    }
}
