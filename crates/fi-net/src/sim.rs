//! The event queue: virtual time plus a stable priority queue.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time in abstract ticks.
pub type SimTime = u64;

/// A deterministic discrete-event queue.
///
/// Events with equal timestamps pop in scheduling order (stable FIFO), so
/// runs are reproducible regardless of payload contents.
///
/// # Example
///
/// ```
/// use fi_net::sim::Simulator;
/// let mut sim = Simulator::new();
/// sim.schedule(10, "b");
/// sim.schedule_at(5, "a");
/// assert_eq!(sim.next(), Some((5, "a")));
/// assert_eq!(sim.now(), 5);
/// assert_eq!(sim.next(), Some((10, "b")));
/// ```
#[derive(Debug)]
pub struct Simulator<E> {
    queue: BinaryHeap<Reverse<Entry<E>>>,
    now: SimTime,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Simulator<E> {
    /// An empty queue at time 0.
    pub fn new() -> Self {
        Simulator {
            queue: BinaryHeap::new(),
            now: 0,
            seq: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `event` after `delay` ticks.
    pub fn schedule(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Schedules `event` at absolute `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn schedule_at(&mut self, time: SimTime, event: E) {
        assert!(time >= self.now, "cannot schedule into the past");
        self.queue.push(Reverse(Entry {
            time,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Pops the next event, advancing time to it.
    // Deliberately named like the cursor method it is, not an Iterator impl
    // (popping mutates the clock, so `for` iteration would be misleading).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        let Reverse(entry) = self.queue.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Pops the next event only if it is due at or before `deadline`.
    pub fn next_before(&mut self, deadline: SimTime) -> Option<(SimTime, E)> {
        match self.queue.peek() {
            Some(Reverse(entry)) if entry.time <= deadline => self.next(),
            _ => None,
        }
    }

    /// Time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(e)| e.time)
    }

    /// Advances the clock without processing (e.g. to an external sync
    /// point).
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the past.
    pub fn advance_clock(&mut self, time: SimTime) {
        assert!(time >= self.now, "cannot rewind");
        self.now = time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_fifo() {
        let mut sim = Simulator::new();
        sim.schedule_at(10, "t10-first");
        sim.schedule_at(5, "t5");
        sim.schedule_at(10, "t10-second");
        assert_eq!(sim.next(), Some((5, "t5")));
        assert_eq!(sim.next(), Some((10, "t10-first")));
        assert_eq!(sim.next(), Some((10, "t10-second")));
        assert_eq!(sim.next(), None);
    }

    #[test]
    fn relative_scheduling_uses_current_time() {
        let mut sim = Simulator::new();
        sim.schedule(5, 1u8);
        sim.next();
        sim.schedule(5, 2u8);
        assert_eq!(sim.next(), Some((10, 2)));
    }

    #[test]
    fn next_before_respects_deadline() {
        let mut sim = Simulator::new();
        sim.schedule_at(7, ());
        assert_eq!(sim.next_before(6), None);
        assert_eq!(sim.next_before(7), Some((7, ())));
        assert!(sim.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn past_scheduling_panics() {
        let mut sim = Simulator::new();
        sim.schedule_at(10, ());
        sim.next();
        sim.schedule_at(5, ());
    }

    #[test]
    fn property_events_pop_in_time_then_fifo_order() {
        // Seeded randomized cases (DetRng — no registry deps available).
        for seed in 0..128u64 {
            let mut rng = fi_crypto::DetRng::from_seed_label(seed, "sim-prop");
            let times: Vec<u64> = (0..rng.below(60)).map(|_| rng.below(50)).collect();
            let mut sim = Simulator::new();
            for (seq, &t) in times.iter().enumerate() {
                sim.schedule_at(t, seq);
            }
            let mut last: Option<(SimTime, usize)> = None;
            let mut count = 0;
            while let Some((t, seq)) = sim.next() {
                if let Some((lt, lseq)) = last {
                    assert!(
                        t > lt || (t == lt && seq > lseq),
                        "seed {seed}: order violated"
                    );
                }
                assert_eq!(times[seq], t, "seed {seed}: event fires at its time");
                last = Some((t, seq));
                count += 1;
            }
            assert_eq!(count, times.len(), "seed {seed}");
        }
    }

    #[test]
    fn clock_advance() {
        let mut sim: Simulator<()> = Simulator::new();
        sim.advance_clock(42);
        assert_eq!(sim.now(), 42);
        assert_eq!(sim.peek_time(), None);
        assert_eq!(sim.len(), 0);
    }
}
