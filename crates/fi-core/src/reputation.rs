//! Provider reputation — the paper's §VII open problem, prototyped.
//!
//! *"Are there other approaches to enhance the reliability of Decentralized
//! Storage Networks? For example, a reputation mechanism \[8\] on storage
//! providers may be also helpful to reduce the loss of files."* — §VII,
//! citing the softmax reputation protocol of Chen et al.
//!
//! This module prototypes that direction on top of the existing machinery:
//!
//! * [`ReputationBook`] tracks per-provider proof reliability with
//!   exponential decay (recent behaviour dominates);
//! * selection weights multiply sector capacity by a **softmax** factor of
//!   the owner's score, so persistently unreliable providers attract
//!   exponentially fewer placements while never being fully excluded
//!   (full exclusion would break the i.i.d.-placement analysis; the
//!   factor is clamped to `[min_factor, max_factor]`);
//! * [`ReputationBook::weighted_capacity`] is what an integrating engine
//!   would feed the [`crate::sampler::WeightedSampler`] instead of raw
//!   capacity.
//!
//! The experiment in the tests shows the payoff: when failure propensity
//! varies across providers, reputation-weighted placement measurably cuts
//! the file-loss rate versus capacity-only placement at equal parameters.

use std::collections::HashMap;

use fi_chain::account::AccountId;

/// Tunables for the reputation mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReputationParams {
    /// Exponential decay applied to the score per observation window.
    pub decay: f64,
    /// Score increment for an on-time proof.
    pub reward: f64,
    /// Score decrement for a missed/late proof (punishment).
    pub penalty: f64,
    /// Softmax temperature: lower = sharper discrimination.
    pub temperature: f64,
    /// Lower clamp on the capacity multiplier.
    pub min_factor: f64,
    /// Upper clamp on the capacity multiplier.
    pub max_factor: f64,
}

impl Default for ReputationParams {
    fn default() -> Self {
        ReputationParams {
            decay: 0.95,
            reward: 1.0,
            penalty: 4.0,
            temperature: 2.0,
            min_factor: 0.05,
            max_factor: 2.0,
        }
    }
}

/// Tracks provider reliability scores and converts them into sampling
/// weights.
///
/// # Example
///
/// ```
/// use fi_core::reputation::{ReputationBook, ReputationParams};
/// use fi_chain::account::AccountId;
///
/// let mut book = ReputationBook::new(ReputationParams::default());
/// let good = AccountId(1);
/// let bad = AccountId(2);
/// for _ in 0..20 {
///     book.record_proof(good);
///     book.record_miss(bad);
/// }
/// assert!(book.factor(good) > book.factor(bad));
/// assert!(book.weighted_capacity(good, 640) > book.weighted_capacity(bad, 640));
/// ```
#[derive(Debug, Clone)]
pub struct ReputationBook {
    params: ReputationParams,
    scores: HashMap<AccountId, f64>,
}

impl ReputationBook {
    /// Creates an empty book.
    pub fn new(params: ReputationParams) -> Self {
        ReputationBook {
            params,
            scores: HashMap::new(),
        }
    }

    /// Raw score of a provider (0 for unknown).
    pub fn score(&self, provider: AccountId) -> f64 {
        self.scores.get(&provider).copied().unwrap_or(0.0)
    }

    /// Records an accepted, on-time storage proof.
    pub fn record_proof(&mut self, provider: AccountId) {
        let s = self.scores.entry(provider).or_insert(0.0);
        *s += self.params.reward;
    }

    /// Records a missed/late proof (the engine's punishment events).
    pub fn record_miss(&mut self, provider: AccountId) {
        let s = self.scores.entry(provider).or_insert(0.0);
        *s -= self.params.penalty;
    }

    /// Applies one decay window (call per rent period).
    pub fn decay_all(&mut self) {
        for s in self.scores.values_mut() {
            *s *= self.params.decay;
        }
    }

    /// The softmax capacity multiplier for a provider, clamped to
    /// `[min_factor, max_factor]`.
    ///
    /// Uses a logistic (2-way softmax against the neutral score 0):
    /// `2·exp(s/T) / (exp(s/T) + 1)` — neutral providers get factor 1,
    /// reliable ones approach `max_factor`, unreliable ones `min_factor`.
    pub fn factor(&self, provider: AccountId) -> f64 {
        let s = self.score(provider) / self.params.temperature;
        // Numerically stable logistic.
        let f = if s >= 0.0 {
            2.0 / (1.0 + (-s).exp())
        } else {
            2.0 * s.exp() / (1.0 + s.exp())
        };
        f.clamp(self.params.min_factor, self.params.max_factor)
    }

    /// Sampling weight for a sector: capacity × owner factor (never 0).
    pub fn weighted_capacity(&self, provider: AccountId, capacity: u64) -> u64 {
        ((capacity as f64 * self.factor(provider)).round() as u64).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampler::WeightedSampler;
    use fi_crypto::DetRng;

    #[test]
    fn neutral_provider_factor_is_one() {
        let book = ReputationBook::new(ReputationParams::default());
        let p = AccountId(9);
        assert!((book.factor(p) - 1.0).abs() < 1e-12);
        assert_eq!(book.weighted_capacity(p, 640), 640);
    }

    #[test]
    fn scores_move_and_decay() {
        let mut book = ReputationBook::new(ReputationParams::default());
        let p = AccountId(1);
        book.record_proof(p);
        book.record_proof(p);
        assert!((book.score(p) - 2.0).abs() < 1e-12);
        book.record_miss(p);
        assert!((book.score(p) + 2.0).abs() < 1e-12);
        book.decay_all();
        assert!((book.score(p) + 1.9).abs() < 1e-12);
    }

    #[test]
    fn factor_monotone_and_clamped() {
        let mut book = ReputationBook::new(ReputationParams::default());
        let good = AccountId(1);
        let bad = AccountId(2);
        for _ in 0..100 {
            book.record_proof(good);
            book.record_miss(bad);
        }
        assert!((book.factor(good) - 2.0).abs() < 1e-6, "hits max clamp");
        assert!((book.factor(bad) - 0.05).abs() < 1e-6, "hits min clamp");
        // Unreliable providers are down-weighted but never excluded.
        assert!(book.weighted_capacity(bad, 640) >= 1);
    }

    /// The §VII payoff experiment: reputation-weighted placement loses
    /// fewer files than capacity-only placement when provider failure
    /// propensity is heterogeneous and persistent.
    #[test]
    fn reputation_weighting_reduces_losses() {
        let providers = 40usize;
        let k = 3u32;
        let files = 4_000usize;
        let mut rng = DetRng::from_seed_label(99, "rep-exp");

        // Half the providers are flaky: 30% chance of being corrupted in
        // the disaster; reliable ones 3%.
        let flaky = |p: usize| p < providers / 2;

        // Phase 1: observe a proving history and build the book.
        let mut book = ReputationBook::new(ReputationParams::default());
        for round in 0..30 {
            for p in 0..providers {
                let misses = flaky(p) && rng.bernoulli(0.4);
                if misses {
                    book.record_miss(AccountId(p as u64));
                } else {
                    book.record_proof(AccountId(p as u64));
                }
            }
            if round % 10 == 9 {
                book.decay_all();
            }
        }

        // Phase 2: place files under both weightings.
        let place = |weights: &[u64], rng: &mut DetRng| -> Vec<Vec<usize>> {
            let mut sampler = WeightedSampler::new();
            for (i, &w) in weights.iter().enumerate() {
                sampler.insert(i, w);
            }
            (0..files)
                .map(|_| (0..k).map(|_| *sampler.sample(rng).unwrap()).collect())
                .collect()
        };
        let capacity_only: Vec<u64> = vec![640; providers];
        let rep_weighted: Vec<u64> = (0..providers)
            .map(|p| book.weighted_capacity(AccountId(p as u64), 640))
            .collect();
        let mut rng_a = DetRng::from_seed_label(100, "a");
        let mut rng_b = DetRng::from_seed_label(100, "b");
        let flat_placement = place(&capacity_only, &mut rng_a);
        let rep_placement = place(&rep_weighted, &mut rng_b);

        // Phase 3: the disaster — flaky providers fail far more often.
        let mut fail_rng = DetRng::from_seed_label(101, "fail");
        let failed: Vec<bool> = (0..providers)
            .map(|p| fail_rng.bernoulli(if flaky(p) { 0.30 } else { 0.03 }))
            .collect();
        let losses = |placement: &[Vec<usize>]| {
            placement
                .iter()
                .filter(|locs| locs.iter().all(|&p| failed[p]))
                .count()
        };
        let flat_losses = losses(&flat_placement);
        let rep_losses = losses(&rep_placement);
        assert!(
            flat_losses >= 4,
            "setup sanity: flat placement must lose files, got {flat_losses}"
        );
        assert!(
            rep_losses * 2 < flat_losses,
            "reputation {rep_losses} vs flat {flat_losses}"
        );
    }
}
