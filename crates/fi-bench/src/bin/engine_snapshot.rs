//! Writes a `BENCH_engine.json` op-layer throughput snapshot: `Engine::apply`
//! ops/sec and `advance_to` cost at 1k/10k/100k live files, measured
//! like-for-like under the epoch-bucketed [`fi_chain::tasks::TaskWheel`]
//! and the pre-refactor per-file `BTreeMap` scheduler
//! ([`fi_chain::tasks::PendingList`]).
//!
//! Usage: `cargo run --release -p fi-bench --bin engine_snapshot [out.json]`
//!
//! The workload is the per-file scheduling regime the refactor targets:
//! one file added per tick over a proof cycle of `n` ticks, so every one
//! of the `n` live files carries its own distinct `Auto_CheckProof`
//! timestamp. Two `advance_to` measurements per scale:
//!
//! * **full engine** — one whole `ProofCycle` advance: every file's
//!   `Auto_CheckProof` executes (rent, late checks, reschedule), so the
//!   scheduler's share is diluted by protocol work;
//! * **scheduler churn** — the same task population (`n` tasks, one per
//!   timestamp across the cycle) popped in engine order (`next_time` →
//!   `pop_due`) and rescheduled one cycle out, three cycles long, against
//!   the bare scheduler. This isolates the scheduling cost the full-engine
//!   number dilutes and is what the ≥3x acceptance bar applies to.
//!
//! Both engines must agree on every state root — asserted, which doubles
//! as a wheel-vs-BTreeMap consensus-equivalence test at 100k-file scale.

use std::time::Instant;

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::tasks::{Scheduler, SchedulerKind};
use fi_core::engine::Engine;
use fi_core::params::ProtocolParams;
use fi_crypto::sha256;

const PROVIDER: AccountId = AccountId(42);
const CLIENT: AccountId = AccountId(43);
const SECTORS: u64 = 64;

/// One tick per file: `n` files spread over a cycle of `n` ticks gives
/// every file a distinct deadline (at least 1k ticks so the protocol's
/// relative windows stay sane at small scales).
fn proof_cycle_for(n: u64) -> u64 {
    n.max(1_000)
}

fn bench_params(n: u64, kind: SchedulerKind) -> ProtocolParams {
    let cycle = proof_cycle_for(n);
    ProtocolParams {
        // One replica per file: the scheduling layer is what varies with
        // scale here, not replica fan-out.
        k: 1,
        proof_cycle: cycle,
        proof_due: 2 * cycle,
        proof_deadline: 4 * cycle,
        // Refreshes are rare enough to not fire within the measured cycle
        // (identical on both sides either way, but this keeps the numbers
        // about scheduling + proof accounting).
        avg_refresh: 1_000_000.0,
        delay_per_size: 1,
        scheduler: kind,
        ..ProtocolParams::default()
    }
}

struct EngineRun {
    ops_per_sec: f64,
    /// Seconds for `advance_to(now + ProofCycle)` over `n` live files.
    advance_s: f64,
    state_root: fi_crypto::Hash256,
}

/// Builds an engine with `n` live files, one added (and confirmed) per
/// tick so every `Auto_CheckProof` lands on its own timestamp, then
/// measures a whole-cycle `advance_to`. All actions go through the public
/// wrappers, i.e. through `Engine::apply` — ops/sec is counted off the op
/// log itself.
fn run_engine(n: u64, kind: SchedulerKind) -> EngineRun {
    let params = bench_params(n, kind);
    let cycle = params.proof_cycle;
    let min_value = params.min_value;
    let mut engine = Engine::new(params).expect("valid parameters");
    engine.fund(PROVIDER, TokenAmount(u128::MAX / 4));
    engine.fund(CLIENT, TokenAmount(u128::MAX / 4));
    // Capacity for n size-1 files plus slack, multiple of minCapacity.
    let per_sector = (2 * n / SECTORS).div_ceil(64).max(1) * 64;
    for _ in 0..SECTORS {
        engine
            .sector_register(PROVIDER, per_sector)
            .expect("register sector");
    }

    let ops_before = engine.op_log().len();
    let t_add = Instant::now();
    for i in 0..n {
        let root = sha256(&i.to_be_bytes());
        let file = engine
            .file_add(CLIENT, 1, min_value, root)
            .expect("file add");
        for (index, sector) in engine.pending_confirms(file) {
            engine
                .file_confirm(PROVIDER, file, index, sector)
                .expect("confirm");
        }
        engine.advance_to(engine.now() + 1);
    }
    // Let the trailing CheckAllocs finalise so every file is live.
    engine.advance_to(engine.now() + 2);
    let applied = (engine.op_log().len() - ops_before) as u64;
    let ops_per_sec = applied as f64 / t_add.elapsed().as_secs_f64();
    assert_eq!(engine.file_ids().len() as u64, n, "all files live");

    // The measured advance: one full proof cycle, n CheckProofs on n
    // distinct timestamps.
    let target = engine.now() + cycle;
    let t_adv = Instant::now();
    engine.advance_to(target);
    let advance_s = t_adv.elapsed().as_secs_f64();
    assert_eq!(engine.file_ids().len() as u64, n, "no file lost mid-bench");

    EngineRun {
        ops_per_sec,
        advance_s,
        state_root: engine.state_root(),
    }
}

/// The scheduler-isolated trace: the same task population the engine run
/// carries — `n` per-file tasks, one per timestamp across a `cycle`-tick
/// proof cycle — popped in engine order (`next_time` → `pop_due`) and
/// rescheduled one cycle out, for `cycles` cycles. Exactly the churn
/// `advance_to` inflicts on the pending list, minus protocol work.
fn run_scheduler_churn(n: u64, kind: SchedulerKind, cycles: u64) -> f64 {
    let spread = proof_cycle_for(n); // one task per timestamp, like the engine
    let mut sched: Scheduler<u64> = Scheduler::new(kind, 10);
    for i in 0..n {
        sched.schedule(i % spread, i);
    }
    let t = Instant::now();
    let mut popped_total = 0u64;
    for c in 1..=cycles {
        let target = c * spread - 1; // covers timestamps [(c-1)·spread, c·spread)
        while let Some(ts) = sched.next_time() {
            if ts > target {
                break;
            }
            for (time, task) in sched.pop_due(ts) {
                sched.schedule(time + spread, task);
                popped_total += 1;
            }
        }
    }
    let elapsed = t.elapsed().as_secs_f64();
    assert_eq!(popped_total, n * cycles, "every task fires every cycle");
    elapsed
}

struct ScaleResult {
    n: u64,
    wheel: EngineRun,
    btree: EngineRun,
    churn_wheel_s: f64,
    churn_btree_s: f64,
}

impl ScaleResult {
    fn advance_speedup(&self) -> f64 {
        self.btree.advance_s / self.wheel.advance_s
    }

    fn churn_speedup(&self) -> f64 {
        self.churn_btree_s / self.churn_wheel_s
    }

    fn json(&self) -> String {
        format!(
            "    {{\"live_files\": {}, \"apply_ops_per_sec_wheel\": {:.0}, \"apply_ops_per_sec_btree\": {:.0}, \
             \"advance_full_cycle_ms_wheel\": {:.3}, \"advance_full_cycle_ms_btree\": {:.3}, \"advance_full_cycle_speedup\": {:.2}, \
             \"scheduler_churn_ms_wheel\": {:.3}, \"scheduler_churn_ms_btree\": {:.3}, \"scheduler_churn_speedup\": {:.2}}}",
            self.n,
            self.wheel.ops_per_sec,
            self.btree.ops_per_sec,
            self.wheel.advance_s * 1e3,
            self.btree.advance_s * 1e3,
            self.advance_speedup(),
            self.churn_wheel_s * 1e3,
            self.churn_btree_s * 1e3,
            self.churn_speedup(),
        )
    }
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_engine.json".into());

    let mut results = Vec::new();
    for n in [1_000u64, 10_000, 100_000] {
        let wheel = run_engine(n, SchedulerKind::Wheel);
        let btree = run_engine(n, SchedulerKind::BTree);
        assert_eq!(
            wheel.state_root, btree.state_root,
            "wheel and BTreeMap schedulers must drive identical consensus at n={n}"
        );
        // Median of three for the bare-scheduler churn (it's fast).
        let med = |kind: SchedulerKind| -> f64 {
            let mut xs: Vec<f64> = (0..3).map(|_| run_scheduler_churn(n, kind, 3)).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            xs[1]
        };
        let churn_wheel_s = med(SchedulerKind::Wheel);
        let churn_btree_s = med(SchedulerKind::BTree);
        let r = ScaleResult {
            n,
            wheel,
            btree,
            churn_wheel_s,
            churn_btree_s,
        };
        println!(
            "n={n}: apply {:.0} ops/s, advance_to full-cycle {:.1} ms (wheel) vs {:.1} ms (btree) = {:.2}x, scheduler churn {:.2}x",
            r.wheel.ops_per_sec,
            r.wheel.advance_s * 1e3,
            r.btree.advance_s * 1e3,
            r.advance_speedup(),
            r.churn_speedup()
        );
        results.push(r);
    }

    let rows: Vec<String> = results.iter().map(ScaleResult::json).collect();
    let json = format!(
        "{{\n  \"suite\": \"fi-core op-layer throughput: Engine::apply + advance_to, epoch wheel vs BTreeMap pending list\",\n  \
           \"unit_note\": \"per-file regime: n live files, one Auto_CheckProof per timestamp across an n-tick proof cycle; advance_full_cycle = one ProofCycle advance executing every file's Auto_CheckProof (protocol work included); scheduler_churn = same task population against the bare scheduler (3 cycles, median of 3 runs) — the isolated like-for-like scheduling cost\",\n  \
           \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");

    // Acceptance bar: at 100k live files the epoch wheel must beat the
    // pre-refactor per-file BTreeMap scheduler by >= 3x like-for-like.
    let top = results.last().expect("scales measured");
    let churn = top.churn_speedup();
    assert!(
        churn >= 3.0,
        "scheduler churn speedup {churn:.2}x at {}k files fell below the 3x acceptance bar",
        top.n / 1_000
    );
}
