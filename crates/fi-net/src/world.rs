//! The process framework: nodes, typed messages, timers, fault injection.
//!
//! A [`World`] owns a set of nodes (each a [`Process`] implementation), a
//! shared [`LinkModel`], and the event queue. Nodes interact only through
//! their [`Ctx`] handle — sending messages (subject to link delay/loss) and
//! arming timers — so every run is a deterministic function of the seed.
//!
//! Links may drop messages ([`LinkModel::loss`]) with no built-in
//! acknowledgement, so any protocol that needs at-least-once delivery has
//! to retry. [`Retransmitter`] packages that pattern — send, arm a timer,
//! resend on expiry up to a bound, stop on ack — so protocol actors don't
//! each reimplement it.
//!
//! # Fault injection
//!
//! Beyond per-message loss, the world can inject structured faults, all
//! scheduled in the same event queue and therefore deterministic:
//!
//! - [`World::schedule_crash`] takes a node down for a time window. While
//!   crashed the node receives nothing and its timers die; at the end of
//!   the window [`Process::on_restart`] runs so it can re-arm whatever it
//!   needs. Node *state* survives — this models unavailability, not disk
//!   loss.
//! - [`World::schedule_link_cut`] / [`World::schedule_partition`] sever a
//!   set of links (or everything crossing a group boundary) for a window;
//!   cuts nest by refcount, so overlapping windows compose.
//! - [`World::set_link_override`] replaces the shared [`LinkModel`] on one
//!   directed link, enabling heterogeneous topologies (a lossy WAN edge in
//!   an otherwise clean LAN). Defaults are unchanged unless overridden.

use std::collections::BTreeMap;

use fi_crypto::DetRng;

use crate::link::LinkModel;
use crate::sim::{SimTime, Simulator};

/// Index of a node within its world.
pub type NodeIdx = usize;

/// Events processed by the world.
#[derive(Debug)]
enum Event<M> {
    Deliver { from: NodeIdx, to: NodeIdx, msg: M },
    Timer { node: NodeIdx, tag: u64, epoch: u32 },
    Fault(Fault),
}

/// Injected fault transitions, scheduled like any other event.
#[derive(Debug, Clone)]
enum Fault {
    Crash { node: NodeIdx },
    Restart { node: NodeIdx },
    Cut { id: u64 },
    Heal { id: u64 },
}

/// A scheduled link-cut: which directed pairs (or group boundary) to sever.
#[derive(Debug, Clone)]
enum CutSpec {
    Pairs(Vec<(NodeIdx, NodeIdx)>),
    Group(Vec<NodeIdx>),
}

/// A node's behaviour.
///
/// All callbacks receive a [`Ctx`] for sending messages and arming timers.
/// Default implementations do nothing, so simple nodes implement only what
/// they need.
pub trait Process<M> {
    /// Called once when the world starts running.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeIdx, msg: M);

    /// Called when a timer armed via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: u64) {
        let _ = (ctx, tag);
    }

    /// Called when the node comes back from an injected crash window.
    ///
    /// Timers armed before the crash are dead by then; a process that
    /// relies on timers must re-arm them here. State fields survive.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }
}

/// Per-callback handle: scheduling and randomness for one node.
pub struct Ctx<'a, M> {
    me: NodeIdx,
    now: SimTime,
    epoch: u32,
    sim: &'a mut Simulator<Event<M>>,
    link: &'a LinkModel,
    overrides: &'a BTreeMap<(NodeIdx, NodeIdx), LinkModel>,
    rng: &'a mut DetRng,
    messages_sent: &'a mut u64,
    messages_lost: &'a mut u64,
}

impl<M> Ctx<'_, M> {
    /// This node's index.
    pub fn me(&self) -> NodeIdx {
        self.me
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic randomness scoped to the world.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Sends `msg` (`bytes` long on the wire) to `to`; it arrives after the
    /// link delay, or never (lossy links). A per-link override installed
    /// via [`World::set_link_override`] takes precedence over the world's
    /// shared model.
    pub fn send(&mut self, to: NodeIdx, msg: M, bytes: u64) {
        *self.messages_sent += 1;
        let model = self.overrides.get(&(self.me, to)).unwrap_or(self.link);
        match model.delivery_delay(self.rng, bytes) {
            Some(delay) => {
                let from = self.me;
                self.sim.schedule(delay, Event::Deliver { from, to, msg });
            }
            None => *self.messages_lost += 1,
        }
    }

    /// Arms a timer that fires on this node after `delay` ticks with `tag`.
    ///
    /// Timers are tied to the node's current crash epoch: if the node
    /// crashes and restarts before expiry, the timer is dead and never
    /// fires.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        let node = self.me;
        let epoch = self.epoch;
        self.sim.schedule(delay, Event::Timer { node, tag, epoch });
    }
}

/// A simulated network of processes.
pub struct World<M> {
    nodes: Vec<Option<Box<dyn Process<M>>>>,
    sim: Simulator<Event<M>>,
    link: LinkModel,
    overrides: BTreeMap<(NodeIdx, NodeIdx), LinkModel>,
    rng: DetRng,
    started: bool,
    messages_sent: u64,
    messages_lost: u64,
    // Fault state.
    crashed: Vec<bool>,
    epochs: Vec<u32>,
    cut_specs: BTreeMap<u64, CutSpec>,
    active_cuts: BTreeMap<(NodeIdx, NodeIdx), u32>,
    next_cut_id: u64,
    fault_drops: u64,
    restarts: u64,
}

impl<M> std::fmt::Debug for World<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("nodes", &self.nodes.len())
            .field("now", &self.sim.now())
            .field("queued", &self.sim.len())
            .field("fault_drops", &self.fault_drops)
            .finish()
    }
}

impl<M> World<M> {
    /// Creates a world with one shared link model and a master seed.
    pub fn new(link: LinkModel, seed: u64) -> Self {
        World {
            nodes: Vec::new(),
            sim: Simulator::new(),
            link,
            overrides: BTreeMap::new(),
            rng: DetRng::from_seed_label(seed, "fi-net/world"),
            started: false,
            messages_sent: 0,
            messages_lost: 0,
            crashed: Vec::new(),
            epochs: Vec::new(),
            cut_specs: BTreeMap::new(),
            active_cuts: BTreeMap::new(),
            next_cut_id: 0,
            fault_drops: 0,
            restarts: 0,
        }
    }

    /// Adds a node; returns its index.
    pub fn add(&mut self, node: impl Process<M> + 'static) -> NodeIdx {
        self.nodes.push(Some(Box::new(node)));
        self.crashed.push(false);
        self.epochs.push(0);
        self.nodes.len() - 1
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Total messages sent (including lost ones).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages dropped by the link model.
    pub fn messages_lost(&self) -> u64 {
        self.messages_lost
    }

    /// Messages dropped by injected faults (crashed receiver or severed
    /// link) rather than by the link model's own loss.
    pub fn fault_drops(&self) -> u64 {
        self.fault_drops
    }

    /// Completed crash/restart cycles so far.
    pub fn restarts(&self) -> u64 {
        self.restarts
    }

    /// Whether `node` is inside an injected crash window right now.
    pub fn is_crashed(&self, node: NodeIdx) -> bool {
        self.crashed.get(node).copied().unwrap_or(false)
    }

    /// Replaces the link model on the directed link `from → to`.
    ///
    /// All other links keep the world's shared model.
    pub fn set_link_override(&mut self, from: NodeIdx, to: NodeIdx, link: LinkModel) {
        self.overrides.insert((from, to), link);
    }

    /// Replaces the link model in both directions between `a` and `b`.
    pub fn set_link_between(&mut self, a: NodeIdx, b: NodeIdx, link: LinkModel) {
        self.set_link_override(a, b, link);
        self.set_link_override(b, a, link);
    }

    /// Crashes `node` during `[at, until)`: deliveries to it are dropped,
    /// its timers die, and at `until` it gets [`Process::on_restart`].
    ///
    /// # Panics
    ///
    /// Panics if `at >= until` or either time is already in the past.
    pub fn schedule_crash(&mut self, node: NodeIdx, at: SimTime, until: SimTime) {
        assert!(at < until, "crash window must be non-empty");
        self.sim
            .schedule_at(at, Event::Fault(Fault::Crash { node }));
        self.sim
            .schedule_at(until, Event::Fault(Fault::Restart { node }));
    }

    /// Severs each `(a, b)` pair in both directions during `[at, until)`.
    /// Overlapping cuts nest: a link is live again only once every window
    /// covering it has healed.
    ///
    /// # Panics
    ///
    /// Panics if `at >= until` or either time is already in the past.
    pub fn schedule_link_cut(&mut self, pairs: &[(NodeIdx, NodeIdx)], at: SimTime, until: SimTime) {
        self.schedule_cut_spec(CutSpec::Pairs(pairs.to_vec()), at, until);
    }

    /// Partitions `group` from the rest of the world during `[at, until)`:
    /// every link crossing the group boundary is severed, in both
    /// directions. Links inside the group (and among the rest) stay up.
    ///
    /// # Panics
    ///
    /// Panics if `at >= until` or either time is already in the past.
    pub fn schedule_partition(&mut self, group: &[NodeIdx], at: SimTime, until: SimTime) {
        self.schedule_cut_spec(CutSpec::Group(group.to_vec()), at, until);
    }

    fn schedule_cut_spec(&mut self, spec: CutSpec, at: SimTime, until: SimTime) {
        assert!(at < until, "cut window must be non-empty");
        let id = self.next_cut_id;
        self.next_cut_id += 1;
        self.cut_specs.insert(id, spec);
        self.sim.schedule_at(at, Event::Fault(Fault::Cut { id }));
        self.sim
            .schedule_at(until, Event::Fault(Fault::Heal { id }));
    }

    /// Directed pairs a cut spec severs, materialised against the current
    /// node set (all nodes are added before the run in practice, so the
    /// cut and its heal resolve identically).
    fn cut_pairs(&self, id: u64) -> Vec<(NodeIdx, NodeIdx)> {
        match &self.cut_specs[&id] {
            CutSpec::Pairs(pairs) => pairs.iter().flat_map(|&(a, b)| [(a, b), (b, a)]).collect(),
            CutSpec::Group(group) => {
                let mut pairs = Vec::new();
                for a in 0..self.nodes.len() {
                    let a_in = group.contains(&a);
                    for b in 0..self.nodes.len() {
                        if a != b && a_in != group.contains(&b) {
                            pairs.push((a, b));
                        }
                    }
                }
                pairs
            }
        }
    }

    /// Runs until the queue drains or `deadline` passes, whichever first.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.with_node(i, |node, ctx| node.on_start(ctx));
            }
        }
        let mut processed = 0;
        while let Some((_, event)) = self.sim.next_before(deadline) {
            match event {
                Event::Deliver { from, to, msg } => {
                    if self.is_crashed(to) || self.active_cuts.contains_key(&(from, to)) {
                        self.fault_drops += 1;
                    } else {
                        self.with_node(to, |node, ctx| node.on_message(ctx, from, msg));
                    }
                }
                Event::Timer { node, tag, epoch } => {
                    let live = !self.is_crashed(node)
                        && self.epochs.get(node).copied().unwrap_or(0) == epoch;
                    if live {
                        self.with_node(node, |n, ctx| n.on_timer(ctx, tag));
                    }
                }
                Event::Fault(fault) => self.apply_fault(fault),
            }
            processed += 1;
        }
        if self.sim.now() < deadline {
            self.sim.advance_clock(deadline);
        }
        processed
    }

    fn apply_fault(&mut self, fault: Fault) {
        match fault {
            Fault::Crash { node } => {
                if let Some(flag) = self.crashed.get_mut(node) {
                    *flag = true;
                }
            }
            Fault::Restart { node } => {
                if let Some(flag) = self.crashed.get_mut(node) {
                    *flag = false;
                    self.epochs[node] += 1;
                    self.restarts += 1;
                    self.with_node(node, |n, ctx| n.on_restart(ctx));
                }
            }
            Fault::Cut { id } => {
                for pair in self.cut_pairs(id) {
                    *self.active_cuts.entry(pair).or_insert(0) += 1;
                }
            }
            Fault::Heal { id } => {
                for pair in self.cut_pairs(id) {
                    if let Some(count) = self.active_cuts.get_mut(&pair) {
                        *count -= 1;
                        if *count == 0 {
                            self.active_cuts.remove(&pair);
                        }
                    }
                }
                self.cut_specs.remove(&id);
            }
        }
    }

    /// Borrow of node `idx` for inspection after a run.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn node(&self, idx: NodeIdx) -> &dyn Process<M> {
        self.nodes[idx].as_deref().expect("node present")
    }

    /// Temporarily extracts a node, builds a `Ctx`, runs `f`.
    fn with_node<F>(&mut self, idx: NodeIdx, f: F)
    where
        F: FnOnce(&mut Box<dyn Process<M>>, &mut Ctx<'_, M>),
    {
        let Some(slot) = self.nodes.get_mut(idx) else {
            return;
        };
        let Some(mut node) = slot.take() else { return };
        let mut ctx = Ctx {
            me: idx,
            now: self.sim.now(),
            epoch: self.epochs.get(idx).copied().unwrap_or(0),
            sim: &mut self.sim,
            link: &self.link,
            overrides: &self.overrides,
            rng: &mut self.rng,
            messages_sent: &mut self.messages_sent,
            messages_lost: &mut self.messages_lost,
        };
        f(&mut node, &mut ctx);
        self.nodes[idx] = Some(node);
    }
}

/// What a [`Retransmitter`] timer expiry meant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryEvent {
    /// The message was sent again; `attempt` transmissions have now been
    /// made (the initial send counts as attempt 1).
    Resent {
        /// The caller's key for the in-flight message.
        key: u64,
        /// Total transmissions so far, including this one.
        attempt: u32,
    },
    /// The retry budget is exhausted: the entry was dropped and delivery is
    /// now the caller's problem (escalate, give up, re-route).
    Exhausted {
        /// The caller's key for the abandoned message.
        key: u64,
        /// The destination that never acknowledged.
        to: NodeIdx,
    },
}

/// Bounded at-least-once delivery over lossy links: sends a message, arms
/// a timer, resends on expiry until acknowledged or a retry budget runs
/// out.
///
/// The helper owns a contiguous timer-tag namespace starting at its
/// `tag_base`: message `key` uses tag `tag_base + key`. Route every
/// [`Process::on_timer`] tag through [`Retransmitter::handle_timer`]
/// first — it returns `None` for tags outside its namespace, so it
/// composes with the caller's own timers as long as those stay below
/// `tag_base`.
///
/// Duplicate deliveries are inherent to retries (an ack can be lost while
/// its message got through); receivers must dedup by key or sequence.
#[derive(Debug)]
pub struct Retransmitter<M> {
    pending: BTreeMap<u64, PendingSend<M>>,
    interval: SimTime,
    max_attempts: u32,
    tag_base: u64,
}

#[derive(Debug)]
struct PendingSend<M> {
    to: NodeIdx,
    msg: M,
    bytes: u64,
    attempts: u32,
}

impl<M: Clone> Retransmitter<M> {
    /// A retransmitter resending every `interval` ticks, giving up after
    /// `max_attempts` total transmissions, owning timer tags
    /// `tag_base..`.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0` or `max_attempts == 0`.
    pub fn new(interval: SimTime, max_attempts: u32, tag_base: u64) -> Self {
        assert!(interval > 0, "retransmit interval must be positive");
        assert!(max_attempts > 0, "at least one attempt required");
        Retransmitter {
            pending: BTreeMap::new(),
            interval,
            max_attempts,
            tag_base,
        }
    }

    /// Sends `msg` to `to` and tracks it under `key` until
    /// [`Retransmitter::ack`]. Keys must not be re-used while live: the
    /// earlier send's timer stays armed, so both timers would resend the
    /// replacement and burn its attempts budget about twice as fast.
    /// Ack (or let exhaust) a key before assigning it again.
    pub fn send(&mut self, ctx: &mut Ctx<'_, M>, to: NodeIdx, key: u64, msg: M, bytes: u64) {
        ctx.send(to, msg.clone(), bytes);
        self.pending.insert(
            key,
            PendingSend {
                to,
                msg,
                bytes,
                attempts: 1,
            },
        );
        ctx.set_timer(self.interval, self.tag_base + key);
    }

    /// Stops retrying `key`. Returns `false` when the key was not in
    /// flight (already acked, already exhausted, or never sent) — callers
    /// routinely ignore that, since duplicate acks are normal on lossy
    /// links.
    pub fn ack(&mut self, key: u64) -> bool {
        self.pending.remove(&key).is_some()
    }

    /// Routes a timer expiry. Tags below this instance's `tag_base` are
    /// not ours: `None`. Tags for already-acked keys are spent timers:
    /// also `None`. Otherwise resends and re-arms, or reports the budget
    /// exhausted and drops the entry.
    pub fn handle_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: u64) -> Option<RetryEvent> {
        let key = tag.checked_sub(self.tag_base)?;
        let entry = self.pending.get_mut(&key)?;
        if entry.attempts >= self.max_attempts {
            let to = entry.to;
            self.pending.remove(&key);
            return Some(RetryEvent::Exhausted { key, to });
        }
        entry.attempts += 1;
        let attempt = entry.attempts;
        let (to, msg, bytes) = (entry.to, entry.msg.clone(), entry.bytes);
        ctx.send(to, msg, bytes);
        ctx.set_timer(self.interval, tag);
        Some(RetryEvent::Resent { key, attempt })
    }

    /// Drops every in-flight entry without acknowledgement, returning how
    /// many were pending. After a crash window the armed resend timers are
    /// dead, so surviving entries would hang forever; a restarting process
    /// calls this and lets higher-level sync recover the payloads.
    pub fn abandon_all(&mut self) -> usize {
        let n = self.pending.len();
        self.pending.clear();
        n
    }

    /// Messages still awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts messages; replies until a hop budget is exhausted.
    struct Echo {
        received: Vec<(NodeIdx, u64)>,
        timers: Vec<u64>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                received: Vec::new(),
                timers: Vec::new(),
            }
        }
    }

    impl Process<u64> for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == 0 {
                ctx.send(1, 3, 100); // 3 hops left
                ctx.set_timer(50, 99);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeIdx, msg: u64) {
            self.received.push((from, msg));
            if msg > 0 {
                ctx.send(from, msg - 1, 100);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, tag: u64) {
            self.timers.push(tag);
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut world = World::new(LinkModel::lan(), 1);
        world.add(Echo::new());
        world.add(Echo::new());
        let processed = world.run_until(10_000);
        // 4 deliveries (3,2,1,0) + 1 timer = 5 events.
        assert_eq!(processed, 5);
        assert_eq!(world.messages_sent(), 4);
        assert_eq!(world.messages_lost(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut world = World::new(LinkModel::wan(), 9);
            world.add(Echo::new());
            world.add(Echo::new());
            world.run_until(5_000);
            (world.now(), world.messages_sent())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lossy_link_drops_some() {
        let mut world = World::new(LinkModel::lossy(0.5), 3);
        // Node 0 sprays messages at node 1 via timers.
        struct Sprayer;
        impl Process<u64> for Sprayer {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                if ctx.me() == 0 {
                    for _ in 0..200 {
                        ctx.send(1, 0, 10);
                    }
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeIdx, _: u64) {}
        }
        world.add(Sprayer);
        world.add(Sprayer);
        world.run_until(100_000);
        assert_eq!(world.messages_sent(), 200);
        assert!(world.messages_lost() > 50 && world.messages_lost() < 150);
    }

    /// A metronome that counts ticks and remembers restarts.
    struct Ticker {
        ticks: u64,
        restarts: u64,
        received: u64,
    }

    impl Process<u64> for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.set_timer(10, 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeIdx, _: u64) {
            self.received += 1;
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: u64) {
            self.ticks += 1;
            ctx.set_timer(10, 0);
        }
    }

    /// Sends one message to node 1 every 10 ticks.
    struct Feeder;
    impl Process<u64> for Feeder {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.set_timer(10, 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeIdx, _: u64) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _tag: u64) {
            ctx.send(1, 0, 8);
            ctx.set_timer(10, 0);
        }
    }

    #[test]
    fn crash_window_drops_deliveries_and_kills_timers() {
        use std::cell::RefCell;
        thread_local! {
            static STATS: RefCell<(u64, u64, u64)> = const { RefCell::new((0, 0, 0)) };
        }
        struct Probe(Ticker);
        impl Process<u64> for Probe {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                self.0.on_start(ctx);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeIdx, msg: u64) {
                self.0.on_message(ctx, from, msg);
                STATS.with(|s| s.borrow_mut().2 = self.0.received);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, tag: u64) {
                self.0.on_timer(ctx, tag);
                STATS.with(|s| s.borrow_mut().0 = self.0.ticks);
            }
            fn on_restart(&mut self, ctx: &mut Ctx<'_, u64>) {
                self.0.restarts += 1;
                STATS.with(|s| s.borrow_mut().1 = self.0.restarts);
                ctx.set_timer(10, 0); // re-arm the metronome
            }
        }
        STATS.with(|s| *s.borrow_mut() = (0, 0, 0));
        let mut world = World::new(LinkModel::lan(), 5);
        world.add(Feeder); // node 0 feeds the victim at node 1
        world.add(Probe(Ticker {
            ticks: 0,
            restarts: 0,
            received: 0,
        }));
        world.schedule_crash(1, 100, 200);
        world.run_until(1_000);
        let (ticks, restarts, received) = STATS.with(|s| *s.borrow());
        assert_eq!(restarts, 1, "restart callback ran once");
        // ~10 ticks before the crash, ~80 after; the 100-tick window is a
        // hole (timers died, restart re-armed).
        assert!((85..=92).contains(&ticks), "ticks {ticks}");
        // ~10 feeds dropped during the crash window.
        assert!(world.fault_drops() >= 8, "drops {}", world.fault_drops());
        assert!(received >= 85, "received {received}");
        assert_eq!(world.restarts(), 1);
        assert!(!world.is_crashed(1));
    }

    #[test]
    fn stale_timers_from_before_the_crash_never_fire() {
        use std::cell::RefCell;
        thread_local! {
            static FIRED: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        }
        struct OneShot;
        impl Process<u64> for OneShot {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                // Fires at t=500, well after the crash window [100, 200):
                // the epoch bump at restart must invalidate it anyway.
                ctx.set_timer(500, 7);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeIdx, _: u64) {}
            fn on_timer(&mut self, _: &mut Ctx<'_, u64>, tag: u64) {
                FIRED.with(|f| f.borrow_mut().push(tag));
            }
            fn on_restart(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.set_timer(500, 8); // the replacement, armed post-restart
            }
        }
        FIRED.with(|f| f.borrow_mut().clear());
        let mut world = World::new(LinkModel::lan(), 6);
        world.add(OneShot);
        world.schedule_crash(0, 100, 200);
        world.run_until(2_000);
        assert_eq!(
            FIRED.with(|f| f.borrow().clone()),
            vec![8],
            "only the post-restart timer fires"
        );
    }

    #[test]
    fn partition_cuts_and_heals_deterministically() {
        let mut world = World::new(LinkModel::lan(), 8);
        world.add(Feeder); // node 0 feeds node 1 every 10 ticks
        world.add(Ticker {
            ticks: 0,
            restarts: 0,
            received: 0,
        });
        world.schedule_partition(&[0], 100, 300);
        world.run_until(1_000);
        // 100 feeds total; those in [100, 300) are severed (~20).
        assert!(
            world.fault_drops() >= 18 && world.fault_drops() <= 22,
            "drops {}",
            world.fault_drops()
        );
        // Deterministic replay.
        let drops = world.fault_drops();
        let mut world2 = World::new(LinkModel::lan(), 8);
        world2.add(Feeder);
        world2.add(Ticker {
            ticks: 0,
            restarts: 0,
            received: 0,
        });
        world2.schedule_partition(&[0], 100, 300);
        world2.run_until(1_000);
        assert_eq!(world2.fault_drops(), drops);
    }

    #[test]
    fn overlapping_link_cuts_nest_by_refcount() {
        let mut world = World::new(LinkModel::lan(), 12);
        world.add(Feeder);
        world.add(Ticker {
            ticks: 0,
            restarts: 0,
            received: 0,
        });
        // Two overlapping windows; the link is only live again at t=400.
        world.schedule_link_cut(&[(0, 1)], 100, 300);
        world.schedule_link_cut(&[(0, 1)], 200, 400);
        world.run_until(1_000);
        // ~30 of the 100 feeds fall in the union [100, 400).
        assert!(
            world.fault_drops() >= 28 && world.fault_drops() <= 32,
            "drops {}",
            world.fault_drops()
        );
    }

    #[test]
    fn per_link_override_only_affects_that_direction() {
        struct Pair {
            got: u64,
        }
        use std::cell::RefCell;
        thread_local! {
            static GOT: RefCell<[u64; 2]> = const { RefCell::new([0, 0]) };
        }
        impl Process<u64> for Pair {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                let peer = 1 - ctx.me();
                for _ in 0..100 {
                    ctx.send(peer, 0, 8);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, _: NodeIdx, _: u64) {
                self.got += 1;
                GOT.with(|g| g.borrow_mut()[ctx.me()] = self.got);
            }
        }
        GOT.with(|g| *g.borrow_mut() = [0, 0]);
        let mut world = World::new(LinkModel::lan(), 13);
        world.add(Pair { got: 0 });
        world.add(Pair { got: 0 });
        // 0 → 1 becomes a black hole; 1 → 0 stays a clean LAN link.
        world.set_link_override(0, 1, LinkModel::lossy(1.0));
        world.run_until(100_000);
        let got = GOT.with(|g| *g.borrow());
        assert_eq!(got[0], 100, "reverse direction unaffected");
        assert_eq!(got[1], 0, "overridden direction fully lossy");
        assert_eq!(world.messages_lost(), 100);
    }

    /// Sender pushing `COUNT` keyed messages through a retransmitter;
    /// receiver acks each delivery.
    #[derive(Clone)]
    struct RetryMsg {
        key: u64,
        ack: bool,
    }

    const RETRY_TAG_BASE: u64 = 1 << 32;

    struct RetryReceiver {
        seen: Vec<u64>,
    }

    impl Process<RetryMsg> for RetryReceiver {
        fn on_message(&mut self, ctx: &mut Ctx<'_, RetryMsg>, from: NodeIdx, msg: RetryMsg) {
            if !self.seen.contains(&msg.key) {
                self.seen.push(msg.key);
            }
            ctx.send(
                from,
                RetryMsg {
                    key: msg.key,
                    ack: true,
                },
                16,
            );
        }
    }

    #[test]
    fn retransmitter_delivers_everything_under_heavy_loss() {
        // Nodes are boxed trait objects the world owns, so the test tallies
        // outcomes through thread_locals instead of downcasts.
        use std::cell::RefCell;
        thread_local! {
            static ACKED: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
            static EXHAUSTED: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        }
        struct TallySender {
            retx: Retransmitter<RetryMsg>,
        }
        impl Process<RetryMsg> for TallySender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, RetryMsg>) {
                for key in 0..20 {
                    let msg = RetryMsg { key, ack: false };
                    self.retx.send(ctx, 1, key, msg, 100);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, RetryMsg>, _: NodeIdx, msg: RetryMsg) {
                assert!(msg.ack, "the sender only ever receives acks");
                if self.retx.ack(msg.key) {
                    ACKED.with(|a| a.borrow_mut().push(msg.key));
                }
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, RetryMsg>, tag: u64) {
                if let Some(RetryEvent::Exhausted { key, .. }) = self.retx.handle_timer(ctx, tag) {
                    EXHAUSTED.with(|e| e.borrow_mut().push(key));
                }
            }
        }
        ACKED.with(|a| a.borrow_mut().clear());
        EXHAUSTED.with(|e| e.borrow_mut().clear());
        let mut world = World::new(LinkModel::lossy(0.4), 11);
        world.add(TallySender {
            retx: Retransmitter::new(50, 16, RETRY_TAG_BASE),
        });
        world.add(RetryReceiver { seen: Vec::new() });
        world.run_until(1_000_000);
        let acked = ACKED.with(|a| a.borrow().clone());
        let exhausted = EXHAUSTED.with(|e| e.borrow().clone());
        assert_eq!(acked.len(), 20, "all 20 keys acknowledged: {acked:?}");
        assert!(
            exhausted.is_empty(),
            "budget of 16 never exhausted at 40% loss"
        );
        assert!(
            world.messages_lost() > 0,
            "the link actually dropped messages"
        );
    }

    #[test]
    fn retransmitter_gives_up_after_bounded_attempts() {
        use std::cell::RefCell;
        thread_local! {
            static GAVE_UP: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        }
        struct DoomedSender {
            retx: Retransmitter<RetryMsg>,
        }
        impl Process<RetryMsg> for DoomedSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, RetryMsg>) {
                let msg = RetryMsg { key: 7, ack: false };
                self.retx.send(ctx, 1, 7, msg, 100);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, RetryMsg>, _: NodeIdx, _: RetryMsg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, RetryMsg>, tag: u64) {
                if let Some(RetryEvent::Exhausted { key, to }) = self.retx.handle_timer(ctx, tag) {
                    assert_eq!(to, 1);
                    GAVE_UP.with(|g| g.borrow_mut().push(key));
                }
            }
        }
        GAVE_UP.with(|g| g.borrow_mut().clear());
        let mut world = World::new(LinkModel::lossy(1.0), 5); // nothing gets through
        world.add(DoomedSender {
            retx: Retransmitter::new(10, 4, RETRY_TAG_BASE),
        });
        world.add(RetryReceiver { seen: Vec::new() });
        world.run_until(10_000);
        assert_eq!(GAVE_UP.with(|g| g.borrow().clone()), vec![7]);
        // 4 attempts total: initial + 3 resends, then the exhausted timer.
        assert_eq!(world.messages_sent(), 4);
        assert_eq!(world.messages_lost(), 4);
    }

    #[test]
    fn retransmitter_ignores_ack_arriving_after_exhaustion() {
        // The satellite edge case: the budget runs out, *then* a straggler
        // ack shows up. It must be ignored — no panic, and the timer tag
        // must be cleanly reusable (no double-free of the entry).
        use std::cell::RefCell;
        thread_local! {
            static LOG: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        }
        struct LateAckSender {
            retx: Retransmitter<RetryMsg>,
        }
        impl Process<RetryMsg> for LateAckSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, RetryMsg>) {
                if ctx.me() == 0 {
                    let msg = RetryMsg { key: 3, ack: false };
                    self.retx.send(ctx, 1, 3, msg, 100);
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, RetryMsg>, _: NodeIdx, msg: RetryMsg) {
                // The ack arrives long after exhaustion (see link override
                // below): it must report "not in flight" and change
                // nothing.
                assert!(msg.ack);
                assert!(!self.retx.ack(msg.key), "late ack is a no-op");
                assert_eq!(self.retx.in_flight(), 0);
                LOG.with(|l| l.borrow_mut().push("late-ack"));
                // The tag namespace is reusable: a fresh send under the
                // same key works and its timer routes normally.
                let msg = RetryMsg { key: 3, ack: false };
                self.retx.send(ctx, 1, 3, msg, 100);
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, RetryMsg>, tag: u64) {
                match self.retx.handle_timer(ctx, tag) {
                    Some(RetryEvent::Exhausted { key, .. }) => {
                        assert_eq!(key, 3);
                        LOG.with(|l| l.borrow_mut().push("exhausted"));
                    }
                    Some(RetryEvent::Resent { .. }) => {}
                    // Spent timers from the exhausted entry: no-ops.
                    None => {}
                }
            }
        }
        /// Receiver that acks the first delivery only, with a huge delay
        /// (its reply link crawls), so exactly one straggler ack exists.
        struct SlowAcker {
            seen: Vec<u64>,
        }
        impl Process<RetryMsg> for SlowAcker {
            fn on_message(&mut self, ctx: &mut Ctx<'_, RetryMsg>, from: NodeIdx, msg: RetryMsg) {
                if self.seen.contains(&msg.key) {
                    return;
                }
                self.seen.push(msg.key);
                ctx.send(
                    from,
                    RetryMsg {
                        key: msg.key,
                        ack: true,
                    },
                    16,
                );
            }
        }
        LOG.with(|l| l.borrow_mut().clear());
        let mut world = World::new(LinkModel::lan(), 21);
        world.add(LateAckSender {
            retx: Retransmitter::new(10, 3, RETRY_TAG_BASE),
        });
        world.add(SlowAcker { seen: Vec::new() });
        // Acks crawl back: base latency far beyond the full retry budget
        // (3 attempts × 10 ticks), so exhaustion happens first.
        world.set_link_override(
            1,
            0,
            LinkModel {
                base_latency: 500,
                ticks_per_byte: 0.0,
                max_jitter: 0,
                loss: 0.0,
            },
        );
        world.run_until(10_000);
        let log = LOG.with(|l| l.borrow().clone());
        assert_eq!(log.first(), Some(&"exhausted"), "budget ran out first");
        assert!(
            log.contains(&"late-ack"),
            "straggler ack arrived and was ignored: {log:?}"
        );
    }

    #[test]
    fn retransmitter_timer_routing_ignores_foreign_and_spent_tags() {
        let mut world = World::new(LinkModel::lan(), 2);
        struct Router {
            retx: Retransmitter<u64>,
        }
        impl Process<u64> for Router {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                if ctx.me() == 0 {
                    self.retx.send(ctx, 1, 3, 99, 8);
                    ctx.set_timer(5, 1); // a tag below the base: ours, not the helper's
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeIdx, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, tag: u64) {
                if tag == 1 {
                    assert!(self.retx.handle_timer(ctx, tag).is_none(), "foreign tag");
                    // Ack before the helper's timer expires: its later
                    // expiry must be a spent no-op.
                    assert!(self.retx.ack(3));
                    assert_eq!(self.retx.in_flight(), 0);
                } else {
                    assert!(
                        self.retx.handle_timer(ctx, tag).is_none(),
                        "spent timer after ack"
                    );
                }
            }
        }
        world.add(Router {
            retx: Retransmitter::new(50, 3, RETRY_TAG_BASE),
        });
        world.add(Router {
            retx: Retransmitter::new(50, 3, RETRY_TAG_BASE),
        });
        world.run_until(10_000);
        // One data message sent; its spent retry timer fires as a no-op.
        assert_eq!(world.messages_sent(), 1);
    }

    #[test]
    fn run_until_deadline_stops_early() {
        let mut world = World::new(LinkModel::lan(), 4);
        struct Clock;
        impl Process<u64> for Clock {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.set_timer(10, 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeIdx, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, tag: u64) {
                ctx.set_timer(10, tag + 1); // re-arm forever
            }
        }
        world.add(Clock);
        let processed = world.run_until(100);
        assert_eq!(processed, 10); // timers at 10,20,...,100
        assert_eq!(world.now(), 100);
    }
}
