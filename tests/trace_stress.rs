//! Stress integration: replay a generated workload trace (Poisson
//! arrivals, Zipf retrievals, random discards) against a live network with
//! provider churn, then audit every invariant.

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::Engine;
use fi_core::engine::StateView;
use fi_core::params::ProtocolParams;
use fi_core::FileId;
use fi_crypto::{sha256, DetRng};
use fi_sim::workload::{Trace, TraceConfig, TraceOp};

const CLIENT: AccountId = AccountId(900);

fn provisioned_engine(seed: u64) -> Engine {
    let params = ProtocolParams {
        k: 3,
        delay_per_size: 2,
        avg_refresh: 8.0,
        seed,
        ..ProtocolParams::default()
    };
    let mut e = Engine::new(params).unwrap();
    e.fund(CLIENT, TokenAmount(10_000_000_000));
    for i in 0..10u64 {
        let p = AccountId(100 + i);
        e.fund(p, TokenAmount(1_000_000_000));
        e.sector_register(p, 1280).unwrap();
    }
    e
}

#[test]
fn trace_replay_with_churn_keeps_invariants() {
    let trace = Trace::generate(&TraceConfig {
        horizon: 6_000,
        mean_interarrival: 60.0,
        ..TraceConfig::default()
    });
    let mut engine = provisioned_engine(0xACE);
    let mut live: Vec<FileId> = Vec::new();
    let mut churn_rng = DetRng::from_seed_label(5, "churn");
    let mut gets = 0u64;
    let mut got_holders = 0u64;

    for event in &trace.events {
        // Advance to the event time, with honest providers acting.
        while engine.now() < event.at {
            engine.honest_providers_act();
            let next = (engine.now() + 50).min(event.at);
            engine.advance_to(next);
        }
        live.retain(|f| engine.file(*f).is_some());
        match event.op {
            TraceOp::Add { size, value_units } => {
                let value = TokenAmount(engine.params().min_value.0 * value_units as u128);
                let root = sha256(&event.at.to_be_bytes());
                if let Ok(f) = engine.file_add(CLIENT, size, value, root) {
                    live.push(f);
                }
            }
            TraceOp::Discard { nth } => {
                if !live.is_empty() {
                    let f = live[(nth % live.len() as u64) as usize];
                    let _ = engine.file_discard(CLIENT, f);
                }
            }
            TraceOp::Get { nth } => {
                if !live.is_empty() {
                    let f = live[(nth % live.len() as u64) as usize];
                    gets += 1;
                    if let Ok(holders) = engine.file_get(CLIENT, f) {
                        if !holders.is_empty() {
                            got_holders += 1;
                        }
                    }
                }
            }
        }
        // Occasional provider churn: one silent failure mid-trace.
        if event.at > 3_000 && churn_rng.bernoulli(0.002) {
            let sectors = engine.sector_ids();
            if !sectors.is_empty() {
                let sid = sectors[churn_rng.index(sectors.len())];
                engine.fail_sector_silently(sid);
            }
        }
    }
    // Settle.
    for _ in 0..8 {
        engine.honest_providers_act();
        engine.advance_to(engine.now() + engine.params().proof_cycle);
    }

    // Invariants after thousands of mixed operations.
    assert!(engine.ledger().audit(), "token conservation");
    assert_eq!(
        engine.stats().compensation_shortfall,
        TokenAmount::ZERO,
        "full compensation always"
    );
    assert!(gets > 50, "trace exercised retrieval: {gets}");
    assert!(
        got_holders * 10 >= gets * 9,
        "holders found for ≥90% of gets ({got_holders}/{gets})"
    );
    // Space accounting: every live sector's usage is consistent.
    for sid in engine.sector_ids() {
        let s = engine.sector(sid).unwrap();
        if s.state != fi_core::SectorState::Corrupted {
            let cr = engine.cr_accounting(sid).unwrap();
            assert_eq!(cr.free(), s.free_cap, "{sid} accounting drift");
            assert!(cr.invariant_holds(), "{sid} DRep invariant");
        }
    }
}

#[test]
fn trace_replay_deterministic() {
    let run = || {
        let trace = Trace::generate(&TraceConfig {
            horizon: 2_000,
            ..TraceConfig::default()
        });
        let mut engine = provisioned_engine(7);
        for event in &trace.events {
            while engine.now() < event.at {
                engine.honest_providers_act();
                let next = (engine.now() + 50).min(event.at);
                engine.advance_to(next);
            }
            if let TraceOp::Add { size, value_units } = event.op {
                let value = TokenAmount(engine.params().min_value.0 * value_units as u128);
                let _ = engine.file_add(CLIENT, size, value, sha256(&event.at.to_be_bytes()));
            }
        }
        engine.state_root()
    };
    assert_eq!(run(), run());
}
