//! The read surface over engine state: [`StateView`], [`PinnedState`],
//! and [`StateProof`].
//!
//! Consumers that only *read* protocol state — simulation harnesses,
//! node RPC, benchmarks — go through the [`StateView`] trait instead of
//! reaching into the engine's in-memory layout. Two implementations:
//!
//! * [`Engine`] itself — reads the live tracked maps; always current.
//! * [`PinnedState`] — reads the content-addressed state HAMTs at a
//!   pinned [`StateRoots`], so a historical version stays readable after
//!   the live engine has moved on (the blockstore is append-only;
//!   nothing is overwritten).
//!
//! [`StateProof`] is the light-client piece: a proof that one file
//! descriptor is committed by a given `state_root`, verifiable with no
//! store and no engine — just the proof bytes and the trusted root.
//!
//! The trait returns owned values, not references: a pinned view decodes
//! leaves out of the store on demand and has nothing to borrow from.
//! Methods that can fail on a store (`PinnedState`'s) have inherent
//! `try_*` forms returning [`enum@Error`]; the trait impl maps failures to
//! `None`/empty, which keeps the trait ergonomic for the common
//! in-memory case.

use std::sync::Arc;

use fi_crypto::Hash256;
use fi_store::{Blockstore, Hamt, StoreError};

use crate::drep::CrAccounting;
use crate::error::Error;
use crate::types::{AllocEntry, FileDescriptor, FileId, ProtocolEvent, Sector, SectorId};

use super::statemap::{self, StateHeader, StateRoots};
use super::{Engine, EngineError};

/// Read-only access to consensus-visible protocol state.
///
/// Everything here except [`StateView::events`] is consensus-visible:
/// committed by `state_root`, identical across shard counts, ingest
/// widths and store backends. `events` is diagnostic — a live engine's
/// pending event buffer — and is empty on pinned views.
pub trait StateView {
    /// The descriptor of a live file, if present.
    fn file(&self, id: FileId) -> Option<FileDescriptor>;

    /// A sector's record, if present.
    fn sector(&self, id: SectorId) -> Option<Sector>;

    /// The allocation row for `(file, index)`, if present.
    fn alloc_entry(&self, file: FileId, index: u32) -> Option<AllocEntry>;

    /// A sector's DRep (duplicated-replica) accounting, if present.
    fn cr_accounting(&self, id: SectorId) -> Option<CrAccounting>;

    /// All live file ids, sorted ascending.
    fn file_ids(&self) -> Vec<FileId>;

    /// All sector ids, sorted ascending.
    fn sector_ids(&self) -> Vec<SectorId>;

    /// The pending protocol events, **without** consuming them
    /// (diagnostic — not part of the state commitment; empty for pinned
    /// views). The consuming form is [`Engine::take_events`].
    fn events(&self) -> Vec<ProtocolEvent>;
}

impl StateView for Engine {
    fn file(&self, id: FileId) -> Option<FileDescriptor> {
        self.shards.file(id).cloned()
    }

    fn sector(&self, id: SectorId) -> Option<Sector> {
        self.sectors.get(&id).cloned()
    }

    fn alloc_entry(&self, file: FileId, index: u32) -> Option<AllocEntry> {
        self.shards.entry(file, index).cloned()
    }

    fn cr_accounting(&self, id: SectorId) -> Option<CrAccounting> {
        self.cr.get(&id).cloned()
    }

    fn file_ids(&self) -> Vec<FileId> {
        self.shards.file_ids()
    }

    fn sector_ids(&self) -> Vec<SectorId> {
        let mut ids: Vec<SectorId> = self.sectors.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    fn events(&self) -> Vec<ProtocolEvent> {
        self.events.clone()
    }
}

impl Engine {
    /// Pins the current state for historical reads: syncs the commitment
    /// and returns a [`PinnedState`] over this engine's blockstore at the
    /// current [`StateRoots`]. The pin stays readable as the live engine
    /// mutates — the store is content-addressed and append-only.
    ///
    /// # Panics
    ///
    /// As [`Engine::state_root`]: on backing-store write failure.
    pub fn pin_state(&self) -> PinnedState {
        PinnedState {
            store: Arc::clone(&self.store),
            roots: self.state_roots(),
        }
    }

    /// Proves that `file`'s descriptor is committed by the current
    /// [`Engine::state_root`]. The proof verifies offline against the
    /// root alone — see [`StateProof::verify`].
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownFile`] (as [`variant@Error::Engine`]) when the
    /// file does not exist; store failures as [`variant@Error::Store`].
    ///
    /// # Panics
    ///
    /// As [`Engine::state_root`]: on backing-store write failure.
    pub fn prove_file(&self, file: FileId) -> Result<StateProof, Error> {
        let roots = self.state_roots();
        let path = Hamt::prove(self.store.as_ref(), roots.files, &statemap::key_file(file))?
            .ok_or(EngineError::UnknownFile(file))?;
        Ok(StateProof {
            header: self.state_header(),
            map_roots: roots.map_roots(),
            file,
            path,
        })
    }
}

/// A read-only view over the state HAMTs at a pinned [`StateRoots`] —
/// the historical reader behind [`StateView`].
///
/// Obtained from [`Engine::pin_state`], or constructed directly from any
/// blockstore holding the referenced nodes (e.g. one restored from a
/// delta snapshot).
#[derive(Debug, Clone)]
pub struct PinnedState {
    store: Arc<dyn Blockstore>,
    roots: StateRoots,
}

impl PinnedState {
    /// A pinned view of `roots` over `store`. The store must hold every
    /// node reachable from the five map roots; missing nodes surface as
    /// [`StoreError::NotFound`] on access, not here.
    pub fn new(store: Arc<dyn Blockstore>, roots: StateRoots) -> Self {
        PinnedState { store, roots }
    }

    /// The pinned roots.
    pub fn roots(&self) -> &StateRoots {
        &self.roots
    }

    /// Fallible form of [`StateView::file`].
    ///
    /// # Errors
    ///
    /// Store failures and corrupt leaf bytes as [`variant@Error::Store`].
    pub fn try_file(&self, id: FileId) -> Result<Option<FileDescriptor>, Error> {
        self.leaf(
            self.roots.files,
            &statemap::key_file(id),
            statemap::dec_file,
        )
    }

    /// Fallible form of [`StateView::sector`].
    ///
    /// # Errors
    ///
    /// Store failures and corrupt leaf bytes as [`variant@Error::Store`].
    pub fn try_sector(&self, id: SectorId) -> Result<Option<Sector>, Error> {
        self.leaf(
            self.roots.sectors,
            &statemap::key_sector(id),
            statemap::dec_sector,
        )
    }

    /// Fallible form of [`StateView::alloc_entry`].
    ///
    /// # Errors
    ///
    /// Store failures and corrupt leaf bytes as [`variant@Error::Store`].
    pub fn try_alloc_entry(&self, file: FileId, index: u32) -> Result<Option<AllocEntry>, Error> {
        self.leaf(
            self.roots.alloc,
            &statemap::key_alloc(file, index),
            statemap::dec_alloc_entry,
        )
    }

    /// Fallible form of [`StateView::cr_accounting`].
    ///
    /// # Errors
    ///
    /// Store failures and corrupt leaf bytes as [`variant@Error::Store`].
    pub fn try_cr_accounting(&self, id: SectorId) -> Result<Option<CrAccounting>, Error> {
        self.leaf(self.roots.cr, &statemap::key_sector(id), statemap::dec_cr)
    }

    /// Fallible form of [`StateView::file_ids`].
    ///
    /// # Errors
    ///
    /// Store failures and corrupt nodes/keys as [`variant@Error::Store`].
    pub fn try_file_ids(&self) -> Result<Vec<FileId>, Error> {
        Ok(self.walk_u64_keys(self.roots.files)?.map(FileId).collect())
    }

    /// Fallible form of [`StateView::sector_ids`].
    ///
    /// # Errors
    ///
    /// Store failures and corrupt nodes/keys as [`variant@Error::Store`].
    pub fn try_sector_ids(&self) -> Result<Vec<SectorId>, Error> {
        Ok(self
            .walk_u64_keys(self.roots.sectors)?
            .map(SectorId)
            .collect())
    }

    /// Reads and decodes one leaf out of the map rooted at `root`.
    fn leaf<T>(
        &self,
        root: Hash256,
        key: &[u8],
        dec: impl FnOnce(&[u8]) -> Result<T, StoreError>,
    ) -> Result<Option<T>, Error> {
        Hamt::load(root)
            .get(self.store.as_ref(), key)?
            .map(|bytes| dec(&bytes))
            .transpose()
            .map_err(Error::from)
    }

    /// Collects the 8-byte big-endian keys of the map rooted at `root`,
    /// sorted ascending.
    fn walk_u64_keys(&self, root: Hash256) -> Result<impl Iterator<Item = u64>, Error> {
        let mut ids = Vec::new();
        let mut malformed = false;
        Hamt::load(root).walk(
            self.store.as_ref(),
            &mut |key, _| match <[u8; 8]>::try_from(key) {
                Ok(k) => ids.push(u64::from_be_bytes(k)),
                Err(_) => malformed = true,
            },
        )?;
        if malformed {
            return Err(StoreError::Corrupt("state map key width").into());
        }
        ids.sort_unstable();
        Ok(ids.into_iter())
    }
}

impl StateView for PinnedState {
    fn file(&self, id: FileId) -> Option<FileDescriptor> {
        self.try_file(id).ok().flatten()
    }

    fn sector(&self, id: SectorId) -> Option<Sector> {
        self.try_sector(id).ok().flatten()
    }

    fn alloc_entry(&self, file: FileId, index: u32) -> Option<AllocEntry> {
        self.try_alloc_entry(file, index).ok().flatten()
    }

    fn cr_accounting(&self, id: SectorId) -> Option<CrAccounting> {
        self.try_cr_accounting(id).ok().flatten()
    }

    fn file_ids(&self) -> Vec<FileId> {
        self.try_file_ids().unwrap_or_default()
    }

    fn sector_ids(&self) -> Vec<SectorId> {
        self.try_sector_ids().unwrap_or_default()
    }

    /// Always empty: events are a live engine's pending buffer, not part
    /// of the committed state.
    fn events(&self) -> Vec<ProtocolEvent> {
        Vec::new()
    }
}

/// A light-client inclusion proof: one file descriptor, proven against a
/// trusted `state_root` with no store and no engine.
///
/// Produced by [`Engine::prove_file`]; checked by [`StateProof::verify`].
/// The proof carries the scalar [`StateHeader`], the five map roots, and
/// the HAMT node path from the files root down to the leaf bucket — the
/// verifier recomputes `state_root` from the header and roots, then
/// checks the hash chain down to the descriptor bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateProof {
    /// The scalar fields of the committed state.
    pub header: StateHeader,
    /// The five map roots in canonical fold order
    /// ([`StateRoots::map_roots`]).
    pub map_roots: [Hash256; 5],
    /// The file the proof speaks for.
    pub file: FileId,
    /// Raw HAMT node bytes from the files root to the leaf bucket.
    pub path: Vec<Vec<u8>>,
}

impl StateProof {
    /// Verifies the proof against `trusted_root` and returns the proven
    /// descriptor.
    ///
    /// Checks, in order: the header and map roots fold to
    /// `trusted_root`; the node path hash-chains from the files root to
    /// a bucket holding the key; the leaf bytes decode to a descriptor
    /// whose id matches [`StateProof::file`]. Any tampering — with the
    /// header, a root, a path node, or the leaf — fails one of those
    /// checks with a typed error.
    ///
    /// # Errors
    ///
    /// [`StoreError::Proof`] (as [`variant@Error::Store`]) on commitment or
    /// path mismatches; [`StoreError::Corrupt`] on undecodable bytes.
    pub fn verify(&self, trusted_root: Hash256) -> Result<FileDescriptor, Error> {
        let folded =
            statemap::fold_state_root(&self.header, statemap::fold_maps_root(&self.map_roots));
        if folded != trusted_root {
            return Err(
                StoreError::Proof("header and roots do not fold to the trusted root").into(),
            );
        }
        let leaf = Hamt::verify_proof(
            self.map_roots[0],
            &statemap::key_file(self.file),
            &self.path,
        )?;
        let desc = statemap::dec_file(&leaf)?;
        if desc.id != self.file {
            return Err(StoreError::Proof("leaf descriptor id mismatch").into());
        }
        Ok(desc)
    }
}
