//! A copy-on-write hash-array-mapped trie persisted as content-addressed
//! blockstore nodes — the persistent `bytes → bytes` map behind the
//! engine's state commitment (DESIGN.md §15).
//!
//! # Shape
//!
//! Keys are routed by their SHA-256 hash, consumed 5 bits per level
//! ([`FANOUT`] = 32 slots per node, up to [`MAX_DEPTH`] levels). Each
//! occupied slot holds either a **bucket** of up to [`BUCKET_SIZE`]
//! key-value pairs (sorted by key bytes) or a link to a **child** node.
//! A slot becomes a child exactly when more than [`BUCKET_SIZE`] keys
//! share its hash prefix, and collapses back into a bucket as soon as
//! deletions bring the subtree to [`BUCKET_SIZE`] or fewer pairs.
//!
//! # Canonical form
//!
//! Those two rules make the trie **history-independent**: the structure —
//! and therefore the root hash — is a pure function of the key-value set,
//! not of the insert/delete order that produced it. Two engines that
//! mutate their maps in different orders (different shard counts,
//! different ingest interleavings) still converge on bit-identical roots.
//! The property tests in this module shuffle and interleave mutation
//! orders to pin this down.
//!
//! # Copy-on-write
//!
//! In-memory nodes are held behind [`Arc`]s; cloning a [`Hamt`] is O(1)
//! and mutation copies only the path being written
//! ([`Arc::make_mut`]). [`Hamt::flush`] writes the dirty nodes into a
//! [`Blockstore`] and returns the root hash; nodes reached through an
//! unflushed map stay purely in memory, so read traffic never touches
//! the store until a commitment is actually needed.
//!
//! # Defensive decoding
//!
//! Node bytes loaded from a store are untrusted: truncation, bit flips,
//! unsorted buckets and over-deep paths (the only way a malicious store
//! can express a link cycle, since honest links are hashes of the child's
//! bytes) all surface as typed [`StoreError`]s, never a panic or an
//! unbounded traversal.

use std::collections::HashSet;
use std::sync::Arc;

use fi_crypto::{sha256, Hash256};

use crate::blockstore::{block_hash, Blockstore, StoreError};

/// Slots per node: 5 bits of key hash per level.
pub const FANOUT: u32 = 32;
/// Maximum key-value pairs a leaf bucket holds before splitting into a
/// child node (except at [`MAX_DEPTH`], where buckets absorb full-hash
/// collisions unbounded).
pub const BUCKET_SIZE: usize = 3;
/// Deepest level: 51 five-bit steps consume 255 of the 256 hash bits.
/// Any traversal past this is structurally impossible for honest data,
/// so it is reported as corruption (a cycle-forming store would
/// otherwise loop forever).
pub const MAX_DEPTH: usize = 51;

/// The 5-bit slot index for `depth` steps into the key hash.
fn nibble(hash: &Hash256, depth: usize) -> u32 {
    let bit = depth * 5;
    let byte = bit / 8;
    let shift = bit % 8;
    let bytes = hash.as_bytes();
    let lo = bytes[byte] as u32;
    let hi = if byte + 1 < 32 {
        bytes[byte + 1] as u32
    } else {
        0
    };
    ((lo >> shift) | (hi << (8 - shift))) & (FANOUT - 1)
}

/// A key-value pair as stored in a leaf bucket.
type Kv = (Vec<u8>, Vec<u8>);

/// A link to a child node: resident and modified since the last flush
/// (`Dirty`), resident with its stored hash known (`Clean`), or not yet
/// loaded (`Stored`).
#[derive(Debug, Clone)]
enum Link {
    Dirty(Arc<Node>),
    Clean(Arc<Node>, Hash256),
    Stored(Hash256),
}

/// One occupied slot: a sorted leaf bucket or a child link.
#[derive(Debug, Clone)]
enum Slot {
    Bucket(Vec<Kv>),
    Child(Link),
}

/// A trie node: a 32-bit occupancy bitmap plus one [`Slot`] per set bit,
/// in ascending bit order.
#[derive(Debug, Clone, Default)]
struct Node {
    bitmap: u32,
    slots: Vec<Slot>,
}

impl Node {
    /// Position of slot `nib` within `slots`, if occupied.
    fn slot_index(&self, nib: u32) -> Option<usize> {
        if self.bitmap & (1 << nib) == 0 {
            return None;
        }
        Some((self.bitmap & ((1u32 << nib) - 1)).count_ones() as usize)
    }

    /// Where slot `nib` would be inserted.
    fn insert_index(&self, nib: u32) -> usize {
        (self.bitmap & ((1u32 << nib) - 1)).count_ones() as usize
    }

    fn insert_slot(&mut self, nib: u32, slot: Slot) {
        let idx = self.insert_index(nib);
        self.bitmap |= 1 << nib;
        self.slots.insert(idx, slot);
    }

    fn remove_slot(&mut self, nib: u32) {
        if let Some(idx) = self.slot_index(nib) {
            self.bitmap &= !(1 << nib);
            self.slots.remove(idx);
        }
    }
}

// ----------------------------------------------------------------------
// Canonical node encoding
// ----------------------------------------------------------------------

const TAG_BUCKET: u8 = 0;
const TAG_CHILD: u8 = 1;

/// Serializes a node whose child links all carry known hashes
/// (`Clean`/`Stored` — i.e. after its children were flushed).
fn encode_node(node: &Node) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&node.bitmap.to_be_bytes());
    for slot in &node.slots {
        match slot {
            Slot::Bucket(kvs) => {
                out.push(TAG_BUCKET);
                out.extend_from_slice(&(kvs.len() as u32).to_be_bytes());
                for (k, v) in kvs {
                    out.extend_from_slice(&(k.len() as u32).to_be_bytes());
                    out.extend_from_slice(k);
                    out.extend_from_slice(&(v.len() as u32).to_be_bytes());
                    out.extend_from_slice(v);
                }
            }
            Slot::Child(link) => {
                let hash = match link {
                    Link::Clean(_, h) | Link::Stored(h) => h,
                    Link::Dirty(_) => unreachable!("encode_node called before children flushed"),
                };
                out.push(TAG_CHILD);
                out.extend_from_slice(hash.as_bytes());
            }
        }
    }
    out
}

/// Parses untrusted node bytes, validating every structural invariant the
/// encoder maintains. Child links come back as [`Link::Stored`].
fn decode_node(bytes: &[u8]) -> Result<Node, StoreError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], StoreError> {
        if *pos + n > bytes.len() {
            return Err(StoreError::Corrupt("truncated node bytes"));
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    let bitmap = u32::from_be_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
    let mut slots = Vec::with_capacity(bitmap.count_ones() as usize);
    for _ in 0..bitmap.count_ones() {
        match take(&mut pos, 1)?[0] {
            TAG_BUCKET => {
                let count = u32::from_be_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
                if count == 0 {
                    return Err(StoreError::Corrupt("empty bucket slot"));
                }
                if count as usize > bytes.len() {
                    return Err(StoreError::Corrupt("bucket count exceeds node bytes"));
                }
                let mut kvs = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let klen = u32::from_be_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
                    let k = take(&mut pos, klen as usize)?.to_vec();
                    let vlen = u32::from_be_bytes(take(&mut pos, 4)?.try_into().expect("4 bytes"));
                    let v = take(&mut pos, vlen as usize)?.to_vec();
                    if let Some((prev, _)) = kvs.last() {
                        if *prev >= k {
                            return Err(StoreError::Corrupt("bucket keys out of order"));
                        }
                    }
                    kvs.push((k, v));
                }
                slots.push(Slot::Bucket(kvs));
            }
            TAG_CHILD => {
                let hash = Hash256::from_bytes(take(&mut pos, 32)?.try_into().expect("32 bytes"));
                slots.push(Slot::Child(Link::Stored(hash)));
            }
            _ => return Err(StoreError::Corrupt("unknown slot tag")),
        }
    }
    if pos != bytes.len() {
        return Err(StoreError::Corrupt("trailing bytes after node"));
    }
    Ok(Node { bitmap, slots })
}

/// Loads the node behind a link for reading.
fn link_node(link: &Link, store: &dyn Blockstore) -> Result<Arc<Node>, StoreError> {
    match link {
        Link::Dirty(n) | Link::Clean(n, _) => Ok(Arc::clone(n)),
        Link::Stored(h) => {
            let bytes = store.get(h)?.ok_or(StoreError::NotFound(*h))?;
            Ok(Arc::new(decode_node(&bytes)?))
        }
    }
}

/// Loads the node behind a link for writing: the link becomes `Dirty`
/// and the caller gets exclusive access to a private copy.
fn link_node_mut<'a>(
    link: &'a mut Link,
    store: &dyn Blockstore,
) -> Result<&'a mut Node, StoreError> {
    if let Link::Stored(h) = link {
        let bytes = store.get(h)?.ok_or(StoreError::NotFound(*h))?;
        *link = Link::Dirty(Arc::new(decode_node(&bytes)?));
    } else if let Link::Clean(n, _) = link {
        *link = Link::Dirty(Arc::clone(n));
    }
    match link {
        Link::Dirty(n) => Ok(Arc::make_mut(n)),
        _ => unreachable!("link normalized to Dirty above"),
    }
}

// ----------------------------------------------------------------------
// Core operations
// ----------------------------------------------------------------------

fn node_get(
    node: &Node,
    store: &dyn Blockstore,
    hash: &Hash256,
    depth: usize,
    key: &[u8],
) -> Result<Option<Vec<u8>>, StoreError> {
    if depth >= MAX_DEPTH {
        return Err(StoreError::Corrupt("trie deeper than the key hash"));
    }
    let nib = nibble(hash, depth);
    match node.slot_index(nib).map(|i| &node.slots[i]) {
        None => Ok(None),
        Some(Slot::Bucket(kvs)) => Ok(kvs
            .iter()
            .find(|(k, _)| k.as_slice() == key)
            .map(|(_, v)| v.clone())),
        Some(Slot::Child(link)) => {
            let child = link_node(link, store)?;
            node_get(&child, store, hash, depth + 1, key)
        }
    }
}

fn node_set(
    node: &mut Node,
    store: &dyn Blockstore,
    hash: &Hash256,
    depth: usize,
    key: &[u8],
    value: &[u8],
) -> Result<(), StoreError> {
    if depth >= MAX_DEPTH {
        return Err(StoreError::Corrupt("trie deeper than the key hash"));
    }
    let nib = nibble(hash, depth);
    let Some(idx) = node.slot_index(nib) else {
        node.insert_slot(nib, Slot::Bucket(vec![(key.to_vec(), value.to_vec())]));
        return Ok(());
    };
    match &mut node.slots[idx] {
        Slot::Bucket(kvs) => {
            match kvs.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                Ok(i) => kvs[i].1 = value.to_vec(),
                Err(i) => {
                    // The deepest level absorbs full-hash collisions in an
                    // unbounded bucket: there are no path bits left to
                    // split on.
                    if kvs.len() < BUCKET_SIZE || depth + 1 >= MAX_DEPTH {
                        kvs.insert(i, (key.to_vec(), value.to_vec()));
                    } else {
                        // Overflow: push the bucket one level down. The
                        // re-inserted pairs may collide again on the next
                        // 5 bits — recursion splits as deep as needed.
                        let mut spill = std::mem::take(kvs);
                        spill.push((key.to_vec(), value.to_vec()));
                        let mut child = Node::default();
                        for (k, v) in &spill {
                            let kh = sha256(k);
                            node_set(&mut child, store, &kh, depth + 1, k, v)?;
                        }
                        node.slots[idx] = Slot::Child(Link::Dirty(Arc::new(child)));
                    }
                }
            }
            Ok(())
        }
        Slot::Child(link) => {
            let child = link_node_mut(link, store)?;
            node_set(child, store, hash, depth + 1, key, value)
        }
    }
}

/// If `node` holds nothing but at most [`BUCKET_SIZE`] pairs in leaf
/// buckets (no child links), returns them merged and sorted — the parent
/// replaces the child link with a single bucket, restoring the canonical
/// "a child exists only above `BUCKET_SIZE` pairs" invariant.
fn collapse_kvs(node: &Node) -> Option<Vec<Kv>> {
    let mut total = 0usize;
    for slot in &node.slots {
        match slot {
            Slot::Child(_) => return None, // subtree holds > BUCKET_SIZE pairs
            Slot::Bucket(kvs) => total += kvs.len(),
        }
    }
    if total > BUCKET_SIZE {
        return None;
    }
    let mut merged: Vec<Kv> = node
        .slots
        .iter()
        .flat_map(|s| match s {
            Slot::Bucket(kvs) => kvs.clone(),
            Slot::Child(_) => unreachable!("checked above"),
        })
        .collect();
    merged.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
    Some(merged)
}

fn node_delete(
    node: &mut Node,
    store: &dyn Blockstore,
    hash: &Hash256,
    depth: usize,
    key: &[u8],
) -> Result<bool, StoreError> {
    if depth >= MAX_DEPTH {
        return Err(StoreError::Corrupt("trie deeper than the key hash"));
    }
    let nib = nibble(hash, depth);
    let Some(idx) = node.slot_index(nib) else {
        return Ok(false);
    };
    match &mut node.slots[idx] {
        Slot::Bucket(kvs) => {
            let Ok(i) = kvs.binary_search_by(|(k, _)| k.as_slice().cmp(key)) else {
                return Ok(false);
            };
            kvs.remove(i);
            if kvs.is_empty() {
                node.remove_slot(nib);
            }
            Ok(true)
        }
        Slot::Child(link) => {
            let child = link_node_mut(link, store)?;
            if !node_delete(child, store, hash, depth + 1, key)? {
                return Ok(false);
            }
            if let Some(kvs) = collapse_kvs(child) {
                node.slots[idx] = Slot::Bucket(kvs);
            }
            Ok(true)
        }
    }
}

fn flush_link(link: &mut Link, store: &dyn Blockstore) -> Result<Hash256, StoreError> {
    match link {
        Link::Stored(h) => Ok(*h),
        Link::Clean(_, h) => Ok(*h),
        Link::Dirty(arc) => {
            let node = Arc::make_mut(arc);
            for slot in &mut node.slots {
                if let Slot::Child(child) = slot {
                    flush_link(child, store)?;
                }
            }
            let bytes = encode_node(node);
            let hash = store.put(&bytes)?;
            let resident = Arc::clone(arc);
            *link = Link::Clean(resident, hash);
            Ok(hash)
        }
    }
}

fn walk_link(
    link: &Link,
    store: &dyn Blockstore,
    depth: usize,
    f: &mut dyn FnMut(&[u8], &[u8]),
) -> Result<(), StoreError> {
    if depth >= MAX_DEPTH {
        return Err(StoreError::Corrupt("trie deeper than the key hash"));
    }
    let node = link_node(link, store)?;
    for slot in &node.slots {
        match slot {
            Slot::Bucket(kvs) => {
                for (k, v) in kvs {
                    f(k, v);
                }
            }
            Slot::Child(child) => walk_link(child, store, depth + 1, f)?,
        }
    }
    Ok(())
}

/// Collects every node hash reachable from `root` into `out`.
fn reachable_hashes(
    store: &dyn Blockstore,
    root: Hash256,
    depth: usize,
    out: &mut HashSet<Hash256>,
) -> Result<(), StoreError> {
    if depth >= MAX_DEPTH {
        return Err(StoreError::Corrupt("trie deeper than the key hash"));
    }
    if !out.insert(root) {
        return Ok(());
    }
    let bytes = store.get(&root)?.ok_or(StoreError::NotFound(root))?;
    let node = decode_node(&bytes)?;
    for slot in &node.slots {
        if let Slot::Child(Link::Stored(h)) = slot {
            reachable_hashes(store, *h, depth + 1, out)?;
        }
    }
    Ok(())
}

fn collect_new_nodes(
    store: &dyn Blockstore,
    root: Hash256,
    depth: usize,
    base: &HashSet<Hash256>,
    seen: &mut HashSet<Hash256>,
    out: &mut Vec<(Hash256, Vec<u8>)>,
) -> Result<(), StoreError> {
    if depth >= MAX_DEPTH {
        return Err(StoreError::Corrupt("trie deeper than the key hash"));
    }
    // A node already in the base is shared along with its whole subtree:
    // content addressing means identical hash ⇒ identical reachable set.
    if base.contains(&root) || !seen.insert(root) {
        return Ok(());
    }
    let bytes = store.get(&root)?.ok_or(StoreError::NotFound(root))?;
    let node = decode_node(&bytes)?;
    out.push((root, bytes.to_vec()));
    for slot in &node.slots {
        if let Slot::Child(Link::Stored(h)) = slot {
            collect_new_nodes(store, *h, depth + 1, base, seen, out)?;
        }
    }
    Ok(())
}

/// A copy-on-write persistent map from byte keys to byte values, stored
/// as content-addressed trie nodes (see the [crate docs](crate)).
///
/// Cloning is O(1) (shared [`Arc`] structure); the clones diverge
/// copy-on-write. An unflushed map lives purely in memory; [`Hamt::flush`]
/// persists it and returns the root hash that [`Hamt::load`] (or any of
/// the root-addressed associated functions) can pick back up.
#[derive(Debug, Clone)]
pub struct Hamt {
    root: Link,
}

impl Default for Hamt {
    fn default() -> Self {
        Hamt::new()
    }
}

impl Hamt {
    /// An empty map (not yet flushed anywhere).
    pub fn new() -> Self {
        Hamt {
            root: Link::Dirty(Arc::new(Node::default())),
        }
    }

    /// A map pinned to a previously flushed `root`. Nodes load lazily on
    /// first touch; a root the store does not hold surfaces as
    /// [`StoreError::NotFound`] at access time.
    pub fn load(root: Hash256) -> Self {
        Hamt {
            root: Link::Stored(root),
        }
    }

    /// The root hash, if the map is flushed (`None` while dirty).
    pub fn root_hash(&self) -> Option<Hash256> {
        match &self.root {
            Link::Clean(_, h) | Link::Stored(h) => Some(*h),
            Link::Dirty(_) => None,
        }
    }

    /// The value stored under `key`, if any.
    ///
    /// # Errors
    ///
    /// Store failures and corrupt node bytes ([`StoreError`]).
    pub fn get(&self, store: &dyn Blockstore, key: &[u8]) -> Result<Option<Vec<u8>>, StoreError> {
        let hash = sha256(key);
        let node = link_node(&self.root, store)?;
        node_get(&node, store, &hash, 0, key)
    }

    /// Inserts or replaces `key → value`.
    ///
    /// # Errors
    ///
    /// Store failures and corrupt node bytes ([`StoreError`]).
    pub fn set(
        &mut self,
        store: &dyn Blockstore,
        key: &[u8],
        value: &[u8],
    ) -> Result<(), StoreError> {
        let hash = sha256(key);
        let node = link_node_mut(&mut self.root, store)?;
        node_set(node, store, &hash, 0, key, value)
    }

    /// Removes `key`, reporting whether it was present.
    ///
    /// # Errors
    ///
    /// Store failures and corrupt node bytes ([`StoreError`]).
    pub fn delete(&mut self, store: &dyn Blockstore, key: &[u8]) -> Result<bool, StoreError> {
        let hash = sha256(key);
        let node = link_node_mut(&mut self.root, store)?;
        let removed = node_delete(node, store, &hash, 0, key)?;
        // The root is exempt from the collapse rule (it legitimately holds
        // few pairs), so nothing more to do here.
        Ok(removed)
    }

    /// Writes every dirty node into `store` and returns the root hash —
    /// the cryptographic commitment to the full map contents.
    ///
    /// # Errors
    ///
    /// Store failures ([`StoreError::Io`]).
    pub fn flush(&mut self, store: &dyn Blockstore) -> Result<Hash256, StoreError> {
        flush_link(&mut self.root, store)
    }

    /// Visits every key-value pair (in hash-path order, not key order).
    ///
    /// # Errors
    ///
    /// Store failures and corrupt node bytes ([`StoreError`]).
    pub fn walk(
        &self,
        store: &dyn Blockstore,
        f: &mut dyn FnMut(&[u8], &[u8]),
    ) -> Result<(), StoreError> {
        walk_link(&self.root, store, 0, f)
    }

    /// The nodes reachable from `new_root` but not from `base_root` — an
    /// incremental snapshot's payload: a reader holding every node of
    /// `base_root` needs exactly these `(hash, bytes)` blocks to read
    /// `new_root` in full. Both roots must be flushed into `store`.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotFound`] when either tree is incomplete in
    /// `store`; corrupt node bytes as [`StoreError::Corrupt`].
    pub fn diff_new_nodes(
        store: &dyn Blockstore,
        new_root: Hash256,
        base_root: Hash256,
    ) -> Result<Vec<(Hash256, Vec<u8>)>, StoreError> {
        let mut base = HashSet::new();
        reachable_hashes(store, base_root, 0, &mut base)?;
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        collect_new_nodes(store, new_root, 0, &base, &mut seen, &mut out)?;
        Ok(out)
    }

    /// An inclusion proof for `key` against the flushed `root`: the node
    /// bytes along the path from the root to the leaf bucket holding the
    /// key. `Ok(None)` when the key is absent (absence is not proven).
    ///
    /// # Errors
    ///
    /// Store failures and corrupt node bytes ([`StoreError`]).
    pub fn prove(
        store: &dyn Blockstore,
        root: Hash256,
        key: &[u8],
    ) -> Result<Option<Vec<Vec<u8>>>, StoreError> {
        let hash = sha256(key);
        let mut nodes = Vec::new();
        let mut current = root;
        for depth in 0..MAX_DEPTH {
            let bytes = store.get(&current)?.ok_or(StoreError::NotFound(current))?;
            let node = decode_node(&bytes)?;
            nodes.push(bytes.to_vec());
            let nib = nibble(&hash, depth);
            match node.slot_index(nib).map(|i| &node.slots[i]) {
                None => return Ok(None),
                Some(Slot::Bucket(kvs)) => {
                    if kvs.iter().any(|(k, _)| k.as_slice() == key) {
                        return Ok(Some(nodes));
                    }
                    return Ok(None);
                }
                Some(Slot::Child(Link::Stored(h))) => current = *h,
                Some(Slot::Child(_)) => unreachable!("decode_node yields Stored links"),
            }
        }
        Err(StoreError::Corrupt("trie deeper than the key hash"))
    }

    /// Verifies a [`Hamt::prove`] path against `root` and returns the
    /// proven value. Rejects — with a typed [`StoreError::Proof`] — any
    /// tampering: a broken hash chain, malformed node bytes, a path that
    /// is truncated, over-long, or does not contain the key.
    ///
    /// # Errors
    ///
    /// [`StoreError::Proof`] on any verification failure,
    /// [`StoreError::Corrupt`] on undecodable node bytes.
    pub fn verify_proof(
        root: Hash256,
        key: &[u8],
        nodes: &[Vec<u8>],
    ) -> Result<Vec<u8>, StoreError> {
        if nodes.is_empty() {
            return Err(StoreError::Proof("empty proof path"));
        }
        if nodes.len() > MAX_DEPTH {
            return Err(StoreError::Proof("proof path too deep"));
        }
        let hash = sha256(key);
        let mut want = root;
        for (depth, bytes) in nodes.iter().enumerate() {
            if block_hash(bytes) != want {
                return Err(StoreError::Proof("node hash breaks the commitment chain"));
            }
            let node = decode_node(bytes)?;
            let nib = nibble(&hash, depth);
            match node.slot_index(nib).map(|i| &node.slots[i]) {
                None => return Err(StoreError::Proof("path reaches an empty slot")),
                Some(Slot::Bucket(kvs)) => {
                    if depth + 1 != nodes.len() {
                        return Err(StoreError::Proof("extra nodes after the leaf"));
                    }
                    return kvs
                        .iter()
                        .find(|(k, _)| k.as_slice() == key)
                        .map(|(_, v)| v.clone())
                        .ok_or(StoreError::Proof("key absent from the leaf bucket"));
                }
                Some(Slot::Child(Link::Stored(h))) => want = *h,
                Some(Slot::Child(_)) => unreachable!("decode_node yields Stored links"),
            }
        }
        Err(StoreError::Proof("proof path ends at a child link"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blockstore::MemoryBlockstore;

    fn kv(i: u64) -> (Vec<u8>, Vec<u8>) {
        (
            format!("key-{i}").into_bytes(),
            format!("value-{i}-{}", i * 31).into_bytes(),
        )
    }

    #[test]
    fn set_get_delete_roundtrip() {
        let store = MemoryBlockstore::new();
        let mut map = Hamt::new();
        for i in 0..500 {
            let (k, v) = kv(i);
            map.set(&store, &k, &v).unwrap();
        }
        for i in 0..500 {
            let (k, v) = kv(i);
            assert_eq!(map.get(&store, &k).unwrap(), Some(v));
        }
        assert_eq!(map.get(&store, b"missing").unwrap(), None);
        for i in (0..500).step_by(2) {
            let (k, _) = kv(i);
            assert!(map.delete(&store, &k).unwrap());
            assert!(!map.delete(&store, &k).unwrap());
        }
        for i in 0..500 {
            let (k, v) = kv(i);
            let expect = if i % 2 == 0 { None } else { Some(v) };
            assert_eq!(map.get(&store, &k).unwrap(), expect);
        }
    }

    #[test]
    fn roots_are_history_independent() {
        let store = MemoryBlockstore::new();
        let n = 300u64;

        // Ascending insertion.
        let mut a = Hamt::new();
        for i in 0..n {
            let (k, v) = kv(i);
            a.set(&store, &k, &v).unwrap();
        }
        // Descending insertion with interleaved flushes (persisted and
        // in-memory paths must agree).
        let mut b = Hamt::new();
        for i in (0..n).rev() {
            let (k, v) = kv(i);
            b.set(&store, &k, &v).unwrap();
            if i % 37 == 0 {
                b.flush(&store).unwrap();
            }
        }
        // Overshoot-and-delete: insert 2n, remove the top n, overwrite a
        // few values with garbage and then restore them.
        let mut c = Hamt::new();
        for i in 0..2 * n {
            let (k, v) = kv(i);
            c.set(&store, &k, &v).unwrap();
        }
        for i in n..2 * n {
            let (k, _) = kv(i);
            assert!(c.delete(&store, &k).unwrap());
        }
        for i in (0..n).step_by(7) {
            let (k, _) = kv(i);
            c.set(&store, &k, b"garbage").unwrap();
        }
        for i in (0..n).step_by(7) {
            let (k, v) = kv(i);
            c.set(&store, &k, &v).unwrap();
        }

        let ra = a.flush(&store).unwrap();
        let rb = b.flush(&store).unwrap();
        let rc = c.flush(&store).unwrap();
        assert_eq!(ra, rb, "insertion order changed the root");
        assert_eq!(ra, rc, "delete/overwrite history changed the root");

        // And emptying the map from different orders agrees too.
        for i in 0..n {
            let (k, _) = kv(i);
            assert!(a.delete(&store, &k).unwrap());
        }
        for i in (0..n).rev() {
            let (k, _) = kv(i);
            assert!(b.delete(&store, &k).unwrap());
        }
        assert_eq!(a.flush(&store).unwrap(), Hamt::new().flush(&store).unwrap());
        assert_eq!(b.flush(&store).unwrap(), Hamt::new().flush(&store).unwrap());
    }

    #[test]
    fn load_walk_matches_contents() {
        let store = MemoryBlockstore::new();
        let mut map = Hamt::new();
        for i in 0..200 {
            let (k, v) = kv(i);
            map.set(&store, &k, &v).unwrap();
        }
        let root = map.flush(&store).unwrap();

        let loaded = Hamt::load(root);
        let mut walked = Vec::new();
        loaded
            .walk(&store, &mut |k, v| walked.push((k.to_vec(), v.to_vec())))
            .unwrap();
        walked.sort();
        let mut expect: Vec<_> = (0..200).map(kv).collect();
        expect.sort();
        assert_eq!(walked, expect);
        for i in 0..200 {
            let (k, v) = kv(i);
            assert_eq!(loaded.get(&store, &k).unwrap(), Some(v));
        }
    }

    #[test]
    fn clones_diverge_copy_on_write() {
        let store = MemoryBlockstore::new();
        let mut map = Hamt::new();
        for i in 0..100 {
            let (k, v) = kv(i);
            map.set(&store, &k, &v).unwrap();
        }
        let snapshot = map.clone();
        map.set(&store, b"key-0", b"mutated").unwrap();
        assert_eq!(
            map.get(&store, b"key-0").unwrap(),
            Some(b"mutated".to_vec())
        );
        assert_eq!(snapshot.get(&store, b"key-0").unwrap(), Some(kv(0).1));
    }

    #[test]
    fn diff_nodes_are_sufficient_and_minimal() {
        let store = MemoryBlockstore::new();
        let mut map = Hamt::new();
        for i in 0..4_000 {
            let (k, v) = kv(i);
            map.set(&store, &k, &v).unwrap();
        }
        let base_root = map.flush(&store).unwrap();
        for i in 4_000..4_020 {
            let (k, v) = kv(i);
            map.set(&store, &k, &v).unwrap();
        }
        map.delete(&store, b"key-3").unwrap();
        let new_root = map.flush(&store).unwrap();

        let delta = Hamt::diff_new_nodes(&store, new_root, base_root).unwrap();
        // Minimality: far fewer nodes than the whole tree.
        let mut whole = HashSet::new();
        reachable_hashes(&store, new_root, 0, &mut whole).unwrap();
        assert!(delta.len() < whole.len() / 2, "delta not incremental");

        // Sufficiency: base nodes + delta nodes alone reconstruct the map.
        let fresh = MemoryBlockstore::new();
        let mut base_hashes = HashSet::new();
        reachable_hashes(&store, base_root, 0, &mut base_hashes).unwrap();
        for h in &base_hashes {
            fresh.put(&store.get(h).unwrap().unwrap()).unwrap();
        }
        for (_, bytes) in &delta {
            fresh.put(bytes).unwrap();
        }
        let rebuilt = Hamt::load(new_root);
        let mut count = 0usize;
        rebuilt.walk(&fresh, &mut |_, _| count += 1).unwrap();
        assert_eq!(count, 4_019);
        assert_eq!(
            rebuilt.get(&fresh, b"key-4001").unwrap(),
            Some(kv(4_001).1),
            "new key readable from base+delta"
        );
    }

    #[test]
    fn proofs_verify_and_reject_tampering() {
        let store = MemoryBlockstore::new();
        let mut map = Hamt::new();
        for i in 0..300 {
            let (k, v) = kv(i);
            map.set(&store, &k, &v).unwrap();
        }
        let root = map.flush(&store).unwrap();

        for i in (0..300).step_by(17) {
            let (k, v) = kv(i);
            let proof = Hamt::prove(&store, root, &k).unwrap().expect("key present");
            assert_eq!(Hamt::verify_proof(root, &k, &proof).unwrap(), v);
        }
        assert!(Hamt::prove(&store, root, b"missing").unwrap().is_none());

        let (k, _) = kv(42);
        let proof = Hamt::prove(&store, root, &k).unwrap().unwrap();

        // Wrong root.
        let bad_root = sha256(b"not the root");
        assert!(matches!(
            Hamt::verify_proof(bad_root, &k, &proof),
            Err(StoreError::Proof(_))
        ));
        // Wrong key for an honest path.
        assert!(matches!(
            Hamt::verify_proof(root, b"other-key", &proof),
            Err(StoreError::Proof(_))
        ));
        // Truncated path.
        if proof.len() > 1 {
            assert!(matches!(
                Hamt::verify_proof(root, &k, &proof[..proof.len() - 1]),
                Err(StoreError::Proof(_))
            ));
        }
        // Extra trailing node.
        let mut padded = proof.clone();
        padded.push(proof[0].clone());
        assert!(matches!(
            Hamt::verify_proof(root, &k, &padded),
            Err(StoreError::Proof(_))
        ));
        // Empty path.
        assert!(matches!(
            Hamt::verify_proof(root, &k, &[]),
            Err(StoreError::Proof(_))
        ));
        // Every single-bit flip in every node must be rejected (hash
        // chain break or decode failure — never a wrong value accepted).
        for ni in 0..proof.len() {
            for byte in (0..proof[ni].len()).step_by(7) {
                let mut tampered = proof.clone();
                tampered[ni][byte] ^= 0x40;
                match Hamt::verify_proof(root, &k, &tampered) {
                    Err(StoreError::Proof(_)) | Err(StoreError::Corrupt(_)) => {}
                    other => panic!("tampered proof accepted: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn adversarial_node_bytes_yield_typed_errors() {
        let store = MemoryBlockstore::new();
        let mut map = Hamt::new();
        for i in 0..200 {
            let (k, v) = kv(i);
            map.set(&store, &k, &v).unwrap();
        }
        let root = map.flush(&store).unwrap();
        let root_bytes = store.get(&root).unwrap().unwrap();

        // Truncations at every length must decode to a typed error (or,
        // for prefixes that happen to parse, still never panic).
        for cut in 0..root_bytes.len() {
            let hash = store.put(&root_bytes[..cut]).unwrap();
            let _ = Hamt::load(hash).get(&store, b"key-1");
        }
        // Bit flips across the root node: traversal must return Err or a
        // wrong-but-typed answer, never panic. Flips that corrupt
        // structure must be Corrupt/NotFound.
        for byte in 0..root_bytes.len() {
            let mut flipped = root_bytes.to_vec();
            flipped[byte] ^= 0x01;
            let hash = store.put(&flipped).unwrap();
            let _ = Hamt::load(hash).get(&store, b"key-1");
            let _ = Hamt::load(hash).walk(&store, &mut |_, _| {});
        }
        // A hand-built unsorted bucket is rejected.
        let mut bad = Vec::new();
        bad.extend_from_slice(&1u32.to_be_bytes()); // bitmap: slot 0
        bad.push(TAG_BUCKET);
        bad.extend_from_slice(&2u32.to_be_bytes());
        for key in [b"zz", b"aa"] {
            bad.extend_from_slice(&2u32.to_be_bytes());
            bad.extend_from_slice(key);
            bad.extend_from_slice(&1u32.to_be_bytes());
            bad.push(b'v');
        }
        assert_eq!(
            decode_node(&bad).unwrap_err(),
            StoreError::Corrupt("bucket keys out of order")
        );
        // An empty bucket is rejected.
        let mut empty = Vec::new();
        empty.extend_from_slice(&1u32.to_be_bytes());
        empty.push(TAG_BUCKET);
        empty.extend_from_slice(&0u32.to_be_bytes());
        assert_eq!(
            decode_node(&empty).unwrap_err(),
            StoreError::Corrupt("empty bucket slot")
        );
    }

    /// A malicious store that returns attacker-chosen bytes for any hash —
    /// the only way to express a link cycle, since honest stores derive
    /// the key from the bytes.
    #[derive(Debug)]
    struct EvilStore {
        bytes: Vec<u8>,
    }

    impl Blockstore for EvilStore {
        fn get(&self, _hash: &Hash256) -> Result<Option<Arc<[u8]>>, StoreError> {
            Ok(Some(self.bytes.clone().into()))
        }

        fn put(&self, bytes: &[u8]) -> Result<Hash256, StoreError> {
            Ok(block_hash(bytes))
        }
    }

    #[test]
    fn cycle_forming_store_hits_the_depth_cap() {
        // A node all of whose 32 slots link to "itself" (the evil store
        // returns the same bytes for every hash), so every key path
        // descends forever.
        let mut node = Vec::new();
        node.extend_from_slice(&u32::MAX.to_be_bytes());
        for _ in 0..FANOUT {
            node.push(TAG_CHILD);
            node.extend_from_slice(&[0u8; 32]);
        }
        let store = EvilStore { bytes: node };
        let root = sha256(b"whatever");
        assert_eq!(
            Hamt::load(root).get(&store, b"key").unwrap_err(),
            StoreError::Corrupt("trie deeper than the key hash")
        );
        assert_eq!(
            Hamt::load(root).walk(&store, &mut |_, _| {}).unwrap_err(),
            StoreError::Corrupt("trie deeper than the key hash")
        );
        let mut out = HashSet::new();
        // reachable_hashes dedups by hash, so the self-link terminates via
        // the seen-set rather than the depth cap — either way, no loop.
        reachable_hashes(&store, root, 0, &mut out).unwrap();
    }

    #[test]
    fn deep_collision_chains_split_and_collapse() {
        // Keys engineered to share leading hash nibbles are hard to mine
        // for sha256; instead exercise the split/collapse machinery by
        // inserting enough keys that multi-level nodes necessarily form,
        // then deleting back down and checking canonical equality.
        let store = MemoryBlockstore::new();
        let mut grown = Hamt::new();
        for i in 0..5_000 {
            let (k, v) = kv(i);
            grown.set(&store, &k, &v).unwrap();
        }
        for i in 100..5_000 {
            let (k, _) = kv(i);
            assert!(grown.delete(&store, &k).unwrap());
        }
        let mut direct = Hamt::new();
        for i in 0..100 {
            let (k, v) = kv(i);
            direct.set(&store, &k, &v).unwrap();
        }
        assert_eq!(
            grown.flush(&store).unwrap(),
            direct.flush(&store).unwrap(),
            "grow-then-shrink must collapse back to the direct structure"
        );
    }
}
