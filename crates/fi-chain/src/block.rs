//! Block production: heights, timestamps, event logs, state commitments,
//! and the per-height random beacon.
//!
//! The simulation runs a single deterministic block producer — the paper
//! assumes consensus security outright (§V-A), and notes the Expected
//! Consensus of Filecoin "can be directly applied" since all replicas are
//! PoRep-generated (§IV). What the protocol layer needs from consensus is:
//!
//! 1. a monotonically advancing **time** shared by all participants,
//! 2. an append-only **event log** (the "storing, discarding, state-changing
//!    events recorded in the blockchain", §I),
//! 3. a per-height **beacon value** feeding protocol randomness, and
//! 4. a **state commitment** chaining block to block.

use fi_crypto::{keyed_hash, Hash256, RandomBeacon};

use crate::tasks::Time;

/// An event recorded in a block. The payload is a human-readable tag plus
/// opaque detail; the protocol layer defines its own typed events and logs
/// their canonical encoding here for commitment purposes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainEvent {
    /// Event kind tag (e.g. `"file.add"`).
    pub kind: String,
    /// Canonical payload bytes.
    pub payload: Vec<u8>,
}

impl ChainEvent {
    /// Creates an event.
    pub fn new(kind: impl Into<String>, payload: impl Into<Vec<u8>>) -> Self {
        ChainEvent {
            kind: kind.into(),
            payload: payload.into(),
        }
    }

    fn digest(&self) -> Hash256 {
        keyed_hash("chain/event", &[self.kind.as_bytes(), &self.payload])
    }
}

/// A sealed block.
#[derive(Debug, Clone)]
pub struct Block {
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// Timestamp carried by the block.
    pub timestamp: Time,
    /// Hash of the previous block ([`Hash256::ZERO`] for genesis).
    pub parent: Hash256,
    /// Beacon value of this height.
    pub beacon_value: Hash256,
    /// Commitment over parent, events, op batch and declared state root.
    pub block_hash: Hash256,
    /// Events included in this block.
    pub events: Vec<ChainEvent>,
    /// Digests of the protocol ops applied during this block's interval
    /// (the transaction batch), in application order. The protocol layer
    /// defines the op encoding; the chain commits to it opaquely.
    pub op_digests: Vec<Hash256>,
    /// Commitment over the receipts of this block's op batch
    /// ([`Hash256::ZERO`] when the batch is empty).
    pub receipt_root: Hash256,
}

/// The chain: produces blocks at a fixed cadence, exposes the beacon and
/// the event sink for the current (open) block.
///
/// # Example
///
/// ```
/// use fi_chain::{BlockChain, ChainEvent};
/// use fi_crypto::Hash256;
///
/// let mut chain = BlockChain::new(42, 10); // seed 42, one block per 10 ticks
/// chain.log(ChainEvent::new("file.add", b"f1".to_vec()));
/// let sealed = chain.advance_time(25, Hash256::ZERO); // seals heights 1,2
/// assert_eq!(sealed.len(), 2);
/// assert_eq!(chain.height(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct BlockChain {
    beacon: RandomBeacon,
    block_interval: Time,
    now: Time,
    height: u64,
    head_hash: Hash256,
    open_events: Vec<ChainEvent>,
    /// `(op digest, receipt digest)` pairs applied since the last seal.
    open_ops: Vec<(Hash256, Hash256)>,
    blocks: Vec<Block>,
    /// Parent hash of `blocks[0]` — [`Hash256::ZERO`] for a chain built
    /// from genesis; the restored head for a chain rebuilt from a snapshot
    /// (whose `blocks` then only holds post-restore seals).
    history_base_hash: Hash256,
}

impl BlockChain {
    /// Creates a chain with its genesis block at time 0.
    ///
    /// # Panics
    ///
    /// Panics if `block_interval == 0`.
    pub fn new(seed: u64, block_interval: Time) -> Self {
        assert!(block_interval > 0, "block interval must be positive");
        let beacon = RandomBeacon::new(seed);
        let genesis_beacon = beacon.value_at(0);
        let genesis_hash = keyed_hash("chain/genesis", &[genesis_beacon.as_ref()]);
        let genesis = Block {
            height: 0,
            timestamp: 0,
            parent: Hash256::ZERO,
            beacon_value: genesis_beacon,
            block_hash: genesis_hash,
            events: Vec::new(),
            op_digests: Vec::new(),
            receipt_root: Hash256::ZERO,
        };
        BlockChain {
            beacon,
            block_interval,
            now: 0,
            height: 0,
            head_hash: genesis_hash,
            open_events: Vec::new(),
            open_ops: Vec::new(),
            blocks: vec![genesis],
            history_base_hash: Hash256::ZERO,
        }
    }

    /// Rebuilds a chain mid-flight from snapshot state: the beacon is
    /// re-derived from `seed`, the head is pinned to `(height, head_hash)`,
    /// and the open (not yet sealed) events and op batch are reinstated.
    /// Sealed block *bodies* are not part of snapshots — [`Self::blocks`]
    /// of a restored chain holds only blocks sealed after the restore, and
    /// [`Self::verify_chain`] validates that suffix against the restored
    /// head.
    ///
    /// # Panics
    ///
    /// Panics if `block_interval == 0` or `now` is inconsistent with
    /// `height` (time before the last sealed boundary).
    #[allow(clippy::too_many_arguments)]
    pub fn restore(
        seed: u64,
        block_interval: Time,
        now: Time,
        height: u64,
        head_hash: Hash256,
        open_events: Vec<ChainEvent>,
        open_ops: Vec<(Hash256, Hash256)>,
    ) -> Self {
        assert!(block_interval > 0, "block interval must be positive");
        assert!(
            height
                .checked_mul(block_interval)
                .is_some_and(|boundary| now >= boundary),
            "time precedes the last sealed boundary"
        );
        BlockChain {
            beacon: RandomBeacon::new(seed),
            block_interval,
            now,
            height,
            head_hash,
            open_events,
            open_ops,
            blocks: Vec::new(),
            history_base_hash: head_hash,
        }
    }

    /// Current consensus time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Current height (sealed blocks).
    pub fn height(&self) -> u64 {
        self.height
    }

    /// The beacon shared by all participants.
    pub fn beacon(&self) -> &RandomBeacon {
        &self.beacon
    }

    /// Beacon value of the current height.
    pub fn current_beacon_value(&self) -> Hash256 {
        self.beacon.value_at(self.height)
    }

    /// Appends an event to the open block.
    pub fn log(&mut self, event: ChainEvent) {
        self.open_events.push(event);
    }

    /// Records one applied protocol op in the open block's batch: the op's
    /// digest plus the digest of its receipt (success or failure — failed
    /// ops still consume gas and belong to the batch).
    pub fn log_op(&mut self, op_digest: Hash256, receipt_digest: Hash256) {
        self.open_ops.push((op_digest, receipt_digest));
    }

    /// Records a whole batch of applied ops at once — the block-batching
    /// form of [`BlockChain::log_op`], used by pipelined ingest to commit a
    /// segment's `(op, receipt)` digests in submission order.
    pub fn log_ops(&mut self, pairs: impl IntoIterator<Item = (Hash256, Hash256)>) {
        self.open_ops.extend(pairs);
    }

    /// The events logged into the currently open (unsealed) block, in
    /// order. Part of the snapshot surface: they are folded into the next
    /// sealed block's hash, so restoring a chain must reinstate them.
    pub fn open_events(&self) -> &[ChainEvent] {
        &self.open_events
    }

    /// The `(op digest, receipt digest)` pairs of the currently open
    /// block's batch, in application order (snapshot surface, like
    /// [`BlockChain::open_events`]).
    pub fn open_ops(&self) -> &[(Hash256, Hash256)] {
        &self.open_ops
    }

    /// All sealed blocks, genesis first.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Hash of the chain head.
    pub fn head_hash(&self) -> Hash256 {
        self.head_hash
    }

    /// Advances consensus time to `target`, sealing one block per elapsed
    /// interval. `state_root` is the caller's state commitment, folded into
    /// each sealed block (callers that don't track state pass
    /// [`Hash256::ZERO`]). Returns the newly sealed blocks' heights.
    ///
    /// # Panics
    ///
    /// Panics if `target < now` — consensus time cannot rewind.
    pub fn advance_time(&mut self, target: Time, state_root: Hash256) -> Vec<u64> {
        assert!(target >= self.now, "time cannot rewind");
        let mut sealed = Vec::new();
        // Blocks seal at absolute boundaries height × interval, regardless
        // of how time was chopped into advance_time calls.
        while (self.height + 1) * self.block_interval <= target {
            self.height += 1;
            self.now = self.height * self.block_interval;
            let beacon_value = self.beacon.value_at(self.height);
            let events = std::mem::take(&mut self.open_events);
            let ops = std::mem::take(&mut self.open_ops);
            let mut event_digests: Vec<u8> = Vec::new();
            for e in &events {
                event_digests.extend_from_slice(e.digest().as_ref());
            }
            let mut op_bytes: Vec<u8> = Vec::with_capacity(ops.len() * 32);
            let mut receipt_bytes: Vec<u8> = Vec::with_capacity(ops.len() * 32);
            for (op, receipt) in &ops {
                op_bytes.extend_from_slice(op.as_ref());
                receipt_bytes.extend_from_slice(receipt.as_ref());
            }
            let receipt_root = if ops.is_empty() {
                Hash256::ZERO
            } else {
                keyed_hash("chain/receipts", &[&receipt_bytes])
            };
            let block_hash = keyed_hash(
                "chain/block",
                &[
                    self.head_hash.as_ref(),
                    &self.height.to_be_bytes(),
                    &self.now.to_be_bytes(),
                    beacon_value.as_ref(),
                    &event_digests,
                    &op_bytes,
                    receipt_root.as_ref(),
                    state_root.as_ref(),
                ],
            );
            self.blocks.push(Block {
                height: self.height,
                timestamp: self.now,
                parent: self.head_hash,
                beacon_value,
                block_hash,
                events,
                op_digests: ops.into_iter().map(|(op, _)| op).collect(),
                receipt_root,
            });
            self.head_hash = block_hash;
            sealed.push(self.height);
        }
        // Partial interval: time advances without sealing.
        self.now = target.max(self.now);
        sealed
    }

    /// Verifies the hash chain over the blocks this instance holds: from
    /// genesis for a chain built with [`BlockChain::new`], from the
    /// restored head for one rebuilt with [`BlockChain::restore`]
    /// (integrity audit used in tests).
    pub fn verify_chain(&self) -> bool {
        let mut parent = self.history_base_hash;
        for block in &self.blocks {
            if block.parent != parent {
                return false;
            }
            parent = block.block_hash;
        }
        parent == self.head_hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seals_one_block_per_interval() {
        let mut chain = BlockChain::new(1, 10);
        let sealed = chain.advance_time(35, Hash256::ZERO);
        assert_eq!(sealed, vec![1, 2, 3]);
        assert_eq!(chain.now(), 35);
        assert_eq!(chain.height(), 3);
        assert!(chain.verify_chain());
    }

    #[test]
    fn events_land_in_next_sealed_block() {
        let mut chain = BlockChain::new(2, 10);
        chain.log(ChainEvent::new("a", b"1".to_vec()));
        chain.advance_time(10, Hash256::ZERO);
        chain.log(ChainEvent::new("b", b"2".to_vec()));
        chain.advance_time(20, Hash256::ZERO);
        assert_eq!(chain.blocks()[1].events.len(), 1);
        assert_eq!(chain.blocks()[1].events[0].kind, "a");
        assert_eq!(chain.blocks()[2].events[0].kind, "b");
    }

    #[test]
    fn deterministic_given_seed_and_inputs() {
        let build = || {
            let mut c = BlockChain::new(7, 5);
            c.log(ChainEvent::new("x", b"p".to_vec()));
            c.advance_time(17, Hash256::ZERO);
            c.head_hash()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn state_root_affects_block_hash() {
        let mut a = BlockChain::new(3, 5);
        let mut b = BlockChain::new(3, 5);
        a.advance_time(5, Hash256::ZERO);
        b.advance_time(5, fi_crypto::sha256(b"state"));
        assert_ne!(a.head_hash(), b.head_hash());
    }

    #[test]
    fn partial_interval_advances_time_only() {
        let mut chain = BlockChain::new(4, 10);
        let sealed = chain.advance_time(9, Hash256::ZERO);
        assert!(sealed.is_empty());
        assert_eq!(chain.now(), 9);
        assert_eq!(chain.height(), 0);
        // The open event stays queued until a block seals.
        chain.log(ChainEvent::new("pending", b"".to_vec()));
        chain.advance_time(10, Hash256::ZERO);
        assert_eq!(chain.blocks()[1].events.len(), 1);
    }

    #[test]
    #[should_panic(expected = "time cannot rewind")]
    fn rewind_panics() {
        let mut chain = BlockChain::new(5, 10);
        chain.advance_time(20, Hash256::ZERO);
        chain.advance_time(19, Hash256::ZERO);
    }

    #[test]
    fn tampered_chain_fails_verification() {
        let mut chain = BlockChain::new(8, 10);
        chain.log(ChainEvent::new("x", b"1".to_vec()));
        chain.advance_time(30, Hash256::ZERO);
        assert!(chain.verify_chain());
        // Rewriting history breaks the hash links.
        chain.blocks[1].parent = fi_crypto::sha256(b"forged parent");
        assert!(!chain.verify_chain());
    }

    #[test]
    fn op_batch_lands_in_next_sealed_block_and_commits() {
        let op = fi_crypto::sha256(b"op");
        let receipt = fi_crypto::sha256(b"receipt");
        let mut a = BlockChain::new(9, 10);
        a.log_op(op, receipt);
        a.advance_time(10, Hash256::ZERO);
        a.advance_time(20, Hash256::ZERO);
        assert_eq!(a.blocks()[1].op_digests, vec![op]);
        assert_ne!(a.blocks()[1].receipt_root, Hash256::ZERO);
        assert!(a.blocks()[2].op_digests.is_empty());
        assert_eq!(a.blocks()[2].receipt_root, Hash256::ZERO);

        // A different receipt changes the block commitment.
        let mut b = BlockChain::new(9, 10);
        b.log_op(op, fi_crypto::sha256(b"other receipt"));
        b.advance_time(10, Hash256::ZERO);
        assert_ne!(a.blocks()[1].block_hash, b.blocks()[1].block_hash);
    }

    /// A chain restored from its own mid-flight state (head + open
    /// events/ops) seals byte-identical future blocks: the snapshot surface
    /// carries everything the next seal folds in.
    #[test]
    fn restored_chain_continues_identically() {
        let mut live = BlockChain::new(11, 10);
        live.log(ChainEvent::new("pre", b"1".to_vec()));
        live.advance_time(25, Hash256::ZERO);
        live.log(ChainEvent::new("open", b"2".to_vec()));
        live.log_op(fi_crypto::sha256(b"op"), fi_crypto::sha256(b"rcpt"));

        let mut restored = BlockChain::restore(
            11,
            10,
            live.now(),
            live.height(),
            live.head_hash(),
            live.open_events().to_vec(),
            live.open_ops().to_vec(),
        );
        assert!(restored.verify_chain(), "empty suffix verifies");
        live.advance_time(50, fi_crypto::sha256(b"root"));
        restored.advance_time(50, fi_crypto::sha256(b"root"));
        assert_eq!(live.head_hash(), restored.head_hash());
        assert_eq!(live.height(), restored.height());
        assert!(restored.verify_chain(), "post-restore suffix verifies");
        // The restored instance only holds post-restore blocks.
        assert_eq!(restored.blocks().len(), 3);
        assert_eq!(live.blocks().len(), 6);
    }

    #[test]
    fn log_ops_batches_like_repeated_log_op() {
        let pairs: Vec<_> = (0..4u8)
            .map(|i| (fi_crypto::sha256(&[i]), fi_crypto::sha256(&[i, i])))
            .collect();
        let mut a = BlockChain::new(13, 10);
        let mut b = BlockChain::new(13, 10);
        for &(op, rcpt) in &pairs {
            a.log_op(op, rcpt);
        }
        b.log_ops(pairs);
        a.advance_time(10, Hash256::ZERO);
        b.advance_time(10, Hash256::ZERO);
        assert_eq!(a.head_hash(), b.head_hash());
    }

    #[test]
    fn beacon_is_height_indexed() {
        let mut chain = BlockChain::new(6, 10);
        let b0 = chain.current_beacon_value();
        chain.advance_time(10, Hash256::ZERO);
        let b1 = chain.current_beacon_value();
        assert_ne!(b0, b1);
        assert_eq!(b1, chain.beacon().value_at(1));
    }
}
