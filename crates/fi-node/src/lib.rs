//! The networked node layer: mempool → rotating proposers → fork-choice,
//! with fault-injection-grade recovery over `fi-net`.
//!
//! PR 5 proved *one* fixed proposer's blocks replay bit-identically on
//! followers; this crate now closes the robustness loop the paper's §V
//! claims live on — leaderless-in-the-limit block production that
//! survives crashes, partitions and equivocation:
//!
//! * [`mempool`] — deterministic admission (nonce, duplicate, funds,
//!   capacity) and fee-ordered, gas-bounded block selection, with
//!   **bounded tombstones** ([`fi_core::params::ProtocolParams::
//!   tombstone_retention_blocks`]) and cross-proposer reconciliation via
//!   [`Mempool::observe_committed`];
//! * [`schedule`] — beacon-driven proposer rotation:
//!   [`ProposerSchedule`] derives the identical leader + fallback order
//!   for every slot on every node from
//!   [`fi_crypto::RandomBeacon::permutation`];
//! * [`chain`] — the [`ChainTracker`] block tree: verify-then-prefer
//!   adoption, deterministic fork-choice (height, then schedule
//!   priority), equivocation conviction with gossiped evidence;
//! * [`node`] — the unified [`Validator`] process: slot-timer proposal
//!   with the skip rule, anti-entropy status exchange, cold-join serving;
//! * [`client`] — a chain-watching workload driver deriving realistic
//!   adds/confirms/proves/gets/discards (and deliberately lazy
//!   providers) from its replicated view;
//! * [`cluster`] — assembly of all of the above into one deterministic
//!   [`fi_net::World`], ready for crash/partition schedules.
//!
//! Consensus safety in one sentence: a block is nothing but an ordered op
//! list, the engine is a deterministic function of applied ops, and the
//! fork-choice picks the same branch on every node given the same block
//! set — so surviving nodes of any crash/partition schedule reconverge to
//! bit-identical roots once anti-entropy delivers the blocks (asserted by
//! `tests/node_pipeline.rs` and `tests/fault_recovery.rs`; DESIGN.md §12).

pub mod chain;
pub mod chaos;
pub mod client;
pub mod cluster;
pub mod mempool;
pub mod node;
pub mod schedule;

pub use chain::{
    ChainTracker, EquivocationEvidence, InsertOutcome, RejectReason, ReplayMode, SealedBlock,
};
pub use chaos::{cluster_for_spec, run_chaos, schedule_fault_script, ChaosOutcome, FaultSchedule};
pub use client::{ClientDriver, ClientReport, WorkloadConfig};
pub use cluster::{
    build_cluster, cluster_horizon, genesis_engine, run_cluster, ClusterConfig, ClusterReports,
};
pub use mempool::{AdmitError, Mempool, MempoolStats, Tx};
pub use node::{ConsensusConfig, NodeMsg, NodeStart, Validator, ValidatorReport};
pub use schedule::ProposerSchedule;
