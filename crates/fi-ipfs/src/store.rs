//! Content-addressed block storage.

use std::collections::{HashMap, HashSet};

use fi_crypto::{sha256, Hash256};

/// A content identifier: the SHA-256 digest of a block's bytes.
pub type Cid = Hash256;

/// An in-memory content-addressed block store.
///
/// Blocks are immutable and keyed by their hash; `put` returns the CID and
/// is idempotent. Pinning protects blocks from [`BlockStore::gc`].
///
/// # Example
///
/// ```
/// use fi_ipfs::store::BlockStore;
///
/// let mut store = BlockStore::new();
/// let cid = store.put(b"hello".to_vec());
/// assert_eq!(store.get(&cid).unwrap(), b"hello");
/// store.pin(cid);
/// store.gc();
/// assert!(store.has(&cid));
/// ```
#[derive(Debug, Clone, Default)]
pub struct BlockStore {
    blocks: HashMap<Cid, Vec<u8>>,
    pins: HashSet<Cid>,
    bytes_stored: u64,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        BlockStore::default()
    }

    /// Stores a block, returning its CID. Idempotent.
    pub fn put(&mut self, block: Vec<u8>) -> Cid {
        let cid = sha256(&block);
        if self.blocks.insert(cid, block).is_none() {
            let len = self.blocks[&cid].len() as u64;
            self.bytes_stored += len;
        }
        cid
    }

    /// Retrieves a block by CID.
    pub fn get(&self, cid: &Cid) -> Option<&[u8]> {
        self.blocks.get(cid).map(|b| b.as_slice())
    }

    /// `true` when the block is present.
    pub fn has(&self, cid: &Cid) -> bool {
        self.blocks.contains_key(cid)
    }

    /// Number of blocks held.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when no blocks are held.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total payload bytes held.
    pub fn bytes_stored(&self) -> u64 {
        self.bytes_stored
    }

    /// Pins a CID, protecting it (and only it — pinning is per-block here;
    /// DAG-wide pinning is done by the importer) from [`BlockStore::gc`].
    pub fn pin(&mut self, cid: Cid) {
        self.pins.insert(cid);
    }

    /// Removes a pin.
    pub fn unpin(&mut self, cid: &Cid) {
        self.pins.remove(cid);
    }

    /// Drops all unpinned blocks; returns how many were collected.
    pub fn gc(&mut self) -> usize {
        let before = self.blocks.len();
        let pins = &self.pins;
        self.blocks.retain(|cid, _| pins.contains(cid));
        self.bytes_stored = self.blocks.values().map(|b| b.len() as u64).sum();
        before - self.blocks.len()
    }

    /// Verifies every block hashes to its key (corruption audit).
    pub fn verify_integrity(&self) -> bool {
        self.blocks.iter().all(|(cid, block)| sha256(block) == *cid)
    }

    /// Iterates over stored CIDs.
    pub fn cids(&self) -> impl Iterator<Item = &Cid> {
        self.blocks.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip_and_idempotence() {
        let mut s = BlockStore::new();
        let cid1 = s.put(b"block".to_vec());
        let cid2 = s.put(b"block".to_vec());
        assert_eq!(cid1, cid2);
        assert_eq!(s.len(), 1);
        assert_eq!(s.bytes_stored(), 5);
        assert_eq!(s.get(&cid1).unwrap(), b"block");
        assert!(s.get(&sha256(b"other")).is_none());
    }

    #[test]
    fn gc_respects_pins() {
        let mut s = BlockStore::new();
        let keep = s.put(b"keep".to_vec());
        let drop1 = s.put(b"drop1".to_vec());
        let drop2 = s.put(b"drop2".to_vec());
        s.pin(keep);
        assert_eq!(s.gc(), 2);
        assert!(s.has(&keep));
        assert!(!s.has(&drop1) && !s.has(&drop2));
        assert_eq!(s.bytes_stored(), 4);
        s.unpin(&keep);
        assert_eq!(s.gc(), 1);
        assert!(s.is_empty());
    }

    #[test]
    fn integrity_audit() {
        let mut s = BlockStore::new();
        s.put(b"a".to_vec());
        s.put(b"bb".to_vec());
        assert!(s.verify_integrity());
    }
}
