//! Runtime-dispatched SHA-256 compression backends.
//!
//! Three implementations of the FIPS 180-4 compression function live here:
//!
//! * [`compress_scalar`] — the portable reference, byte-for-byte the code the
//!   crate shipped with before SIMD support. It is *frozen*: every other
//!   backend is differentially tested against it, and it is always available.
//! * `compress_blocks_shani` — x86 SHA-NI instructions
//!   (`sha256rnds2`/`sha256msg1`/`sha256msg2`). Fastest for a *single*
//!   stream; also the fastest batch backend on hosts that have it, by
//!   running each lane back-to-back.
//! * `compress8_avx2` — an 8-wide AVX2 kernel that transposes eight
//!   independent message blocks into one-word-per-lane vectors and runs the
//!   64 rounds in SPMD style. Only useful for *batches*; a single stream
//!   gains nothing because the round recurrence is sequential.
//!
//! Backend choice follows the PR 1 GF(256) pattern: detect once with
//! `is_x86_feature_detected!`, prefer `ShaNi > Avx2 > Scalar`, and honour the
//! `FI_FORCE_SCALAR_SHA=1` environment override so CI can pin the portable
//! fallback. All backends produce bit-identical digests — this is a hard
//! protocol invariant (`state_root`/`audit_root` must not depend on the
//! host's CPU).

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use super::K;

/// A SHA-256 compression implementation selected at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable FIPS 180-4 reference implementation.
    Scalar,
    /// 8-wide AVX2 transposed-schedule kernel (batches only).
    Avx2,
    /// x86 SHA extensions (`sha256rnds2` et al.).
    ShaNi,
}

impl Backend {
    /// Stable lowercase name, used in bench snapshots and logs.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
            Backend::ShaNi => "sha-ni",
        }
    }
}

/// Backends usable on this host, detected once: `Scalar` always, plus
/// `Avx2`/`ShaNi` when the CPU reports the features.
pub fn available_backends() -> &'static [Backend] {
    static AVAILABLE: OnceLock<Vec<Backend>> = OnceLock::new();
    AVAILABLE.get_or_init(detect_available)
}

fn detect_available() -> Vec<Backend> {
    let mut found = vec![Backend::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            found.push(Backend::Avx2);
        }
        if std::arch::is_x86_feature_detected!("sha")
            && std::arch::is_x86_feature_detected!("sse2")
            && std::arch::is_x86_feature_detected!("ssse3")
            && std::arch::is_x86_feature_detected!("sse4.1")
        {
            found.push(Backend::ShaNi);
        }
    }
    found
}

/// Pure selection rule: the fastest available backend (`ShaNi > Avx2 >
/// Scalar`), unless `force_scalar` pins the portable fallback.
///
/// Split out from [`active_backend`] so the env-override logic is unit
/// testable without mutating process state.
pub fn select_backend(available: &[Backend], force_scalar: bool) -> Backend {
    if force_scalar {
        return Backend::Scalar;
    }
    if available.contains(&Backend::ShaNi) {
        Backend::ShaNi
    } else if available.contains(&Backend::Avx2) {
        Backend::Avx2
    } else {
        Backend::Scalar
    }
}

/// `0` = no override; otherwise `Backend` discriminant + 1.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// The backend used by the dispatching entry points.
///
/// Resolution order: a [`force_backend`] override if set, otherwise the
/// cached result of [`select_backend`] over the detected features and the
/// `FI_FORCE_SCALAR_SHA=1` environment variable (read once).
pub fn active_backend() -> Backend {
    match FORCED.load(Ordering::Relaxed) {
        1 => return Backend::Scalar,
        2 => return Backend::Avx2,
        3 => return Backend::ShaNi,
        _ => {}
    }
    static DEFAULT: OnceLock<Backend> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        let force_scalar = std::env::var("FI_FORCE_SCALAR_SHA").is_ok_and(|v| v == "1");
        select_backend(available_backends(), force_scalar)
    })
}

/// Overrides [`active_backend`] process-wide (`None` clears the override).
///
/// Intended for single-threaded benchmarks that compare backends in one
/// process. Tests should prefer the explicit `*_with` entry points instead:
/// this override is global, so concurrently running tests would observe each
/// other's choice.
///
/// # Panics
///
/// Panics if `backend` is not in [`available_backends`] — forcing an
/// undetected SIMD backend would execute illegal instructions.
pub fn force_backend(backend: Option<Backend>) {
    if let Some(b) = backend {
        assert!(
            available_backends().contains(&b),
            "SHA-256 backend {} is not available on this host",
            b.name()
        );
    }
    let code = match backend {
        None => 0,
        Some(Backend::Scalar) => 1,
        Some(Backend::Avx2) => 2,
        Some(Backend::ShaNi) => 3,
    };
    FORCED.store(code, Ordering::Relaxed);
}

/// Portable FIPS 180-4 compression function (the frozen reference).
pub(crate) fn compress_scalar(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ ((!e) & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Compresses every whole 64-byte block of `data` into `state`, single
/// stream, using the active backend. `data.len()` must be a multiple of 64.
///
/// The AVX2 backend has no single-stream advantage (the round recurrence is
/// sequential), so it falls back to scalar here; only SHA-NI accelerates
/// this path.
pub(crate) fn compress_blocks(state: &mut [u32; 8], data: &[u8]) {
    debug_assert_eq!(data.len() % 64, 0);
    match active_backend() {
        #[cfg(target_arch = "x86_64")]
        Backend::ShaNi => {
            // SAFETY: `active_backend` only yields ShaNi when the sha/sse2/
            // ssse3/sse4.1 features were detected (or a forced override
            // passed the same availability assertion).
            unsafe { compress_blocks_shani(state, data) }
        }
        _ => {
            for block in data.chunks_exact(64) {
                compress_scalar(state, block.try_into().unwrap());
            }
        }
    }
}

/// Compresses `blocks[i]` into `states[i]` for every lane, using `backend`.
///
/// # Panics
///
/// Panics if the slices differ in length, or if a SIMD `backend` is named on
/// a host that does not support it.
pub(crate) fn compress_many_impl(backend: Backend, states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    assert_eq!(
        states.len(),
        blocks.len(),
        "one message block per state lane"
    );
    match backend {
        Backend::Scalar => {
            for (state, block) in states.iter_mut().zip(blocks) {
                compress_scalar(state, block);
            }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::ShaNi => {
            assert!(
                available_backends().contains(&Backend::ShaNi),
                "SHA-NI not available on this host"
            );
            for (state, block) in states.iter_mut().zip(blocks) {
                // SAFETY: availability asserted above.
                unsafe { compress_blocks_shani(state, block.as_slice()) }
            }
        }
        #[cfg(target_arch = "x86_64")]
        Backend::Avx2 => {
            assert!(
                available_backends().contains(&Backend::Avx2),
                "AVX2 not available on this host"
            );
            let mut state_chunks = states.chunks_exact_mut(8);
            let block_chunks = blocks.chunks_exact(8);
            let tail_blocks = block_chunks.remainder();
            for (state8, block8) in (&mut state_chunks).zip(block_chunks) {
                // SAFETY: availability asserted above; both chunks are
                // exactly 8 lanes.
                unsafe { compress8_avx2(state8, block8) }
            }
            for (state, block) in state_chunks.into_remainder().iter_mut().zip(tail_blocks) {
                compress_scalar(state, block);
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        _ => {
            for (state, block) in states.iter_mut().zip(blocks) {
                compress_scalar(state, block);
            }
        }
    }
}

/// SHA-NI compression over all whole blocks of `data` (single stream).
///
/// Follows the canonical Intel sequence: state is kept in the permuted
/// ABEF/CDGH layout the `sha256rnds2` instruction expects, with the
/// un-permute applied once on store.
///
/// # Safety
///
/// Caller must ensure the `sha`, `sse2`, `ssse3`, and `sse4.1` features are
/// available, and that `data.len()` is a multiple of 64.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
unsafe fn compress_blocks_shani(state: &mut [u32; 8], data: &[u8]) {
    use std::arch::x86_64::*;

    debug_assert_eq!(data.len() % 64, 0);

    // Byte shuffle turning each 32-bit little-endian lane into big-endian.
    let be_mask = _mm_set_epi64x(
        0x0c0d_0e0f_0809_0a0bu64 as i64,
        0x0405_0607_0001_0203u64 as i64,
    );

    // Load ABCD|EFGH and permute into the ABEF|CDGH register layout.
    let tmp = _mm_shuffle_epi32(_mm_loadu_si128(state.as_ptr().cast()), 0xB1); // CDAB
    let mut state1 = _mm_shuffle_epi32(_mm_loadu_si128(state.as_ptr().add(4).cast()), 0x1B); // EFGH
    let mut state0 = _mm_alignr_epi8(tmp, state1, 8); // ABEF
    state1 = _mm_blend_epi16(state1, tmp, 0xF0); // CDGH

    for block in data.chunks_exact(64) {
        let abef_save = state0;
        let cdgh_save = state1;

        // Message schedule ring: m[g % 4] holds w[4g .. 4g+4].
        let mut m = [
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), be_mask),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), be_mask),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), be_mask),
            _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), be_mask),
        ];

        for g in 0..16usize {
            if g >= 4 {
                // w[4g..] = msg2(msg1(w[4g-16..], w[4g-12..]) + alignr(...), w[4g-4..])
                let w_prev = m[(g + 3) % 4];
                let shifted = _mm_alignr_epi8(w_prev, m[(g + 2) % 4], 4);
                m[g % 4] = _mm_sha256msg2_epu32(
                    _mm_add_epi32(_mm_sha256msg1_epu32(m[g % 4], m[(g + 1) % 4]), shifted),
                    w_prev,
                );
            }
            let k = _mm_loadu_si128(K.as_ptr().add(4 * g).cast());
            let msg = _mm_add_epi32(m[g % 4], k);
            state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
            state0 = _mm_sha256rnds2_epu32(state0, state1, _mm_shuffle_epi32(msg, 0x0E));
        }

        state0 = _mm_add_epi32(state0, abef_save);
        state1 = _mm_add_epi32(state1, cdgh_save);
    }

    // Un-permute ABEF|CDGH back to ABCD|EFGH and store.
    let tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
    state1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
    state0 = _mm_blend_epi16(tmp, state1, 0xF0); // DCBA
    state1 = _mm_alignr_epi8(state1, tmp, 8); // ABEF
    _mm_storeu_si128(state.as_mut_ptr().cast(), state0);
    _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), state1);
}

/// 8-wide AVX2 compression: lane `l` of every vector holds stream `l`.
///
/// The eight message blocks are transposed so each round operates on one
/// 8×u32 vector per state variable; rotations are emulated with
/// shift-shift-or (AVX2 has no vprold).
///
/// # Safety
///
/// Caller must ensure AVX2 is available and both slices have exactly 8
/// elements.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn compress8_avx2(states: &mut [[u32; 8]], blocks: &[[u8; 64]]) {
    use std::arch::x86_64::*;

    debug_assert_eq!(states.len(), 8);
    debug_assert_eq!(blocks.len(), 8);

    macro_rules! rotr {
        ($x:expr, $n:literal) => {
            _mm256_or_si256(_mm256_srli_epi32($x, $n), _mm256_slli_epi32($x, 32 - $n))
        };
    }
    macro_rules! xor3 {
        ($a:expr, $b:expr, $c:expr) => {
            _mm256_xor_si256(_mm256_xor_si256($a, $b), $c)
        };
    }
    macro_rules! add {
        ($a:expr, $b:expr) => { _mm256_add_epi32($a, $b) };
        ($a:expr, $b:expr $(, $rest:expr)+) => { add!(_mm256_add_epi32($a, $b) $(, $rest)+) };
    }

    // Transpose state and message words into one-row-per-word form so the
    // vector loads below are contiguous.
    let mut tstate = [[0u32; 8]; 8];
    for (lane, state) in states.iter().enumerate() {
        for (word, &value) in state.iter().enumerate() {
            tstate[word][lane] = value;
        }
    }
    let mut tw = [[0u32; 8]; 16];
    for (lane, block) in blocks.iter().enumerate() {
        for (word, chunk) in block.chunks_exact(4).enumerate() {
            tw[word][lane] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
    }

    let mut w = [_mm256_setzero_si256(); 16];
    for (vec, row) in w.iter_mut().zip(tw.iter()) {
        *vec = _mm256_loadu_si256(row.as_ptr().cast());
    }
    let mut a = _mm256_loadu_si256(tstate[0].as_ptr().cast());
    let mut b = _mm256_loadu_si256(tstate[1].as_ptr().cast());
    let mut c = _mm256_loadu_si256(tstate[2].as_ptr().cast());
    let mut d = _mm256_loadu_si256(tstate[3].as_ptr().cast());
    let mut e = _mm256_loadu_si256(tstate[4].as_ptr().cast());
    let mut f = _mm256_loadu_si256(tstate[5].as_ptr().cast());
    let mut g = _mm256_loadu_si256(tstate[6].as_ptr().cast());
    let mut h = _mm256_loadu_si256(tstate[7].as_ptr().cast());

    for t in 0..64 {
        let wt = if t < 16 {
            w[t]
        } else {
            let w15 = w[(t + 1) & 15];
            let w2 = w[(t + 14) & 15];
            let s0 = xor3!(rotr!(w15, 7), rotr!(w15, 18), _mm256_srli_epi32(w15, 3));
            let s1 = xor3!(rotr!(w2, 17), rotr!(w2, 19), _mm256_srli_epi32(w2, 10));
            let next = add!(w[t & 15], s0, w[(t + 9) & 15], s1);
            w[t & 15] = next;
            next
        };
        let s1 = xor3!(rotr!(e, 6), rotr!(e, 11), rotr!(e, 25));
        let ch = _mm256_xor_si256(g, _mm256_and_si256(e, _mm256_xor_si256(f, g)));
        let t1 = add!(h, s1, ch, _mm256_set1_epi32(K[t] as i32), wt);
        let s0 = xor3!(rotr!(a, 2), rotr!(a, 13), rotr!(a, 22));
        let maj = _mm256_or_si256(
            _mm256_and_si256(a, b),
            _mm256_and_si256(c, _mm256_or_si256(a, b)),
        );
        let t2 = _mm256_add_epi32(s0, maj);
        h = g;
        g = f;
        f = e;
        e = _mm256_add_epi32(d, t1);
        d = c;
        c = b;
        b = a;
        a = _mm256_add_epi32(t1, t2);
    }

    // Feed-forward add and scatter back to the row-major lanes.
    let finals = [a, b, c, d, e, f, g, h];
    for (word, vec) in finals.iter().enumerate() {
        let sum = _mm256_add_epi32(*vec, _mm256_loadu_si256(tstate[word].as_ptr().cast()));
        let mut out = [0u32; 8];
        _mm256_storeu_si256(out.as_mut_ptr().cast(), sum);
        for (lane, value) in out.iter().enumerate() {
            states[lane][word] = *value;
        }
    }
}
