//! Sealing: the keyed, invertible replica transform plus binding
//! commitments and the SNARK-verification stand-in.

use fi_crypto::merkle::MerkleTree;
use fi_crypto::rng::chacha20_block;
use fi_crypto::{keyed_hash, sha256, Hash256};

/// Chunk size (bytes) over which replica Merkle trees are built.
///
/// Small enough that test files have multiple leaves, large enough that
/// proofs stay short. A production system would use 32 GiB sectors with
/// 32-byte nodes; the constant is irrelevant to protocol behaviour.
pub const CHUNK_SIZE: usize = 64;

/// Identifies one replica: the unique sealing of one payload for one
/// location. Derived from `(comm_d, sector_tag, index)`.
///
/// Two replicas of the same file in different sectors get different
/// [`ReplicaId`]s, hence different sealed bytes — this is what defeats the
/// Sybil attack of claiming one stored copy as many replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReplicaId(Hash256);

impl ReplicaId {
    /// Derives the id for replica `index` of the data committed by `comm_d`
    /// placed at the location identified by `sector_tag`.
    pub fn derive(comm_d: &Hash256, sector_tag: &Hash256, index: u32) -> Self {
        ReplicaId(keyed_hash(
            "porep/replica-id",
            &[comm_d.as_ref(), sector_tag.as_ref(), &index.to_be_bytes()],
        ))
    }

    /// The raw digest behind this id.
    pub fn as_hash(&self) -> &Hash256 {
        &self.0
    }

    /// Expands the id into a ChaCha20 key.
    fn stream_key(&self) -> [u32; 8] {
        let bytes = self.0.into_bytes();
        let mut key = [0u32; 8];
        for i in 0..8 {
            key[i] = u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().unwrap());
        }
        key
    }
}

/// XORs `data` with the ChaCha20 keystream for `rid` (involution: applying
/// it twice restores the input).
fn stream_xor(data: &[u8], rid: ReplicaId) -> Vec<u8> {
    let key = rid.stream_key();
    let nonce = [0x66697073u32, 0x6f726570, 0x7365616c]; // "fips","orep","seal"
    let mut out = Vec::with_capacity(data.len());
    for (counter, block) in data.chunks(64).enumerate() {
        let ks = chacha20_block(&key, counter as u32, &nonce);
        for (i, &b) in block.iter().enumerate() {
            out.push(b ^ ks[i]);
        }
    }
    out
}

/// A sealed replica: the transformed payload plus its Merkle commitment.
///
/// The protocol-visible properties (uniqueness per [`ReplicaId`], binding
/// `comm_r`, invertibility, regenerability from raw data) hold exactly as
/// for a real PoRep; only the computational hardness of sealing is modelled
/// rather than incurred (see [`crate::cost::CostModel`]).
#[derive(Debug, Clone, PartialEq)]
pub struct SealedReplica {
    rid: ReplicaId,
    sealed: Vec<u8>,
    tree: MerkleTree,
    original_len: usize,
}

impl SealedReplica {
    /// Seals `data` under `rid` (the `PoRep.setup` of the paper).
    pub fn seal(data: &[u8], rid: ReplicaId) -> Self {
        let sealed = stream_xor(data, rid);
        let tree = Self::build_tree(&sealed);
        SealedReplica {
            rid,
            sealed,
            tree,
            original_len: data.len(),
        }
    }

    fn build_tree(sealed: &[u8]) -> MerkleTree {
        if sealed.is_empty() {
            // Commit to the empty replica with a single marker leaf.
            MerkleTree::from_leaves([b"porep/empty".as_slice()])
        } else {
            MerkleTree::from_leaves(sealed.chunks(CHUNK_SIZE))
        }
    }

    /// Recovers the raw payload (the `unseal`/decryption direction).
    pub fn unseal(&self) -> Vec<u8> {
        stream_xor(&self.sealed, self.rid)
    }

    /// The replica commitment `comm_r` (Merkle root of sealed chunks).
    pub fn comm_r(&self) -> Hash256 {
        self.tree.root()
    }

    /// The replica id this sealing was produced under.
    pub fn replica_id(&self) -> ReplicaId {
        self.rid
    }

    /// Number of committed chunks.
    pub fn chunk_count(&self) -> usize {
        self.tree.leaf_count()
    }

    /// Sealed payload bytes.
    pub fn sealed_bytes(&self) -> &[u8] {
        &self.sealed
    }

    /// Length of the raw (unsealed) payload.
    pub fn original_len(&self) -> usize {
        self.original_len
    }

    /// Borrow of the commitment tree (used by PoSt responses).
    pub(crate) fn tree(&self) -> &MerkleTree {
        &self.tree
    }

    /// Chunk `index` of the sealed payload, if in bounds.
    pub fn chunk(&self, index: usize) -> Option<&[u8]> {
        if self.sealed.is_empty() {
            return if index == 0 {
                Some(b"porep/empty")
            } else {
                None
            };
        }
        let start = index * CHUNK_SIZE;
        if start >= self.sealed.len() {
            return None;
        }
        Some(&self.sealed[start..(start + CHUNK_SIZE).min(self.sealed.len())])
    }
}

/// The stand-in for a PoRep SNARK: a binding certificate that `comm_r` is
/// the sealing of the data behind `comm_d` under `rid`.
///
/// A real SNARK convinces a verifier *succinctly*; our verifier re-executes
/// the (cheap, simulated) seal instead. Accept/reject behaviour — the only
/// thing the protocol observes — is identical.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PorepProof {
    /// Commitment to the raw data (Merkle root over raw chunks).
    pub comm_d: Hash256,
    /// Commitment to the sealed replica.
    pub comm_r: Hash256,
    /// The replica id (public input in the real circuit).
    pub rid: ReplicaId,
    /// Certificate tag binding the tuple (simulates the proof object).
    tag: Hash256,
}

/// Commits to raw data the same way clients do (`f.merkleRoot` in Fig. 1).
pub fn commit_data(data: &[u8]) -> Hash256 {
    if data.is_empty() {
        sha256(b"porep/empty-data")
    } else {
        MerkleTree::from_leaves(data.chunks(CHUNK_SIZE)).root()
    }
}

impl PorepProof {
    /// Produces the proof for a sealing of `data` under `rid`
    /// (the prover side of `PoRep`).
    pub fn create(data: &[u8], rid: ReplicaId) -> (SealedReplica, PorepProof) {
        let replica = SealedReplica::seal(data, rid);
        let comm_d = commit_data(data);
        let comm_r = replica.comm_r();
        let tag = keyed_hash(
            "porep/snark",
            &[comm_d.as_ref(), comm_r.as_ref(), rid.as_hash().as_ref()],
        );
        (
            replica,
            PorepProof {
                comm_d,
                comm_r,
                rid,
                tag,
            },
        )
    }

    /// Verifies the certificate (the verifier side of `PoRep`).
    ///
    /// Checks the binding tag; with a real SNARK this would be a pairing
    /// check. Forged tuples (wrong `comm_r` for the claimed `comm_d`/`rid`)
    /// are rejected in the unit tests by construction of the tag.
    pub fn verify(&self) -> bool {
        self.tag
            == keyed_hash(
                "porep/snark",
                &[
                    self.comm_d.as_ref(),
                    self.comm_r.as_ref(),
                    self.rid.as_hash().as_ref(),
                ],
            )
    }

    /// Full re-execution check used in tests and by sceptical verifiers:
    /// reseals `data` and confirms both commitments.
    pub fn verify_against_data(&self, data: &[u8]) -> bool {
        if commit_data(data) != self.comm_d {
            return false;
        }
        SealedReplica::seal(data, self.rid).comm_r() == self.comm_r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rid(n: u32) -> ReplicaId {
        ReplicaId::derive(&sha256(b"data"), &sha256(b"sector"), n)
    }

    #[test]
    fn seal_unseal_round_trip() {
        for len in [0usize, 1, 63, 64, 65, 128, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let replica = SealedReplica::seal(&data, rid(0));
            assert_eq!(replica.unseal(), data, "len={len}");
            assert_eq!(replica.original_len(), len);
        }
    }

    #[test]
    fn sealing_differs_per_replica_id() {
        let data = vec![7u8; 256];
        let r0 = SealedReplica::seal(&data, rid(0));
        let r1 = SealedReplica::seal(&data, rid(1));
        assert_ne!(r0.sealed_bytes(), r1.sealed_bytes());
        assert_ne!(r0.comm_r(), r1.comm_r());
        // Sybil resistance: the same stored bytes cannot answer for both
        // commitments — r0's chunks don't verify against r1's root.
        assert_ne!(r0.chunk(0), r1.chunk(0));
    }

    #[test]
    fn sealed_bytes_look_unrelated_to_data() {
        // The sealed replica of all-zeros must not be all zeros (it is a
        // keystream), unlike a naive "store zeros" fake.
        let data = vec![0u8; 512];
        let replica = SealedReplica::seal(&data, rid(3));
        assert!(replica.sealed_bytes().iter().any(|&b| b != 0));
    }

    #[test]
    fn porep_proof_accepts_honest_rejects_tampered() {
        let data: Vec<u8> = (0..500u32).map(|i| (i % 256) as u8).collect();
        let (replica, proof) = PorepProof::create(&data, rid(9));
        assert!(proof.verify());
        assert!(proof.verify_against_data(&data));

        // Tampered data.
        let mut bad = data.clone();
        bad[100] ^= 1;
        assert!(!proof.verify_against_data(&bad));

        // Forged commitment.
        let mut forged = proof.clone();
        forged.comm_r = replica.tree().root(); // same root: fine
        assert!(forged.verify());
        forged.comm_r = sha256(b"not the root");
        assert!(!forged.verify());
    }

    #[test]
    fn replica_regenerable_from_raw_data() {
        // DRep relies on replicas being reconstructible from the raw file
        // without a new proof round (paper §III-D).
        let data = b"a file moving between sectors".to_vec();
        let id = rid(4);
        let first = SealedReplica::seal(&data, id);
        let regenerated = SealedReplica::seal(&first.unseal(), id);
        assert_eq!(first, regenerated);
    }

    #[test]
    fn chunk_access_bounds() {
        let data = vec![5u8; CHUNK_SIZE * 2 + 10];
        let replica = SealedReplica::seal(&data, rid(5));
        assert_eq!(replica.chunk_count(), 3);
        assert_eq!(replica.chunk(0).unwrap().len(), CHUNK_SIZE);
        assert_eq!(replica.chunk(2).unwrap().len(), 10);
        assert!(replica.chunk(3).is_none());
    }

    #[test]
    fn empty_payload_committed() {
        let replica = SealedReplica::seal(b"", rid(6));
        assert_eq!(replica.chunk_count(), 1);
        assert!(replica.chunk(0).is_some());
        assert!(replica.chunk(1).is_none());
        assert_eq!(replica.unseal(), Vec::<u8>::new());
    }
}
