//! NFT metadata insurance: the paper's motivating scenario (§I).
//!
//! Run with `cargo run --example nft_metadata`.
//!
//! "The values of NFTs disappear if the metadata is lost." A marketplace
//! stores metadata files of different declared values; half of the
//! network's capacity is then destroyed. FileInsurer's promises under
//! test:
//!
//! 1. higher-value files get more replicas (harder to destroy), and
//! 2. any file that *is* lost is fully compensated from confiscated
//!    deposits.

use fileinsurer::prelude::*;

fn main() {
    // 4 replicas per minValue of declared value.
    let params = ProtocolParams {
        k: 4,
        delay_per_size: 4,
        ..ProtocolParams::default()
    };

    let mut net = Engine::new(params).expect("valid parameters");

    // Ten providers, one sector each.
    let mut sectors = Vec::new();
    for i in 0..10u64 {
        let provider = AccountId(100 + i);
        net.fund(provider, TokenAmount(1_000_000_000));
        sectors.push(net.sector_register(provider, 640).unwrap());
    }

    // A marketplace stores metadata of three collections with different
    // declared values (cheap art, mid-tier, blue-chip).
    let market = AccountId(500);
    net.fund(market, TokenAmount(100_000_000));
    let mv = net.params().min_value;
    let mut files = Vec::new();
    for (name, value_units, count) in [("commons", 1u128, 12), ("rares", 2, 6), ("grails", 4, 3)] {
        for i in 0..count {
            let root = sha256(format!("nft/{name}/{i}").as_bytes());
            let file = net
                .file_add(market, 4, TokenAmount(mv.0 * value_units), root)
                .unwrap();
            files.push((name, file, TokenAmount(mv.0 * value_units)));
        }
    }
    net.honest_providers_act();
    net.advance_to(net.now() + 16);
    let placed = files
        .iter()
        .filter(|(_, f, _)| net.file(*f).is_some())
        .count();
    println!("stored {placed}/{} metadata files", files.len());
    for (name, file, _) in files.iter().take(3) {
        let cp = net.file(*file).map(|d| d.cp).unwrap_or(0);
        println!("  sample {name}: {cp} replicas");
    }

    // Disaster: five of ten sectors (half the capacity) are destroyed.
    println!("\n!! destroying 5 of 10 sectors (λ = 0.5) !!");
    let market_before = net.ledger().balance(market);
    for &sid in sectors.iter().take(5) {
        net.corrupt_sector_now(sid);
    }
    // Let the proof machinery discover and settle everything.
    for _ in 0..6 {
        net.honest_providers_act();
        net.advance_to(net.now() + net.params().proof_cycle);
    }

    let stats = net.stats();
    println!("\noutcome:");
    println!("  files lost:            {}", stats.files_lost);
    println!("  value lost:            {}", stats.value_lost);
    println!("  compensation paid:     {}", stats.compensation_paid);
    println!("  compensation shortfall:{}", stats.compensation_shortfall);

    let survivors = files
        .iter()
        .filter(|(_, f, _)| net.file(*f).is_some())
        .count();
    println!("  surviving files:       {survivors}/{}", files.len());

    let market_after = net.ledger().balance(market);
    println!(
        "  marketplace balance:   {} -> {} (rent paid, losses compensated)",
        market_before, market_after
    );
    assert!(
        stats.compensation_shortfall.is_zero(),
        "every lost file fully compensated"
    );
    println!("\ninsurance promise held: every lost file was paid out in full.");
}
