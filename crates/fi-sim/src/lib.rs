//! Experiment harness: regenerates every table and figure of the
//! FileInsurer paper.
//!
//! | Module | Regenerates | Paper reference |
//! |---|---|---|
//! | [`table3`] | max sector capacity-usage under reallocation & refresh | Table III |
//! | [`table4`] | protocol comparison (measured, not just claimed) | Table IV |
//! | [`robustness`] | γ_lost vs the Theorem 3 bound across λ, k, adversaries | Thm 3, §V-B.3 |
//! | [`deposit`] | empirical deposit ratio vs the Theorem 4 bound | Thm 4, §V-B.4 |
//! | [`collision`] | collision probability vs the Theorem 2 bound | Thm 2, §V-B.2 |
//! | [`scalability`] | storable size vs the Theorem 1 capacity formula | Thm 1, §V-B.1 |
//! | [`harness`] | full-protocol timeline scenarios (Fig. 3) over `fi-core` | Fig. 3 |
//! | [`report`] | text/markdown table rendering shared by the binaries | — |
//!
//! Every experiment takes an explicit seed and a [`Scale`] knob: `Paper`
//! reproduces the paper's grid verbatim (hours of CPU at the top rows);
//! `Default` scales row sizes down while preserving every qualitative
//! comparison (documented per-experiment in EXPERIMENTS.md).

pub mod ablation;
pub mod collision;
pub mod deposit;
pub mod harness;
pub mod report;
pub mod robustness;
pub mod scalability;
pub mod selfish;
pub mod table3;
pub mod table4;
pub mod workload;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop-friendly: minutes of CPU, every qualitative shape preserved.
    Default,
    /// The paper's exact grid (Table III's top rows reach `Ncp = 1e8` ×
    /// 100 rounds — expect hours and gigabytes).
    Paper,
}

impl Scale {
    /// Parses `--full` style flags.
    pub fn from_args(args: &[String]) -> Scale {
        if args.iter().any(|a| a == "--full" || a == "--paper") {
            Scale::Paper
        } else {
            Scale::Default
        }
    }
}
