//! The typed transaction layer: every state transition of the FileInsurer
//! ledger is an [`Op`], applied through [`crate::engine::Engine::apply`],
//! answered with a [`Receipt`], and appended to a replayable op log.
//!
//! The paper presents the protocol as a family of on-chain request handlers
//! (Figs. 4–6) plus consensus-automatic tasks (Figs. 7–9). This module
//! makes the request side explicit and first-class, the way a DSN ledger
//! organizes its history as a log of typed storage operations:
//!
//! | Variant | Paper | Semantics |
//! |---|---|---|
//! | [`Op::SectorRegister`] | Fig. 6 `Sector_Register` | pledge deposit, add capacity |
//! | [`Op::SectorDisable`] | Fig. 6 `Sector_Disable` | drain sector, refund on empty |
//! | [`Op::FileAdd`] | Fig. 4 `File_Add` | sample `cp` sectors, escrow fees |
//! | [`Op::FileConfirm`] | Fig. 5 `File_Confirm` | provider acks a replica transfer |
//! | [`Op::FileProve`] | Fig. 5 `File_Prove` | storage proof for a held replica |
//! | [`Op::FileGet`] | §III-E `File_Get` | list live holders (gas-charged read) |
//! | [`Op::FileDiscard`] | Fig. 4 `File_Discard` | owner marks file for removal |
//! | [`Op::ForceDiscard`] | §VI-C rollback | consensus-side discard, no gas |
//! | [`Op::Fund`] / [`Op::Burn`] | — | simulation mint/burn |
//! | [`Op::FailSector`] / [`Op::CorruptSector`] | §V fault model | adversarial injection |
//! | [`Op::AdvanceTo`] | Fig. 1 pending list | move consensus time, run `Auto_*` tasks |
//!
//! The `Auto_*` tasks themselves are *not* ops: they are deterministic
//! consequences of `AdvanceTo` (the network executes them by consensus, no
//! transaction exists for them). That is exactly what makes the log
//! replayable: [`crate::engine::Engine::replay`] feeds the same ops to a
//! fresh engine and reproduces the same `state_root()` block by block.
//!
//! Ops arrive one at a time through `apply` or as whole block batches
//! through [`crate::engine::Engine::apply_batch`], which pipelines the
//! shard-local variants (`FileConfirm`, `FileProve`, `FileGet`,
//! `FileDiscard`, `ForceDiscard`) across shards and treats the rest as
//! pipeline barriers; either path commits the identical op log.

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::tasks::Time;
use fi_crypto::{cached_domain, Hash256};

use crate::types::{FileId, SectorId};

/// A typed protocol transaction — the single entry point into the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// `Sector_Register` (Fig. 6): `owner` pledges the deposit for a sector
    /// of `capacity` size units.
    SectorRegister {
        /// Provider account paying the deposit.
        owner: AccountId,
        /// Sector capacity (multiple of `minCapacity`).
        capacity: u64,
    },
    /// `Sector_Disable` (Fig. 6): stop accepting files; drain and refund.
    SectorDisable {
        /// Must be the sector owner.
        caller: AccountId,
        /// Sector to disable.
        sector: SectorId,
    },
    /// `File_Add` (Fig. 4): store a file with `cp = k·value/minValue`
    /// replicas at capacity-weighted random sectors.
    FileAdd {
        /// Client account paying fees and rent.
        client: AccountId,
        /// File size (≤ `sizeLimit`).
        size: u64,
        /// Declared value (multiple of `minValue`).
        value: TokenAmount,
        /// Merkle commitment to the content.
        merkle_root: Hash256,
    },
    /// `File_Confirm` (Fig. 5): the target sector's provider acknowledges
    /// receiving replica `index`; the traffic fee is released.
    FileConfirm {
        /// Must own `sector`.
        caller: AccountId,
        /// File being transferred.
        file: FileId,
        /// Replica index.
        index: u32,
        /// Receiving sector.
        sector: SectorId,
    },
    /// `File_Prove` (Fig. 5): a storage proof for replica `index` held by
    /// `sector`.
    FileProve {
        /// Must own `sector`.
        caller: AccountId,
        /// File proven.
        file: FileId,
        /// Replica index.
        index: u32,
        /// Holding sector.
        sector: SectorId,
    },
    /// `File_Get` (§III-E): gas-charged holder lookup; retrieval proceeds
    /// off-chain.
    FileGet {
        /// Account charged for the read.
        caller: AccountId,
        /// File requested.
        file: FileId,
    },
    /// `File_Discard` (Fig. 4): the owner marks the file for removal at its
    /// next `Auto_CheckProof`.
    FileDiscard {
        /// Must be the file owner.
        caller: AccountId,
        /// File to discard.
        file: FileId,
    },
    /// Consensus-side discard used by the §VI-C segmented-upload rollback:
    /// marks the file discarded without charging gas (the usual trigger is
    /// the client running out of funds mid-upload, so a gas-charging
    /// discard would fail for the same reason and orphan the segments).
    ForceDiscard {
        /// File to mark discarded.
        file: FileId,
    },
    /// Simulation funding: mints tokens into an account.
    Fund {
        /// Receiving account.
        account: AccountId,
        /// Minted amount.
        amount: TokenAmount,
    },
    /// Simulation burn (e.g. to model a client going broke).
    Burn {
        /// Account debited.
        account: AccountId,
        /// Burned amount.
        amount: TokenAmount,
    },
    /// Fault injection: silent physical failure — the sector can no longer
    /// produce proofs; the network discovers it via `ProofDeadline`.
    FailSector {
        /// Failing sector.
        sector: SectorId,
    },
    /// Fault injection with immediate detection: confiscate the deposit and
    /// void the sector's replicas right away.
    CorruptSector {
        /// Corrupted sector.
        sector: SectorId,
    },
    /// Advances consensus time, sealing blocks and executing every due
    /// `Auto_*` task (Fig. 1's pending list) on the way.
    AdvanceTo {
        /// Target consensus time (≥ current time).
        target: Time,
    },
}

impl Op {
    /// Short kind tag (stable, used in logs and events).
    pub fn kind(&self) -> &'static str {
        match self {
            Op::SectorRegister { .. } => "op.sector_register",
            Op::SectorDisable { .. } => "op.sector_disable",
            Op::FileAdd { .. } => "op.file_add",
            Op::FileConfirm { .. } => "op.file_confirm",
            Op::FileProve { .. } => "op.file_prove",
            Op::FileGet { .. } => "op.file_get",
            Op::FileDiscard { .. } => "op.file_discard",
            Op::ForceDiscard { .. } => "op.force_discard",
            Op::Fund { .. } => "op.fund",
            Op::Burn { .. } => "op.burn",
            Op::FailSector { .. } => "op.fail_sector",
            Op::CorruptSector { .. } => "op.corrupt_sector",
            Op::AdvanceTo { .. } => "op.advance_to",
        }
    }

    /// Canonical digest of the op, committed into the containing block's
    /// op batch.
    pub fn digest(&self) -> Hash256 {
        op_domain().hash(&[self.kind().as_bytes(), format!("{self:?}").as_bytes()])
    }

    /// Canonical digests of many ops in one multi-lane sweep — bit-identical
    /// to mapping [`Op::digest`], but the SHA-256 work runs through the
    /// batched backend. The batch-ingest path pre-stages whole blocks of op
    /// digests this way.
    pub fn digest_many(ops: &[&Op]) -> Vec<Hash256> {
        let texts: Vec<String> = ops.iter().map(|op| format!("{op:?}")).collect();
        let lanes: Vec<[&[u8]; 2]> = ops
            .iter()
            .zip(&texts)
            .map(|(op, text)| [op.kind().as_bytes(), text.as_bytes()])
            .collect();
        let refs: Vec<&[&[u8]]> = lanes.iter().map(|l| l.as_slice()).collect();
        op_domain().hash_many(&refs)
    }
}

cached_domain!(fn op_domain, "fileinsurer/op");
cached_domain!(fn receipt_domain, "fileinsurer/receipt");
cached_domain!(fn receipt_err_domain, "fileinsurer/receipt-err");

/// The typed result of a successfully applied [`Op`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Receipt {
    /// A sector was registered.
    SectorRegistered {
        /// The new sector's id.
        sector: SectorId,
    },
    /// A sector was disabled (drain started or completed).
    SectorDisabled {
        /// The disabled sector.
        sector: SectorId,
    },
    /// A file was accepted and its replicas allocated.
    FileAdded {
        /// The new file's id.
        file: FileId,
        /// Number of replicas allocated.
        cp: u32,
    },
    /// A replica transfer was confirmed.
    Confirmed {
        /// File whose replica was confirmed.
        file: FileId,
        /// Replica index.
        index: u32,
    },
    /// A storage proof was accepted.
    Proved {
        /// File proven.
        file: FileId,
        /// Replica index.
        index: u32,
    },
    /// Live holders of a file, in replica-index order.
    Holders {
        /// `(sector, owner)` pairs currently able to serve the file.
        holders: Vec<(SectorId, AccountId)>,
    },
    /// A file was marked for discard (client- or consensus-initiated).
    Discarded {
        /// The file marked.
        file: FileId,
    },
    /// Tokens were minted or burned.
    Balance {
        /// Account affected.
        account: AccountId,
        /// Resulting balance.
        balance: TokenAmount,
    },
    /// A fault was injected into a sector.
    Faulted {
        /// The sector affected.
        sector: SectorId,
    },
    /// Consensus time advanced.
    TimeAdvanced {
        /// The new consensus time.
        now: Time,
        /// Chain height after the advance.
        height: u64,
    },
}

impl Receipt {
    /// Canonical digest of the receipt, folded into the block's
    /// `receipt_root`.
    pub fn digest(&self) -> Hash256 {
        receipt_domain().hash(&[format!("{self:?}").as_bytes()])
    }

    /// Digest recorded for a *failed* op (failed requests still burn gas
    /// and occupy the batch, so their outcome is committed too).
    pub fn error_digest(err: &crate::engine::EngineError) -> Hash256 {
        receipt_err_domain().hash(&[format!("{err}").as_bytes()])
    }
}

/// One entry of the engine's op log: the op, when it was applied, and
/// whether it succeeded. The log is the ledger's transaction history —
/// [`crate::engine::Engine::replay`] reproduces the full engine state from
/// it deterministically, and [`crate::engine::Engine::replay_from`] does
/// the same from a [`crate::engine::Checkpoint`] base after the log has
/// been truncated by [`crate::engine::Engine::checkpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRecord {
    /// Global op sequence number (0-based, monotonic across the engine's
    /// whole history — checkpoint truncation does not reset it, so a
    /// truncated log's first record carries the checkpoint's
    /// `ops_applied`).
    pub seq: u64,
    /// Consensus time when the op was applied (before any time advance the
    /// op itself performs).
    pub at: Time,
    /// The op.
    pub op: Op,
    /// Whether the op succeeded. Failed ops still mutate state (gas burns)
    /// and are replayed; replay asserts the outcome matches.
    pub ok: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_digests_distinguish_ops() {
        let a = Op::FileAdd {
            client: AccountId(1),
            size: 4,
            value: TokenAmount(1_000),
            merkle_root: Hash256::ZERO,
        };
        let b = Op::FileAdd {
            client: AccountId(2),
            size: 4,
            value: TokenAmount(1_000),
            merkle_root: Hash256::ZERO,
        };
        assert_eq!(a.kind(), "op.file_add");
        assert_ne!(a.digest(), b.digest(), "payload is committed");
        assert_eq!(a.digest(), a.clone().digest(), "digest is deterministic");
    }

    #[test]
    fn digest_many_matches_per_op_digests() {
        let ops: Vec<Op> = (0..9u64)
            .map(|i| Op::FileProve {
                caller: AccountId(i),
                file: FileId(i),
                index: i as u32,
                sector: SectorId(i),
            })
            .chain(std::iter::once(Op::AdvanceTo { target: 42 }))
            .collect();
        let refs: Vec<&Op> = ops.iter().collect();
        let batched = Op::digest_many(&refs);
        assert_eq!(batched.len(), ops.len());
        for (op, digest) in ops.iter().zip(&batched) {
            assert_eq!(*digest, op.digest());
        }
        assert!(Op::digest_many(&[]).is_empty());
    }

    #[test]
    fn receipt_digests_distinguish_outcomes() {
        let ok = Receipt::FileAdded {
            file: FileId(0),
            cp: 3,
        };
        let other = Receipt::FileAdded {
            file: FileId(1),
            cp: 3,
        };
        assert_ne!(ok.digest(), other.digest());
        let err = Receipt::error_digest(&crate::engine::EngineError::NotOwner);
        assert_ne!(ok.digest(), err);
    }
}
