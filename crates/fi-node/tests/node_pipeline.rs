//! End-to-end node-pipeline tests: mempool → proposer → `apply_batch` →
//! sealed blocks over a lossy, jittery `fi-net` world → follower replay.
//!
//! The acceptance bar this file carries: ≥3 followers stay bit-identical
//! to the proposer (`state_root`, head hash and receipt root per height)
//! across ≥200 blocks under nonzero loss and jitter, and a follower that
//! cold-starts mid-run from `snapshot_save` bytes plus the op-log suffix
//! converges to the same root.
//!
//! `FI_NODE_TEST_SEED` (CI's loss/jitter seed matrix) offsets every world
//! seed, so each CI cell exercises a different loss/reorder pattern.

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::gas::GasSchedule;
use fi_core::engine::Engine;
use fi_core::ops::Op;
use fi_core::params::ProtocolParams;
use fi_net::link::LinkModel;
use fi_node::{genesis_engine, run_cluster, AdmitError, ClusterConfig, Mempool, ReplayMode, Tx};

/// Base seed, offset by the CI matrix's `FI_NODE_TEST_SEED`.
fn seed(base: u64) -> u64 {
    let offset = std::env::var("FI_NODE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0);
    base + 1_000 * offset
}

/// A lossy, jittery link fast enough that blocks land within a round or
/// two (confirm windows stay satisfiable while reordering still happens).
fn chaos_link(loss: f64) -> LinkModel {
    LinkModel {
        base_latency: 5,
        ticks_per_byte: 0.001,
        max_jitter: 8,
        loss,
    }
}

fn chaos_cluster(base_seed: u64, rounds: u64, loss: f64) -> ClusterConfig {
    let mut cfg = ClusterConfig::small(seed(base_seed), rounds);
    // Generous transfer windows: the client's replica view lags the chain
    // by network latency, so confirms land several rounds after the add.
    cfg.params.delay_per_size = 25;
    cfg.link = chaos_link(loss);
    // One pipelined-replay follower among the op-by-op ones: both paths
    // must verify the same blocks (DESIGN.md §10–11).
    cfg.followers = vec![ReplayMode::OpByOp, ReplayMode::Batch, ReplayMode::OpByOp];
    cfg
}

#[test]
fn three_followers_stay_bit_identical_across_200_blocks_under_loss() {
    let rounds = 220;
    let cfg = chaos_cluster(0xB10C, rounds, 0.12);
    let (world, reports) = run_cluster(&cfg);

    let proposer = reports.proposer.borrow();
    assert_eq!(
        proposer.roots.len(),
        rounds as usize,
        "proposer produced every round"
    );
    assert!(
        proposer.ops_committed > rounds,
        "blocks actually carried mempool traffic: {} ops",
        proposer.ops_committed
    );
    assert!(
        world.messages_lost() > 0,
        "the link actually dropped messages"
    );

    let final_root = proposer.final_state_root.expect("proposer finished");
    assert_eq!(reports.followers.len(), 3);
    for (i, report) in reports.followers.iter().enumerate() {
        let report = report.borrow();
        assert_eq!(
            report.mismatched_rounds,
            Vec::<u64>::new(),
            "follower {i} diverged"
        );
        assert_eq!(
            report.verified_rounds, rounds,
            "follower {i} verified every height"
        );
        assert_eq!(
            report.final_state_root,
            Some(final_root),
            "follower {i} ends on the proposer's root"
        );
    }
}

#[test]
fn follower_replay_modes_agree_per_height() {
    // Same cluster, one Batch follower vs two OpByOp: their per-height
    // verification against the proposer transitively proves
    // apply-vs-apply_batch equality on every sealed block.
    let cfg = chaos_cluster(0xA11B, 60, 0.2);
    let (_world, reports) = run_cluster(&cfg);
    for report in &reports.followers {
        let report = report.borrow();
        assert_eq!(report.verified_rounds, 60);
        assert!(report.mismatched_rounds.is_empty());
    }
    // Heavy loss forces retransmits; duplicates must have been dropped,
    // not re-applied (re-application would have shown up as mismatches).
    let dupes: u64 = reports
        .followers
        .iter()
        .map(|r| r.borrow().duplicates)
        .sum();
    assert!(dupes > 0, "20% loss produced at least one retransmit dup");
}

#[test]
fn cold_start_follower_converges_from_snapshot_plus_suffix() {
    let rounds = 200;
    let mut cfg = chaos_cluster(0x1013, rounds, 0.1);
    cfg.cold_join_at = Some(rounds / 2 * cfg.params.block_interval);
    let (_world, reports) = run_cluster(&cfg);

    let proposer = reports.proposer.borrow();
    assert!(
        proposer.snapshots_taken > 0,
        "the checkpoint→snapshot→truncate timer ran"
    );
    assert!(proposer.joins_served >= 1, "the joiner was served");

    let joiner = reports.joiner.as_ref().expect("joiner configured");
    let joiner = joiner.borrow();
    let joined_at = joiner.joined_at_round.expect("joiner synced");
    assert!(
        joined_at >= 1 && joined_at < rounds,
        "joined mid-run at round {joined_at}"
    );
    assert!(
        joiner.verified_rounds >= rounds - joined_at - 5,
        "joiner verified (nearly) every post-join height: {} of {}",
        joiner.verified_rounds,
        rounds - joined_at
    );
    assert_eq!(
        joiner.mismatched_rounds,
        Vec::<u64>::new(),
        "joiner never diverged"
    );
    assert_eq!(
        joiner.final_state_root, proposer.final_state_root,
        "joiner converged to the proposer's final root"
    );
}

#[test]
fn same_seed_runs_reproduce_identical_consensus() {
    let run = || {
        let cfg = chaos_cluster(0xDE7, 50, 0.15);
        let (_world, reports) = run_cluster(&cfg);
        let proposer = reports.proposer.borrow();
        (proposer.roots.clone(), proposer.ops_committed)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_seeds_change_history_but_not_safety() {
    let run = |base: u64| {
        let cfg = chaos_cluster(base, 50, 0.15);
        let (_world, reports) = run_cluster(&cfg);
        for report in &reports.followers {
            assert!(report.borrow().mismatched_rounds.is_empty());
        }
        let p = reports.proposer.borrow();
        p.roots.clone()
    };
    let a = run(0x5EED_0001);
    let b = run(0x5EED_0002);
    // Different loss/fee randomness produces different histories…
    assert_ne!(a, b, "independent seeds diverge in history");
    // …while every follower verified its own proposer above.
}

// ----------------------------------------------------------------------
// Mempool ↔ engine edge cases (the admission-vs-commit satellite).
// ----------------------------------------------------------------------

const PROVIDER: AccountId = AccountId(50);
const SPENDER: AccountId = AccountId(60);

/// An engine + mempool pair in the parallel-ingest configuration, with a
/// provider sector and a funded spender holding `n` live files.
fn ingest_fixture(n: u64) -> (Engine, Mempool, Vec<fi_core::types::FileId>) {
    let params = ProtocolParams {
        k: 1,
        shards: 8,
        ingest_threads: 4,
        ..ProtocolParams::default()
    };
    let mut engine = Engine::new(params.clone()).expect("valid params");
    engine.fund(PROVIDER, TokenAmount(1_000_000_000));
    engine.fund(SPENDER, TokenAmount(1_000_000_000));
    let capacity = (2 * n).div_ceil(64).max(1) * 64;
    engine.sector_register(PROVIDER, capacity).expect("sector");
    let mut files = Vec::new();
    for i in 0..n {
        let file = engine
            .file_add(
                SPENDER,
                1,
                params.min_value,
                fi_crypto::sha256(format!("edge-{i}").as_bytes()),
            )
            .expect("file added");
        for (idx, s) in engine.pending_confirms(file) {
            engine
                .file_confirm(PROVIDER, file, idx, s)
                .expect("confirm");
        }
        files.push(file);
    }
    engine.advance_to(engine.now() + 2);
    assert_eq!(engine.file_ids().len() as u64, n);
    let mempool = Mempool::new(params, GasSchedule::default());
    (engine, mempool, files)
}

#[test]
fn mid_block_insolvency_falls_back_like_sequential_apply() {
    let (engine, mut mempool, files) = ingest_fixture(100);

    // 100 gas-charged File_Get reads pass admission against the current
    // balance…
    for (nonce, &file) in files.iter().enumerate() {
        mempool
            .admit(
                Tx {
                    from: SPENDER,
                    nonce: nonce as u64,
                    fee: TokenAmount(1),
                    op: Op::FileGet {
                        caller: SPENDER,
                        file,
                    },
                },
                engine.ledger(),
            )
            .expect("admission against the funded balance");
    }

    // …then the account is drained on-chain before the block commits:
    // admission was a snapshot-in-time heuristic, commit is authoritative.
    let mut proposer_engine = engine.clone();
    proposer_engine.burn_for_test(SPENDER, proposer_engine.ledger().balance(SPENDER));

    let (txs, _gas) = mempool.select_block();
    assert_eq!(txs.len(), 100);
    let mut ops: Vec<Op> = txs.into_iter().map(|tx| tx.op).collect();
    ops.push(Op::AdvanceTo {
        target: proposer_engine.now() + proposer_engine.params().block_interval,
    });

    // The staged parallel ingest (≥64-op shard-local segment at 8 shards /
    // 4 threads) must fall back exactly like the sequential path.
    let mut sequential = proposer_engine.clone();
    for op in ops.clone() {
        let _ = sequential.apply(op);
    }
    let results = proposer_engine.apply_batch(ops);
    let failed = results.iter().filter(|r| r.is_err()).count();
    assert_eq!(failed, 100, "every drained read failed at commit");
    assert_eq!(proposer_engine.state_root(), sequential.state_root());
    assert_eq!(
        proposer_engine.chain().head_hash(),
        sequential.chain().head_hash()
    );
    assert_eq!(proposer_engine.op_log(), sequential.op_log());
}

#[test]
fn insolvency_at_admission_rejects_what_commit_would_reject() {
    let (mut engine, mut mempool, files) = ingest_fixture(1);
    let file = files[0];
    engine.burn_for_test(SPENDER, engine.ledger().balance(SPENDER));
    // Now the same submission is refused up front.
    let err = mempool
        .admit(
            Tx {
                from: SPENDER,
                nonce: 0,
                fee: TokenAmount(1),
                op: Op::FileGet {
                    caller: SPENDER,
                    file,
                },
            },
            engine.ledger(),
        )
        .unwrap_err();
    assert!(matches!(err, AdmitError::InsufficientFunds { .. }));
    assert_eq!(mempool.stats().rejected_funds, 1);
}

#[test]
fn duplicate_op_rejected_in_pool_but_committed_duplicate_fails_on_chain() {
    let (mut engine, mut mempool, _files) = ingest_fixture(1);
    // A fresh add so there is a pending confirm to duplicate.
    let file = engine
        .file_add(
            SPENDER,
            1,
            engine.params().min_value,
            fi_crypto::sha256(b"dup"),
        )
        .expect("added");
    let (index, sector) = engine.pending_confirms(file)[0];
    let confirm = Op::FileConfirm {
        caller: PROVIDER,
        file,
        index,
        sector,
    };
    let tx = |nonce| Tx {
        from: PROVIDER,
        nonce,
        fee: TokenAmount(1),
        op: confirm.clone(),
    };
    mempool.admit(tx(0), engine.ledger()).expect("first admit");
    // While queued, the identical op is a pool-level duplicate.
    assert_eq!(
        mempool.admit(tx(1), engine.ledger()),
        Err(AdmitError::DuplicateOp)
    );
    let (txs, _) = mempool.select_block();
    assert_eq!(txs.len(), 1);
    assert!(engine.apply(txs[0].op.clone()).is_ok());
    // Once committed the pool no longer knows it: the duplicate admits
    // (under a fresh nonce — the rejected submission burned nonce 1) —
    // and fails at commit like any stale request, burning its gas.
    mempool.admit(tx(2), engine.ledger()).expect("re-admitted");
    let (txs, _) = mempool.select_block();
    let result = engine.apply(txs[0].op.clone());
    assert!(result.is_err(), "double confirm rejected by the engine");
    assert!(!engine.op_log().last().expect("logged").ok);
}

#[test]
fn replaying_the_proposer_log_reproduces_the_networked_run() {
    // The whole networked run is just an op sequence: replaying the
    // proposer's log (genesis included; `checkpoint_every = 0` keeps it
    // complete) on a fresh engine reproduces the final consensus state.
    let mut cfg = chaos_cluster(0x4EB1A4, 40, 0.1);
    cfg.checkpoint_every = 0; // keep the full log
    let (_world, reports) = run_cluster(&cfg);
    let proposer = reports.proposer.borrow();
    assert_eq!(
        proposer.snapshots_taken, 0,
        "no checkpoint truncated the log (none timed, no joiner served)"
    );
    let final_root = proposer.final_state_root.expect("finished");
    let replayed =
        Engine::replay(cfg.params.clone(), &proposer.final_op_log).expect("params valid");
    assert_eq!(replayed.state_root(), final_root);
    // And an independently rebuilt genesis is the same starting point the
    // whole cluster shared.
    let (genesis, _) = genesis_engine(&cfg.params, &cfg.providers, cfg.client);
    assert_eq!(
        genesis.state_root(),
        Engine::replay(
            cfg.params.clone(),
            &proposer.final_op_log[..genesis.op_log().len()]
        )
        .expect("params valid")
        .state_root()
    );
}
