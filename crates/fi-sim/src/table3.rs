//! Table III: maximum sector capacity usage under (a) repeated full
//! reallocation and (b) continuous location refreshing.
//!
//! Experimental setup, following §V-B.2:
//!
//! * `Ncp` file backups with sizes drawn from one of the five
//!   distributions ([`fi_analysis::SizeDistribution`]);
//! * `Ns` equal-capacity sectors with **total capacity = 2 × total backup
//!   size** (the redundant-capacity assumption);
//! * **Setting A** ("reallocate all file backups 100 times"): the whole
//!   workload is re-placed from scratch `rounds` times; the statistic is
//!   the maximum, over rounds and sectors, of `used/capacity`.
//! * **Setting B** ("refresh the location of a file backup 100·Ncp
//!   times"): one initial placement, then `multiplier · Ncp` single-backup
//!   moves to fresh capacity-weighted locations; the statistic tracks the
//!   running maximum usage ever reached.
//!
//! Sampling is capacity-proportional; with equal sectors that reduces to a
//! uniform draw, which is what lets the full `Ncp = 1e8` rows run at all.
//!
//! Scaled mode (`Scale::Default`) caps `Ncp` at 10^6, runs 20 reallocation
//! rounds and a 10× refresh multiplier — Monte-Carlo noise on the max
//! statistic stays below ~0.01, preserving every qualitative comparison
//! (see EXPERIMENTS.md).

use fi_analysis::SizeDistribution;
use fi_crypto::DetRng;
use std::thread;

use crate::report::{f3, TextTable};
use crate::Scale;

/// One `(Ncp, Ns)` grid point of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPoint {
    /// Number of file backups.
    pub ncp: u64,
    /// Number of sectors.
    pub ns: u64,
}

/// The paper's eight grid points.
pub const PAPER_GRID: [GridPoint; 8] = [
    GridPoint {
        ncp: 100_000,
        ns: 20,
    },
    GridPoint {
        ncp: 100_000,
        ns: 100,
    },
    GridPoint {
        ncp: 1_000_000,
        ns: 200,
    },
    GridPoint {
        ncp: 1_000_000,
        ns: 1_000,
    },
    GridPoint {
        ncp: 10_000_000,
        ns: 2_000,
    },
    GridPoint {
        ncp: 10_000_000,
        ns: 10_000,
    },
    GridPoint {
        ncp: 100_000_000,
        ns: 20_000,
    },
    GridPoint {
        ncp: 100_000_000,
        ns: 100_000,
    },
];

/// Experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct Table3Config {
    /// Reallocation rounds (paper: 100).
    pub realloc_rounds: u32,
    /// Refresh steps per backup (paper: 100).
    pub refresh_multiplier: u32,
    /// Cap applied to `Ncp` (scaled mode).
    pub ncp_cap: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Table3Config {
    /// Configuration for a [`Scale`].
    pub fn for_scale(scale: Scale) -> Self {
        match scale {
            Scale::Paper => Table3Config {
                realloc_rounds: 100,
                refresh_multiplier: 100,
                ncp_cap: u64::MAX,
                seed: 0x7A_B1E3,
            },
            Scale::Default => Table3Config {
                realloc_rounds: 20,
                refresh_multiplier: 10,
                ncp_cap: 1_000_000,
                seed: 0x7A_B1E3,
            },
        }
    }
}

/// Result of one cell: the max capacity-usage ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResult {
    /// Maximum over sectors (and rounds / steps) of `used / capacity`.
    pub max_usage: f64,
}

/// The grid point actually simulated after scaling: when `Ncp` is capped,
/// `Ns` shrinks proportionally so the backups-per-sector ratio — the
/// quantity the max-usage statistic depends on — is preserved.
pub fn effective_point(point: GridPoint, config: &Table3Config) -> GridPoint {
    if point.ncp <= config.ncp_cap {
        return point;
    }
    let factor = config.ncp_cap as f64 / point.ncp as f64;
    GridPoint {
        ncp: config.ncp_cap,
        ns: ((point.ns as f64 * factor).round() as u64).max(2),
    }
}

/// Runs Setting A for one cell: reallocate everything `rounds` times.
pub fn realloc_max_usage(
    point: GridPoint,
    dist: SizeDistribution,
    config: &Table3Config,
) -> CellResult {
    let point = effective_point(point, config);
    let ncp = point.ncp as usize;
    let ns = point.ns as usize;
    let mut rng = DetRng::from_seed_label(
        config.seed,
        &format!("t3a/{}/{}/{}", point.ncp, point.ns, dist.label()),
    );
    let sizes: Vec<f32> = (0..ncp).map(|_| dist.sample(&mut rng) as f32).collect();
    let total_size: f64 = sizes.iter().map(|&s| s as f64).sum();
    let capacity = 2.0 * total_size / ns as f64;

    let mut max_ratio = 0.0f64;
    let mut used = vec![0.0f64; ns];
    for _ in 0..config.realloc_rounds {
        used.iter_mut().for_each(|u| *u = 0.0);
        for &s in &sizes {
            let sector = rng.index(ns);
            used[sector] += s as f64;
        }
        let round_max = used.iter().cloned().fold(0.0, f64::max) / capacity;
        max_ratio = max_ratio.max(round_max);
    }
    CellResult {
        max_usage: max_ratio,
    }
}

/// Runs Setting B for one cell: place once, then refresh
/// `multiplier · Ncp` random backups.
pub fn refresh_max_usage(
    point: GridPoint,
    dist: SizeDistribution,
    config: &Table3Config,
) -> CellResult {
    let point = effective_point(point, config);
    let ncp = point.ncp as usize;
    let ns = point.ns as usize;
    let mut rng = DetRng::from_seed_label(
        config.seed,
        &format!("t3b/{}/{}/{}", point.ncp, point.ns, dist.label()),
    );
    let sizes: Vec<f32> = (0..ncp).map(|_| dist.sample(&mut rng) as f32).collect();
    let total_size: f64 = sizes.iter().map(|&s| s as f64).sum();
    let capacity = 2.0 * total_size / ns as f64;

    let mut location: Vec<u32> = Vec::with_capacity(ncp);
    let mut used = vec![0.0f64; ns];
    for &s in &sizes {
        let sector = rng.index(ns);
        location.push(sector as u32);
        used[sector] += s as f64;
    }
    let mut max_used = used.iter().cloned().fold(0.0, f64::max);

    let steps = (config.refresh_multiplier as u64).saturating_mul(ncp as u64);
    for _ in 0..steps {
        let backup = rng.index(ncp);
        let target = rng.index(ns);
        let size = sizes[backup] as f64;
        let from = location[backup] as usize;
        used[from] -= size;
        used[target] += size;
        location[backup] = target as u32;
        if used[target] > max_used {
            max_used = used[target];
        }
    }
    CellResult {
        max_usage: max_used / capacity,
    }
}

/// A full Table III run: per grid point and distribution, both settings.
#[derive(Debug, Clone)]
pub struct Table3Results {
    /// Effective configuration (after scaling).
    pub config: Table3Config,
    /// `realloc[row][dist]`.
    pub realloc: Vec<Vec<f64>>,
    /// `refresh[row][dist]`.
    pub refresh: Vec<Vec<f64>>,
    /// The grid actually run.
    pub grid: Vec<GridPoint>,
}

/// Runs the complete table, parallelising across cells with scoped threads.
pub fn run_table3(scale: Scale) -> Table3Results {
    let config = Table3Config::for_scale(scale);
    let grid: Vec<GridPoint> = PAPER_GRID.to_vec();
    let dists = SizeDistribution::ALL;

    let n_rows = grid.len();
    let n_dists = dists.len();
    let mut realloc = vec![vec![0.0; n_dists]; n_rows];
    let mut refresh = vec![vec![0.0; n_dists]; n_rows];

    // Parallelise across (row, dist, setting) cells.
    let cells: Vec<(usize, usize, bool)> = (0..n_rows)
        .flat_map(|r| (0..n_dists).flat_map(move |d| [(r, d, false), (r, d, true)]))
        .collect();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cells.len());
    let results: Vec<(usize, usize, bool, f64)> = thread::scope(|scope| {
        let chunk = cells.len().div_ceil(workers);
        let mut handles = Vec::new();
        for part in cells.chunks(chunk) {
            let grid = &grid;
            let config = &config;
            handles.push(scope.spawn(move || {
                part.iter()
                    .map(|&(r, d, is_refresh)| {
                        let value = if is_refresh {
                            refresh_max_usage(grid[r], dists[d], config).max_usage
                        } else {
                            realloc_max_usage(grid[r], dists[d], config).max_usage
                        };
                        (r, d, is_refresh, value)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    for (r, d, is_refresh, value) in results {
        if is_refresh {
            refresh[r][d] = value;
        } else {
            realloc[r][d] = value;
        }
    }
    Table3Results {
        config,
        realloc,
        refresh,
        grid,
    }
}

/// Renders results in the paper's two-block layout.
pub fn render(results: &Table3Results) -> String {
    let mut out = String::new();
    let blocks = [
        ("reallocate all file backups", &results.realloc),
        ("refresh the location of a file backup", &results.refresh),
    ];
    let mut any_scaled = false;
    for (title, data) in blocks {
        out.push_str(&format!("{title}\n"));
        let mut table = TextTable::new(vec![
            "Ncp",
            "Ns",
            "simulated",
            "[1]",
            "[2]",
            "[3]",
            "[4]",
            "[5]",
        ]);
        for (row, point) in results.grid.iter().enumerate() {
            let eff = effective_point(*point, &results.config);
            let simulated = if eff == *point {
                "exact".to_string()
            } else {
                any_scaled = true;
                format!("{:.0e}/{}*", eff.ncp as f64, eff.ns)
            };
            let mut cells = vec![
                format!("{:.0e}", point.ncp as f64),
                point.ns.to_string(),
                simulated,
            ];
            cells.extend(data[row].iter().map(|&v| f3(v)));
            table.row(cells);
        }
        out.push_str(&table.render());
        out.push('\n');
    }
    if any_scaled {
        out.push_str(
            "*: scaled run — Ncp capped and Ns shrunk proportionally, preserving the\n   backups-per-sector ratio the statistic depends on; run --full for exact rows.\n",
        );
    }
    for d in SizeDistribution::ALL {
        out.push_str(&format!("{}: {}\n", d.label(), d.description()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> Table3Config {
        Table3Config {
            realloc_rounds: 5,
            refresh_multiplier: 3,
            ncp_cap: 50_000,
            seed: 99,
        }
    }

    #[test]
    fn realloc_usage_in_expected_band() {
        // Expected fill 0.5; max-of-sectors must be above 0.5 but far from
        // 1.0 (the paper's central claim: never beyond ~0.64).
        let cfg = tiny_config();
        let point = GridPoint {
            ncp: 50_000,
            ns: 20,
        };
        for dist in SizeDistribution::ALL {
            let r = realloc_max_usage(point, dist, &cfg);
            assert!(
                (0.5..0.75).contains(&r.max_usage),
                "{dist:?}: {}",
                r.max_usage
            );
        }
    }

    #[test]
    fn refresh_usage_slightly_above_realloc() {
        // Running-max over many refresh steps stochastically dominates the
        // max over a few reallocation snapshots.
        let cfg = tiny_config();
        let point = GridPoint {
            ncp: 20_000,
            ns: 20,
        };
        let a = realloc_max_usage(point, SizeDistribution::Exponential, &cfg);
        let b = refresh_max_usage(point, SizeDistribution::Exponential, &cfg);
        assert!(
            b.max_usage >= a.max_usage - 0.02,
            "{} vs {}",
            b.max_usage,
            a.max_usage
        );
        assert!(b.max_usage < 0.8);
    }

    #[test]
    fn more_sectors_higher_relative_fluctuation() {
        // The paper's pattern: at fixed Ncp, more sectors (fewer backups
        // per sector) ⇒ larger max-usage ratio.
        let cfg = tiny_config();
        let few = realloc_max_usage(
            GridPoint {
                ncp: 50_000,
                ns: 20,
            },
            SizeDistribution::Uniform01,
            &cfg,
        );
        let many = realloc_max_usage(
            GridPoint {
                ncp: 50_000,
                ns: 200,
            },
            SizeDistribution::Uniform01,
            &cfg,
        );
        assert!(
            many.max_usage > few.max_usage,
            "{} vs {}",
            many.max_usage,
            few.max_usage
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = tiny_config();
        let point = GridPoint {
            ncp: 10_000,
            ns: 50,
        };
        let a = realloc_max_usage(point, SizeDistribution::NormalMuEqVar, &cfg);
        let b = realloc_max_usage(point, SizeDistribution::NormalMuEqVar, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn render_contains_all_rows() {
        // A very small smoke run of the full pipeline at reduced grid: use
        // run_table3 but only check formatting afterwards (Default scale
        // caps at 1e6 so the top rows reuse capped Ncp).
        let results = Table3Results {
            config: tiny_config(),
            realloc: vec![vec![0.5; 5]; 8],
            refresh: vec![vec![0.6; 5]; 8],
            grid: PAPER_GRID.to_vec(),
        };
        let text = render(&results);
        assert!(text.contains("reallocate all file backups"));
        assert!(text.contains("refresh the location"));
        assert!(text.contains("1e8"));
        assert!(text.contains("0.500") && text.contains("0.600"));
    }
}
