//! Shared payload generator and case geometry for the erasure benchmarks:
//! the criterion bench (`benches/erasure.rs`) and the CI throughput
//! snapshot (`src/bin/erasure_snapshot.rs`) measure exactly the same
//! inputs, so their numbers are comparable by construction.

/// One kibibyte.
pub const KIB: usize = 1024;
/// One mebibyte.
pub const MIB: usize = 1024 * 1024;

/// Deterministic benchmark payload (byte `i` = `i·131 mod 256`).
pub fn payload(n: usize) -> Vec<u8> {
    (0..n).map(|i| (i * 131 % 256) as u8).collect()
}

/// Encode geometry × payload grid, as `(data, parity, bytes)`: the paper's
/// half-loss (8,8) point at 64 KiB is the acceptance-criteria
/// configuration; 1 MiB / 16 MiB probe cache-miss behaviour on
/// segment-scale payloads.
pub const ENCODE_GRID: &[(usize, usize, usize)] = &[
    (4, 2, 64 * KIB),
    (8, 8, 64 * KIB),
    (16, 16, 64 * KIB),
    (8, 8, MIB),
    (16, 16, MIB),
    (8, 8, 16 * MIB),
];

/// Reconstruct geometry × payload grid, as `(data, parity, bytes)`.
pub const RECONSTRUCT_GRID: &[(usize, usize, usize)] =
    &[(8, 8, 64 * KIB), (16, 16, 64 * KIB), (8, 8, MIB)];

/// Erasure patterns for the reconstruct cases: `(label, erased indices)`.
pub fn patterns(data: usize, parity: usize) -> Vec<(String, Vec<usize>)> {
    let total = data + parity;
    vec![
        ("single-data".into(), vec![0]),
        ("single-parity".into(), vec![data]),
        (
            format!("quarter-{}", total / 4),
            (0..total / 4).map(|i| i * 2 % total).collect(),
        ),
        ("all-data".into(), (0..data).collect()),
    ]
}

/// The erased indices for a named pattern of the `(data, parity)` code.
///
/// # Panics
///
/// Panics when the label names no pattern (a bench-config bug).
pub fn pattern(data: usize, parity: usize, label: &str) -> Vec<usize> {
    patterns(data, parity)
        .into_iter()
        .find(|(l, _)| l == label)
        .unwrap_or_else(|| panic!("unknown erasure pattern {label}"))
        .1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_is_deterministic_and_nontrivial() {
        assert_eq!(payload(4), payload(4));
        assert_eq!(payload(3), vec![0, 131, 6]);
    }

    #[test]
    fn patterns_stay_within_bounds() {
        for &(data, parity, _) in RECONSTRUCT_GRID {
            for (label, erased) in patterns(data, parity) {
                assert!(!erased.is_empty(), "{label}");
                assert!(erased.iter().all(|&i| i < data + parity), "{label}");
                assert!(erased.len() <= parity, "{label}: more erasures than parity");
            }
        }
        assert_eq!(pattern(8, 8, "single-data"), vec![0]);
        assert_eq!(pattern(8, 8, "single-parity"), vec![8]);
    }
}
