//! Quickstart: the Fig. 3 protocol timeline end to end.
//!
//! Run with `cargo run --example quickstart`.
//!
//! A small FileInsurer network: two providers rent out sectors, a client
//! stores a file, providers confirm and prove storage each cycle, the
//! network refreshes replica locations, and the client retrieves the
//! holder list. Every consensus event is printed as it happens.

use fileinsurer::prelude::*;

fn main() {
    // Paper-ratio parameters scaled to a demo: k = 3 replicas per
    // minValue, proof cycle of 100 ticks, refresh every ~4 cycles.
    let params = ProtocolParams {
        k: 3,
        avg_refresh: 4.0,
        delay_per_size: 2,
        ..ProtocolParams::default()
    };

    let mut net = Engine::new(params).expect("valid parameters");

    let alice = AccountId(100); // provider
    let bob = AccountId(101); // provider
    let carol = AccountId(200); // client
    net.fund(alice, TokenAmount(1_000_000_000));
    net.fund(bob, TokenAmount(1_000_000_000));
    net.fund(carol, TokenAmount(50_000_000));

    println!("== Sector_Register: providers pledge deposits ==");
    let s1 = net.sector_register(alice, 640).unwrap();
    let s2 = net.sector_register(alice, 640).unwrap();
    let s3 = net.sector_register(bob, 1280).unwrap();
    for sid in [s1, s2, s3] {
        let sector = net.sector(sid).unwrap();
        println!(
            "  {} owner={} capacity={} deposit={}",
            sid, sector.owner, sector.capacity, sector.deposit
        );
    }

    println!("\n== File_Add: carol stores a 16-unit file of value 1 minValue ==");
    let file = net
        .file_add(
            carol,
            16,
            net.params().min_value,
            sha256(b"carol's archive"),
        )
        .unwrap();
    println!("  allocated {} replicas:", net.file(file).unwrap().cp);
    for (idx, sector) in net.pending_confirms(file) {
        println!("    replica {idx} -> {sector}");
    }

    println!("\n== File_Confirm + Auto_CheckAlloc ==");
    net.honest_providers_act();
    net.advance_to(net.now() + 32); // past DelayPerSize × size
    println!("  file state: {:?}", net.file(file).unwrap().state);

    println!("\n== 10 proof cycles with honest providers (Auto_CheckProof / Auto_Refresh) ==");
    for cycle in 1..=10 {
        net.honest_providers_act();
        net.advance_to(net.now() + 50);
        net.honest_providers_act();
        net.advance_to(net.now() + 50);
        let _ = cycle;
    }
    let stats = net.stats();
    println!("  proofs accepted:      {}", stats.proofs_accepted);
    println!("  refreshes started:    {}", stats.refreshes_started);
    println!("  refreshes completed:  {}", stats.refreshes_completed);

    println!("\n== File_Get: retrieval market hands back the holder list ==");
    let holders = net.file_get(carol, file).unwrap();
    for (sector, owner) in &holders {
        println!("  replica held by {sector} (owner {owner})");
    }

    println!("\n== event log (last 12 events) ==");
    let events = net.events();
    for event in events
        .iter()
        .rev()
        .take(12)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!("  {event:?}");
    }

    println!(
        "\nledger audit: {}",
        if net.ledger().audit() { "ok" } else { "BROKEN" }
    );
}
