//! Proof-of-Spacetime: beacon-challenged storage proofs (WindowPoSt).
//!
//! Each `ProofCycle`, the chain derives chunk challenges for every stored
//! replica from the round's beacon value; the provider answers with the
//! challenged chunks plus Merkle inclusion proofs against `comm_r`. Missing
//! the `ProofDue` window incurs punishment; missing `ProofDeadline` marks
//! the sector corrupted and confiscates its deposit (paper Fig. 8).
//!
//! WinningPoSt — the variant used for block election in Filecoin's Expected
//! Consensus — is the same response over a single challenge; we expose it
//! as [`winning_post_eligible`] for completeness since the paper notes
//! *"WinningPoSt can be easily achieved"* (§IV).

use fi_crypto::merkle::{MerklePathBatch, MerkleProof};
use fi_crypto::rng::DetRng;
use fi_crypto::{keyed_hash, Hash256};

use crate::seal::SealedReplica;

/// Derives `count` chunk challenges for the replica committed by `comm_r`
/// from a beacon value. Deterministic: every consensus participant derives
/// the same challenges.
pub fn derive_challenges(
    beacon: &Hash256,
    comm_r: &Hash256,
    count: usize,
    chunk_count: usize,
) -> Vec<usize> {
    assert!(chunk_count > 0, "replica must have at least one chunk");
    let seed = keyed_hash("post/challenges", &[beacon.as_ref(), comm_r.as_ref()]);
    let mut rng = DetRng::from_hash(seed);
    (0..count).map(|_| rng.index(chunk_count)).collect()
}

/// One challenged chunk with its inclusion proof.
#[derive(Debug, Clone)]
pub struct ChallengeResponse {
    /// The challenged chunk index.
    pub index: usize,
    /// The chunk payload as stored.
    pub chunk: Vec<u8>,
    /// Inclusion proof against `comm_r`.
    pub proof: MerkleProof,
}

/// A WindowPoSt response: answers to all challenges of one cycle.
#[derive(Debug, Clone)]
pub struct WindowPost {
    responses: Vec<ChallengeResponse>,
}

impl WindowPost {
    /// Produces a response from the sealed replica (prover side).
    ///
    /// # Panics
    ///
    /// Panics if a challenge index is out of range for the replica — the
    /// challenges must come from [`derive_challenges`] with the right
    /// `chunk_count`.
    pub fn respond(replica: &SealedReplica, challenges: &[usize]) -> Self {
        let responses = challenges
            .iter()
            .map(|&index| {
                let chunk = replica
                    .chunk(index)
                    .expect("challenge index within replica")
                    .to_vec();
                let proof = replica.tree().prove(index).expect("index proven");
                ChallengeResponse {
                    index,
                    chunk,
                    proof,
                }
            })
            .collect();
        WindowPost { responses }
    }

    /// Verifies the response against the on-chain commitment and the
    /// expected challenge set (verifier side).
    ///
    /// The challenges' inclusion paths are independent, so they verify as
    /// lockstep SIMD lanes ([`MerklePathBatch`]) rather than one Merkle
    /// walk at a time.
    pub fn verify(&self, comm_r: &Hash256, challenges: &[usize]) -> bool {
        if self.responses.len() != challenges.len() {
            return false;
        }
        let indices_ok = self
            .responses
            .iter()
            .zip(challenges)
            .all(|(resp, &want)| resp.index == want && resp.proof.leaf_index() == want);
        if !indices_ok {
            return false;
        }
        let items: Vec<(&MerkleProof, &[u8], Hash256)> = self
            .responses
            .iter()
            .map(|resp| (&resp.proof, resp.chunk.as_slice(), *comm_r))
            .collect();
        MerklePathBatch::verify_payloads(&items)
            .into_iter()
            .all(|ok| ok)
    }

    /// The individual challenge responses.
    pub fn responses(&self) -> &[ChallengeResponse] {
        &self.responses
    }
}

/// WinningPoSt eligibility check: a single beacon challenge whose response
/// hash falls under `target` (higher target = easier election). Returns the
/// proof when eligible.
pub fn winning_post_eligible(
    replica: &SealedReplica,
    beacon: &Hash256,
    target_leading_zero_bits: u32,
) -> Option<WindowPost> {
    let challenges = derive_challenges(beacon, &replica.comm_r(), 1, replica.chunk_count());
    let post = WindowPost::respond(replica, &challenges);
    let ticket = keyed_hash(
        "post/winning-ticket",
        &[beacon.as_ref(), &post.responses[0].chunk],
    );
    if ticket.xor_leading_zeros(&Hash256::ZERO) >= target_leading_zero_bits {
        Some(post)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seal::ReplicaId;
    use fi_crypto::sha256;

    fn replica(len: usize, salt: u32) -> SealedReplica {
        let data: Vec<u8> = (0..len).map(|i| (i % 233) as u8).collect();
        let rid = ReplicaId::derive(&sha256(b"post-data"), &sha256(b"post-sector"), salt);
        SealedReplica::seal(&data, rid)
    }

    #[test]
    fn honest_prover_passes() {
        let rep = replica(1000, 0);
        let beacon = sha256(b"round-1");
        let ch = derive_challenges(&beacon, &rep.comm_r(), 8, rep.chunk_count());
        let post = WindowPost::respond(&rep, &ch);
        assert!(post.verify(&rep.comm_r(), &ch));
    }

    #[test]
    fn challenges_deterministic_and_beacon_sensitive() {
        let rep = replica(1000, 0);
        let b1 = sha256(b"round-1");
        let b2 = sha256(b"round-2");
        let c1a = derive_challenges(&b1, &rep.comm_r(), 16, rep.chunk_count());
        let c1b = derive_challenges(&b1, &rep.comm_r(), 16, rep.chunk_count());
        let c2 = derive_challenges(&b2, &rep.comm_r(), 16, rep.chunk_count());
        assert_eq!(c1a, c1b);
        assert_ne!(c1a, c2);
    }

    #[test]
    fn wrong_replica_fails() {
        // A provider storing a different sealing (e.g. a Sybil reusing one
        // copy for two commitments) cannot answer the other's challenges.
        let rep_a = replica(1000, 0);
        let rep_b = replica(1000, 1); // same data, different replica id
        let beacon = sha256(b"round-3");
        let ch = derive_challenges(&beacon, &rep_a.comm_r(), 8, rep_a.chunk_count());
        let forged = WindowPost::respond(&rep_b, &ch);
        assert!(!forged.verify(&rep_a.comm_r(), &ch));
    }

    #[test]
    fn tampered_chunk_fails() {
        let rep = replica(500, 2);
        let beacon = sha256(b"round-4");
        let ch = derive_challenges(&beacon, &rep.comm_r(), 4, rep.chunk_count());
        let mut post = WindowPost::respond(&rep, &ch);
        post.responses[2].chunk[0] ^= 0xFF;
        assert!(!post.verify(&rep.comm_r(), &ch));
    }

    #[test]
    fn mismatched_challenge_set_fails() {
        let rep = replica(500, 3);
        let beacon = sha256(b"round-5");
        let ch = derive_challenges(&beacon, &rep.comm_r(), 4, rep.chunk_count());
        let post = WindowPost::respond(&rep, &ch);
        let other = derive_challenges(&sha256(b"round-6"), &rep.comm_r(), 4, rep.chunk_count());
        if ch != other {
            assert!(!post.verify(&rep.comm_r(), &other));
        }
        let fewer = &ch[..3];
        assert!(!post.verify(&rep.comm_r(), fewer));
    }

    #[test]
    fn single_chunk_replica() {
        let rep = replica(10, 4);
        assert_eq!(rep.chunk_count(), 1);
        let beacon = sha256(b"round-7");
        let ch = derive_challenges(&beacon, &rep.comm_r(), 2, rep.chunk_count());
        assert!(ch.iter().all(|&i| i == 0));
        let post = WindowPost::respond(&rep, &ch);
        assert!(post.verify(&rep.comm_r(), &ch));
    }

    #[test]
    fn winning_post_threshold_behaviour() {
        let rep = replica(4000, 5);
        // Target 0 bits: always eligible.
        assert!(winning_post_eligible(&rep, &sha256(b"r"), 0).is_some());
        // Target 256 bits: never eligible.
        assert!(winning_post_eligible(&rep, &sha256(b"r"), 256).is_none());
        // Some beacon should win at a very easy 1-bit target.
        let won =
            (0u32..64).any(|i| winning_post_eligible(&rep, &sha256(&i.to_be_bytes()), 1).is_some());
        assert!(won);
    }
}
