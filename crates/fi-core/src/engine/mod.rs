//! The FileInsurer protocol engine: the consensus state machine of §IV,
//! organized as a typed transaction processor.
//!
//! Every state transition is an [`Op`] applied through the
//! single front door [`Engine::apply`], which returns a typed
//! [`Receipt`], commits the `(op, receipt)` pair into
//! the open block's batch, and appends the op to a replayable log
//! ([`Engine::op_log`], [`Engine::replay`]). The familiar method API
//! ([`Engine::file_add`], [`Engine::sector_register`], …) survives as thin
//! wrappers that construct ops.
//!
//! The engine is split by concern:
//!
//! * [`mod@self`] — dispatch, time advancement, gas, the op log,
//!   checkpoints;
//! * `shard` — the sharded per-file core: file descriptors, allocation
//!   rows, discard reasons, per-shard task wheels and stats, routed by
//!   `FileId % shards` (ids are allocated from one global counter, so
//!   shard `s` owns the strided ids `s, s + n, s + 2n, …`);
//! * `lifecycle` — client/provider requests (Figs. 4–6): add, confirm,
//!   prove, get, discard, sector admin, segmented uploads;
//! * `audit` — the `Auto_*` consensus tasks (Figs. 7–9): `CheckAlloc`,
//!   `CheckProof`, `Refresh`, `CheckRefresh`, rent distribution,
//!   punishment and confiscation, fault injection;
//! * `alloc` — allocation bookkeeping: weighted sampling with collision
//!   retry, reservations and rollback, sector draining, the §VI-B Poisson
//!   swap-in.
//!
//! `Auto_` tasks execute from per-shard epoch-bucketed wheels
//! ([`fi_chain::tasks::TaskWheel`]) when [`Engine::advance_to`] moves time
//! past their deadline. Each due bucket runs in two phases: a read-only
//! **verify** phase (the modeled Merkle storage-proof checks of
//! `Auto_CheckProof`, fanned out across shards with scoped threads —
//! audits are independent per (file, replica), the heart of the paper's
//! scalability claim) and a sequential **commit** phase that merges the
//! per-shard slices back into global `(time, schedule-seq)` order and
//! applies rent, punishments and refreshes. The merge key is
//! shard-count-invariant, so consensus state is bit-identical whether the
//! engine runs 1 shard or 8 (see DESIGN.md §9).
//!
//! Money flows exactly as §IV-A/§IV-B prescribe:
//!
//! * **deposits** — pledged at `Sector_Register` into a deposit escrow;
//!   refunded on safe exit; confiscated into the compensation pool when a
//!   sector misses `ProofDeadline` or is corrupted;
//! * **storage rent + prepaid gas** — deducted from the client every
//!   `ProofCycle` by `Auto_CheckProof`; rent accumulates in a pool paid out
//!   to live sectors pro rata capacity each rent period; the gas share is
//!   burned (consensus space);
//! * **traffic fees** — escrowed at `File_Add`, released to each provider
//!   upon `File_Confirm`;
//! * **compensation** — on loss of all replicas, the client receives the
//!   declared file value from confiscated deposits (Fig. 8).

mod alloc;
mod audit;
mod batch;
mod lifecycle;
mod shard;
mod snapshot;

use std::collections::{BTreeSet, HashMap};

use fi_chain::account::{AccountId, Ledger, TokenAmount};
use fi_chain::block::{BlockChain, ChainEvent};
use fi_chain::gas::{GasSchedule, Op as GasOp};
use fi_chain::tasks::Time;
use fi_crypto::{keyed_hash, DetRng, Hash256};

use crate::drep::CrAccounting;
use crate::ops::{Op, OpRecord, Receipt};
use crate::params::{ParamError, ProtocolParams};
use crate::sampler::WeightedSampler;
use crate::segment::SegmentedFile;
use crate::types::{AllocEntry, FileDescriptor, FileId, ProtocolEvent, Sector, SectorId};

use self::audit::ProofAudit;
use self::batch::{ledger_steps_match, shard_local_file, PARALLEL_INGEST_THRESHOLD};
use self::shard::ShardedState;

pub use self::snapshot::SnapshotError;

/// Deposit escrow: holds pledged sector deposits.
pub const DEPOSIT_ESCROW: AccountId = AccountId(1);
/// Compensation pool: confiscated deposits awaiting payout.
pub const COMPENSATION_POOL: AccountId = AccountId(2);
/// Rent pool: rent accrued during the current period.
pub const RENT_POOL: AccountId = AccountId(3);
/// Traffic-fee escrow: prepaid transfer fees awaiting confirms.
pub const TRAFFIC_ESCROW: AccountId = AccountId(4);

/// Errors returned by engine request handlers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// Unknown file id.
    UnknownFile(FileId),
    /// Unknown sector id.
    UnknownSector(SectorId),
    /// The caller does not own the object it is operating on.
    NotOwner,
    /// The object is in the wrong state for the request.
    InvalidState(&'static str),
    /// Parameter/argument validation failed.
    Param(ParamError),
    /// The caller cannot cover a required payment.
    InsufficientFunds,
    /// No sector with enough free space could be sampled
    /// (`collision_retry_limit` exceeded — "almost never happens").
    NoCapacity,
    /// File exceeds `sizeLimit`; segment it first (§VI-C, [`crate::segment`]).
    FileTooLarge {
        /// Requested size.
        size: u64,
        /// The configured `sizeLimit`.
        limit: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::UnknownFile(id) => write!(f, "unknown {id}"),
            EngineError::UnknownSector(id) => write!(f, "unknown {id}"),
            EngineError::NotOwner => write!(f, "caller does not own the target"),
            EngineError::InvalidState(what) => write!(f, "invalid state: {what}"),
            EngineError::Param(e) => write!(f, "{e}"),
            EngineError::InsufficientFunds => write!(f, "insufficient funds"),
            EngineError::NoCapacity => write!(f, "no sector with sufficient free space"),
            EngineError::FileTooLarge { size, limit } => {
                write!(
                    f,
                    "file size {size} exceeds sizeLimit {limit}; erasure-segment it"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ParamError> for EngineError {
    fn from(e: ParamError) -> Self {
        EngineError::Param(e)
    }
}

/// The result of [`Engine::file_add_segmented`]: the per-segment file ids
/// (data segments first, parity after — index `i` stores segment `i`) plus
/// the segmentation plan with the encoded flat buffer.
#[derive(Debug, Clone)]
pub struct SegmentedUpload {
    /// One file id per segment, in segment order.
    pub files: Vec<FileId>,
    /// The §VI-C plan: flat segment buffer, per-segment value, geometry.
    pub segmented: SegmentedFile,
}

/// Consensus-scheduled tasks (the `Auto_` protocols).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(super) enum Task {
    CheckAlloc(FileId),
    CheckProof(FileId),
    CheckRefresh(FileId, u32),
    DistributeRent,
}

/// Counters exposed for experiments and tests.
///
/// The engine keeps one instance per shard (for file-attributable
/// counters) plus one global instance (for sector-attributable counters
/// incremented outside any file context); [`Engine::stats`] returns the
/// [`EngineStats::merge`] of all of them, which equals what a 1-shard
/// engine counts on the same workload.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// `File_Add` sampling retries that hit an over-full sector.
    pub add_collisions: u64,
    /// `Auto_Refresh` attempts aborted because the target lacked space.
    pub refresh_collisions: u64,
    /// Refresh transfers started.
    pub refreshes_started: u64,
    /// Refresh transfers completed.
    pub refreshes_completed: u64,
    /// Storage proofs accepted.
    pub proofs_accepted: u64,
    /// Late-proof / failed-transfer punishments applied.
    pub punishments: u64,
    /// Sectors corrupted (deadline misses + injected corruption).
    pub sectors_corrupted: u64,
    /// Files lost (all replicas destroyed).
    pub files_lost: u64,
    /// Total declared value of lost files.
    pub value_lost: TokenAmount,
    /// Compensation actually paid out.
    pub compensation_paid: TokenAmount,
    /// Compensation shortfall (pool ran dry) — must stay zero in any run
    /// within Theorem 4's deposit regime.
    pub compensation_shortfall: TokenAmount,
    /// Replica storage proofs cryptographically checked by
    /// `Auto_CheckProof`'s read-only verify phase.
    pub proofs_audited: u64,
}

impl EngineStats {
    /// Accumulates `other` into `self`, field by field. Counters are
    /// disjoint across shards (every increment happens on exactly one
    /// shard, or on the engine's global instance), so merging the
    /// per-shard stats reproduces the unsharded totals exactly.
    pub fn merge(&mut self, other: &EngineStats) {
        // Exhaustive destructuring (no `..`): adding a field to
        // EngineStats without merging it is a compile error, not a
        // silently under-reported counter at shards > 1.
        let EngineStats {
            add_collisions,
            refresh_collisions,
            refreshes_started,
            refreshes_completed,
            proofs_accepted,
            punishments,
            sectors_corrupted,
            files_lost,
            value_lost,
            compensation_paid,
            compensation_shortfall,
            proofs_audited,
        } = other;
        self.add_collisions += add_collisions;
        self.refresh_collisions += refresh_collisions;
        self.refreshes_started += refreshes_started;
        self.refreshes_completed += refreshes_completed;
        self.proofs_accepted += proofs_accepted;
        self.punishments += punishments;
        self.sectors_corrupted += sectors_corrupted;
        self.files_lost += files_lost;
        self.value_lost += *value_lost;
        self.compensation_paid += *compensation_paid;
        self.compensation_shortfall += *compensation_shortfall;
        self.proofs_audited += proofs_audited;
    }
}

/// The FileInsurer consensus engine.
///
/// # Example
///
/// ```
/// use fi_core::engine::Engine;
/// use fi_core::params::ProtocolParams;
/// use fi_chain::account::{AccountId, TokenAmount};
///
/// let mut params = ProtocolParams::default();
/// params.k = 2; // 2 replicas per minValue file in this tiny demo
/// let mut engine = Engine::new(params).unwrap();
///
/// let provider = AccountId(100);
/// let client = AccountId(200);
/// engine.fund(provider, TokenAmount(1_000_000_000));
/// engine.fund(client, TokenAmount(1_000_000));
///
/// let sector = engine.sector_register(provider, 640).unwrap();
/// let root = fi_crypto::sha256(b"my file");
/// let file = engine
///     .file_add(client, 10, engine.params().min_value, root)
///     .unwrap();
///
/// // The provider confirms both replicas, then time advances past the
/// // transfer window and Auto_CheckAlloc finalises the placement.
/// for (idx, s) in engine.pending_confirms(file) {
///     assert_eq!(s, sector);
///     engine.file_confirm(provider, file, idx, s).unwrap();
/// }
/// let deadline = engine.now() + engine.params().transfer_window(10);
/// engine.advance_to(deadline);
/// assert!(engine.file(file).is_some());
///
/// // Every action above went through the typed op layer:
/// assert!(engine.op_log().iter().any(|r| r.op.kind() == "op.file_add"));
/// ```
#[derive(Debug, Clone)]
pub struct Engine {
    params: ProtocolParams,
    chain: BlockChain,
    ledger: Ledger,
    gas: GasSchedule,
    /// The per-file core, partitioned by `FileId % shards`: descriptors,
    /// allocation rows, discard reasons, task wheels, per-shard stats.
    shards: ShardedState,
    sectors: HashMap<SectorId, Sector>,
    cr: HashMap<SectorId, CrAccounting>,
    /// `(file, index)` pairs touching each sector (as holder or as
    /// reservation target). Kept consistent with the shards' alloc tables.
    sector_replicas: HashMap<SectorId, BTreeSet<(FileId, u32)>>,
    sampler: WeightedSampler<SectorId>,
    rng: DetRng,
    next_file_id: u64,
    next_sector_id: u64,
    events: Vec<ProtocolEvent>,
    /// Sector-attributable counters with no file context; merged with the
    /// per-shard stats by [`Engine::stats`].
    stats_global: EngineStats,
    op_counter: u64,
    /// Total ops ever applied — survives [`Engine::checkpoint`] op-log
    /// truncation, so it (not `op_log.len()`) feeds `seq` and the state
    /// root.
    ops_applied: u64,
    /// Global schedule sequence — the shard-count-invariant merge key for
    /// the commit phase (assigned in apply order).
    task_seq: u64,
    /// Running commitment over every verification digest — the
    /// `Auto_CheckProof` verify-phase digests and the `File_Prove`
    /// modeled-WindowPoSt digests — folded in commit order. Part of the
    /// state root: asserting root equality across shard counts and
    /// ingest paths pins the parallel verification results bit-for-bit.
    audit_root: Hash256,
    op_log: Vec<OpRecord>,
    last_checkpoint: Option<Checkpoint>,
}

/// A compact commitment to engine state at a block height, taken by
/// [`Engine::checkpoint`] when the op log is truncated. A later
/// [`Engine::replay_from`] validates its base engine against this before
/// replaying the post-checkpoint suffix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// Chain height at the checkpoint.
    pub height: u64,
    /// Consensus time at the checkpoint.
    pub at: Time,
    /// `state_root()` at the checkpoint.
    pub state_root: Hash256,
    /// Ops applied up to the checkpoint (the `seq` of the next op).
    pub ops_applied: u64,
}

impl Engine {
    /// Creates an engine with validated parameters at time 0.
    ///
    /// # Errors
    ///
    /// Returns the first violated parameter constraint.
    pub fn new(params: ProtocolParams) -> Result<Self, ParamError> {
        params.validate()?;
        let chain = BlockChain::new(params.seed, params.block_interval);
        let rng = chain.beacon().rng_at(0, "fileinsurer/engine");
        let mut engine = Engine {
            chain,
            ledger: Ledger::new(),
            gas: GasSchedule::default(),
            shards: ShardedState::new(params.shards, params.scheduler, params.block_interval),
            sectors: HashMap::new(),
            cr: HashMap::new(),
            sector_replicas: HashMap::new(),
            sampler: WeightedSampler::new(),
            rng,
            next_file_id: 0,
            next_sector_id: 0,
            events: Vec::new(),
            stats_global: EngineStats::default(),
            op_counter: 0,
            ops_applied: 0,
            task_seq: 0,
            audit_root: Hash256::ZERO,
            op_log: Vec::new(),
            last_checkpoint: None,
            params,
        };
        let period = engine.rent_period();
        engine.schedule_task(period, Task::DistributeRent);
        Ok(engine)
    }

    // ------------------------------------------------------------------
    // The typed transaction layer
    // ------------------------------------------------------------------

    /// Applies one typed protocol op — the single front door for every
    /// state transition. The op and its receipt are committed into the
    /// open block's batch and the op is appended to the replayable log,
    /// whether it succeeded or not (failed requests still burn gas).
    ///
    /// # Errors
    ///
    /// The same errors the corresponding request handler reports (see each
    /// [`Op`] variant's wrapper method).
    pub fn apply(&mut self, op: Op) -> Result<Receipt, EngineError> {
        let op_digest = op.digest();
        self.apply_prehashed(op, op_digest)
    }

    /// [`Engine::apply`] with the op's canonical digest precomputed.
    /// [`Engine::apply_batch`] hashes a block's barrier ops in one
    /// multi-lane sweep ([`Op::digest_many`]) and commits each through
    /// here; the digest MUST be `op.digest()` or the block commitment
    /// diverges from replay.
    fn apply_prehashed(&mut self, op: Op, op_digest: Hash256) -> Result<Receipt, EngineError> {
        let at = self.now();
        let result = self.dispatch(&op);
        let receipt_digest = match &result {
            Ok(receipt) => receipt.digest(),
            Err(err) => Receipt::error_digest(err),
        };
        self.chain.log_op(op_digest, receipt_digest);
        self.op_log.push(OpRecord {
            seq: self.ops_applied,
            at,
            op,
            ok: result.is_ok(),
        });
        self.ops_applied += 1;
        result
    }

    fn dispatch(&mut self, op: &Op) -> Result<Receipt, EngineError> {
        match op {
            Op::SectorRegister { owner, capacity } => self
                .sector_register_op(*owner, *capacity)
                .map(|sector| Receipt::SectorRegistered { sector }),
            Op::SectorDisable { caller, sector } => self
                .sector_disable_op(*caller, *sector)
                .map(|()| Receipt::SectorDisabled { sector: *sector }),
            Op::FileAdd {
                client,
                size,
                value,
                merkle_root,
            } => self
                .file_add_op(*client, *size, *value, *merkle_root)
                .map(|(file, cp)| Receipt::FileAdded { file, cp }),
            // The five shard-local ops share one staged executor with the
            // batch-ingest path (`engine/batch.rs`): sequential dispatch is
            // staging against live state plus an immediate commit.
            Op::FileConfirm { .. }
            | Op::FileProve { .. }
            | Op::FileGet { .. }
            | Op::FileDiscard { .. }
            | Op::ForceDiscard { .. } => self.apply_shard_local(op),
            Op::Fund { account, amount } => {
                self.ledger.mint(*account, *amount);
                Ok(Receipt::Balance {
                    account: *account,
                    balance: self.ledger.balance(*account),
                })
            }
            Op::Burn { account, amount } => {
                self.ledger
                    .burn(*account, *amount)
                    .map_err(|_| EngineError::InsufficientFunds)?;
                Ok(Receipt::Balance {
                    account: *account,
                    balance: self.ledger.balance(*account),
                })
            }
            Op::FailSector { sector } => {
                self.fail_sector_op(*sector);
                Ok(Receipt::Faulted { sector: *sector })
            }
            Op::CorruptSector { sector } => {
                self.corrupt_sector_op(*sector);
                Ok(Receipt::Faulted { sector: *sector })
            }
            Op::AdvanceTo { target } => {
                self.advance_to_op(*target);
                Ok(Receipt::TimeAdvanced {
                    now: self.now(),
                    height: self.chain.height(),
                })
            }
        }
    }

    /// Applies a whole block batch of ops through the pipelined ingest
    /// path, returning one result per op in submission order.
    ///
    /// The batch is split into segments of consecutive **shard-local** ops
    /// (`File_Confirm` / `File_Prove` / `File_Get` / `File_Discard` /
    /// `ForceDiscard`) separated by **barrier** ops (sector admin,
    /// `File_Add`, funds, fault injection, `AdvanceTo` — anything touching
    /// global state beyond the ledger). Segments of at least 64 ops on a
    /// multi-shard, multi-thread engine are *staged* concurrently — up to
    /// [`ProtocolParams::ingest_threads`] scoped workers, one shard's ops
    /// per overlay — and then *committed* sequentially in submission
    /// order; smaller segments and barriers go through [`Engine::apply`]
    /// directly.
    ///
    /// Consensus state after `apply_batch(ops)` is **bit-identical** to
    /// `for op in ops { engine.apply(op); }` at every
    /// `(shards, ingest_threads)` combination: same state root, same
    /// receipts, same block hashes, same op log (see DESIGN.md §10 and the
    /// randomized equivalence tests in `tests/batch_ingest.rs`).
    pub fn apply_batch(&mut self, ops: Vec<Op>) -> Vec<Result<Receipt, EngineError>> {
        // Pre-stage the barrier ops' canonical digests in one multi-lane
        // sweep; the segments' op digests are batched inside the staging
        // workers. Consumed in submission order below.
        let barriers: Vec<&Op> = ops
            .iter()
            .filter(|op| shard_local_file(op).is_none())
            .collect();
        let mut barrier_digests = Op::digest_many(&barriers).into_iter();
        let mut results = Vec::with_capacity(ops.len());
        let mut segment: Vec<Op> = Vec::new();
        for op in ops {
            if shard_local_file(&op).is_some() {
                segment.push(op);
            } else {
                self.commit_segment(&mut segment, &mut results);
                let digest = barrier_digests
                    .next()
                    .expect("one pre-staged digest per barrier op");
                results.push(self.apply_prehashed(op, digest));
            }
        }
        self.commit_segment(&mut segment, &mut results);
        results
    }

    /// Drains one pipeline segment: stages it in parallel when large
    /// enough to pay for the fan-out, then commits in submission order.
    /// Ops whose staged ledger assumptions no longer hold — or that target
    /// a shard already invalidated this segment — re-execute sequentially,
    /// which preserves bit-identical semantics in every interleaving.
    fn commit_segment(
        &mut self,
        segment: &mut Vec<Op>,
        results: &mut Vec<Result<Receipt, EngineError>>,
    ) {
        let ops = std::mem::take(segment);
        if ops.is_empty() {
            return;
        }
        if ops.len() < PARALLEL_INGEST_THRESHOLD
            || self.params.ingest_threads <= 1
            || self.shards.shards.len() <= 1
        {
            for op in ops {
                results.push(self.apply(op));
            }
            return;
        }
        let staged = self.stage_segment(&ops);
        let mut dirty = vec![false; self.shards.shards.len()];
        for (op, staged_op) in ops.into_iter().zip(staged) {
            let file = shard_local_file(&op).expect("segment holds shard-local ops");
            let shard_idx = self.shards.shard_of(file);
            if !dirty[shard_idx] && ledger_steps_match(&self.ledger, &staged_op.effects.ledger) {
                let at = self.now();
                let outcome = self.apply_effects(shard_idx, staged_op.effects);
                self.chain
                    .log_op(staged_op.op_digest, staged_op.receipt_digest);
                self.op_log.push(OpRecord {
                    seq: self.ops_applied,
                    at,
                    op,
                    ok: outcome.is_ok(),
                });
                self.ops_applied += 1;
                results.push(outcome);
            } else {
                // A same-segment op moved money past a threshold this op's
                // staging assumed; its overlay (and every later staged op
                // on this shard) is stale. Fall back to sequential apply.
                dirty[shard_idx] = true;
                results.push(self.apply(op));
            }
        }
    }

    /// The op log: every applied op in order, successes and failures alike.
    pub fn op_log(&self) -> &[OpRecord] {
        &self.op_log
    }

    /// Rebuilds an engine by replaying an op log against fresh state. With
    /// the same `params`, the result matches the original engine exactly —
    /// same `state_root()`, same block hashes at every height (the replay
    /// determinism tests assert this over random workloads).
    ///
    /// # Errors
    ///
    /// Returns the first violated parameter constraint. Individual op
    /// failures are *expected* to recur (failed ops are logged too); in
    /// debug builds a divergence between logged and replayed outcomes
    /// panics.
    pub fn replay(params: ProtocolParams, log: &[OpRecord]) -> Result<Engine, ParamError> {
        let mut engine = Engine::new(params)?;
        engine.replay_records(log);
        Ok(engine)
    }

    /// Bounds op-log growth: records a [`Checkpoint`] of the current
    /// state (height, time, state root, ops applied) and truncates the op
    /// log. `state_root()` is unchanged by checkpointing — it commits to
    /// [`Checkpoint::ops_applied`], not the log length — so checkpoints
    /// are invisible to consensus.
    ///
    /// To later reconstruct state past the checkpoint, keep a clone of
    /// the engine (or a restored snapshot) from this moment and feed it
    /// to [`Engine::replay_from`] together with the post-checkpoint log.
    pub fn checkpoint(&mut self) -> Checkpoint {
        let cp = Checkpoint {
            height: self.chain.height(),
            at: self.now(),
            state_root: self.state_root(),
            ops_applied: self.ops_applied,
        };
        self.op_log.clear();
        self.last_checkpoint = Some(cp.clone());
        cp
    }

    /// The most recent [`Engine::checkpoint`], if any.
    pub fn last_checkpoint(&self) -> Option<&Checkpoint> {
        self.last_checkpoint.as_ref()
    }

    /// Rebuilds an engine from a checkpoint base instead of genesis: clones
    /// `base` (an engine snapshot taken at the checkpoint), verifies it
    /// against the checkpoint commitment, and replays the post-checkpoint
    /// `log` suffix. With the suffix an engine logged after
    /// [`Engine::checkpoint`], the result matches that engine exactly —
    /// same `state_root()`, same chain head (the replay-from-checkpoint
    /// determinism test asserts this over random workloads).
    ///
    /// # Errors
    ///
    /// [`EngineError::InvalidState`] when `base` does not match the
    /// checkpoint (wrong state root, height, or op count).
    pub fn replay_from(
        base: &Engine,
        checkpoint: &Checkpoint,
        log: &[OpRecord],
    ) -> Result<Engine, EngineError> {
        if base.state_root() != checkpoint.state_root
            || base.chain.height() != checkpoint.height
            || base.ops_applied != checkpoint.ops_applied
        {
            return Err(EngineError::InvalidState(
                "base engine does not match the checkpoint commitment",
            ));
        }
        let mut engine = base.clone();
        // Mirror the truncation the checkpointing engine performed, so the
        // rebuilt op log equals the original's post-checkpoint log.
        engine.op_log.clear();
        engine.last_checkpoint = Some(checkpoint.clone());
        engine.replay_records(log);
        Ok(engine)
    }

    fn replay_records(&mut self, log: &[OpRecord]) {
        for record in log {
            let outcome = self.apply(record.op.clone());
            debug_assert_eq!(
                outcome.is_ok(),
                record.ok,
                "replay diverged at op #{} ({})",
                record.seq,
                record.op.kind()
            );
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// Current consensus time.
    pub fn now(&self) -> Time {
        self.chain.now()
    }

    /// The protocol parameters.
    pub fn params(&self) -> &ProtocolParams {
        &self.params
    }

    /// The token ledger.
    pub fn ledger(&self) -> &Ledger {
        &self.ledger
    }

    /// The underlying chain.
    pub fn chain(&self) -> &BlockChain {
        &self.chain
    }

    /// Counters for tests and experiments: the merge of the engine's
    /// global (sector-attributable) counters with every shard's slice.
    /// The merged totals are identical at every shard count.
    pub fn stats(&self) -> EngineStats {
        let mut merged = self.stats_global.clone();
        for shard in &self.shards.shards {
            merged.merge(&shard.stats);
        }
        merged
    }

    /// The configured shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.shards.len()
    }

    /// A file descriptor, if the file is live.
    pub fn file(&self, id: FileId) -> Option<&FileDescriptor> {
        self.shards.file(id)
    }

    /// A sector, if registered and not removed.
    pub fn sector(&self, id: SectorId) -> Option<&Sector> {
        self.sectors.get(&id)
    }

    /// DRep accounting for a sector.
    pub fn cr_accounting(&self, id: SectorId) -> Option<&CrAccounting> {
        self.cr.get(&id)
    }

    /// An allocation entry.
    pub fn alloc_entry(&self, file: FileId, index: u32) -> Option<&AllocEntry> {
        self.shards.entry(file, index)
    }

    /// Live files (ids).
    pub fn file_ids(&self) -> Vec<FileId> {
        self.shards.file_ids()
    }

    /// Scheduled `Auto_*` tasks across all shard wheels.
    pub fn pending_task_count(&self) -> usize {
        self.shards.pending_len()
    }

    /// Live sectors (ids).
    pub fn sector_ids(&self) -> Vec<SectorId> {
        let mut ids: Vec<_> = self.sectors.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Protocol events logged so far (in order).
    pub fn events(&self) -> &[ProtocolEvent] {
        &self.events
    }

    /// Removes and returns the logged events.
    pub fn drain_events(&mut self) -> Vec<ProtocolEvent> {
        std::mem::take(&mut self.events)
    }

    /// Sum of deposits currently pledged by live sectors.
    pub fn total_pledged_deposits(&self) -> TokenAmount {
        self.sectors.values().map(|s| s.deposit).sum()
    }

    /// A commitment over the engine state, folded into sealed blocks.
    ///
    /// Every input is shard-count-invariant (the audit root is folded in
    /// canonical commit order; op and task counters follow global apply
    /// order), so engines differing only in `ProtocolParams::shards`
    /// produce identical roots — asserted at scale by the sharding tests
    /// and the `engine_snapshot` bench. Checkpoint truncation is likewise
    /// invisible: the root commits to the monotonic ops-applied counter,
    /// not the op log's length.
    pub fn state_root(&self) -> Hash256 {
        keyed_hash(
            "fileinsurer/state",
            &[
                &self.chain.now().to_be_bytes(),
                &(self.shards.files_len() as u64).to_be_bytes(),
                &(self.sectors.len() as u64).to_be_bytes(),
                &self.ledger.total_supply().0.to_be_bytes(),
                &self.op_counter.to_be_bytes(),
                &self.ops_applied.to_be_bytes(),
                &self.task_seq.to_be_bytes(),
                self.audit_root.as_bytes(),
            ],
        )
    }

    /// Replaces the gas fee schedule (e.g. [`GasSchedule::free`] for
    /// experiments isolating protocol money flows from gas noise).
    ///
    /// This is deployment configuration, not a transaction: it is not
    /// logged, so replays of an engine with a non-default schedule must
    /// set the same schedule before feeding the log.
    pub fn set_gas_schedule(&mut self, schedule: GasSchedule) {
        self.gas = schedule;
    }

    // ------------------------------------------------------------------
    // Time
    // ------------------------------------------------------------------

    /// Advances consensus time to `target`, executing every `Auto_*` task
    /// that falls due, in timestamp order.
    ///
    /// # Panics
    ///
    /// Panics if `target` is in the past.
    pub fn advance_to(&mut self, target: Time) {
        self.apply(Op::AdvanceTo { target })
            .expect("AdvanceTo is infallible");
    }

    /// Advances by one block interval.
    pub fn tick(&mut self) {
        self.advance_to(self.now() + self.params.block_interval);
    }

    pub(super) fn advance_to_op(&mut self, target: Time) {
        assert!(target >= self.now(), "time cannot rewind");
        while let Some(t) = self.shards.next_task_time() {
            if t > target {
                break;
            }
            let root = self.state_root();
            self.chain.advance_time(t, root);
            self.run_due_bucket(t);
        }
        let root = self.state_root();
        self.chain.advance_time(target, root);
    }

    /// Executes every task due at `now` in two phases:
    ///
    /// 1. **verify** — the read-only `Auto_CheckProof` storage-proof
    ///    checks, computed per shard over its popped slice (each touches
    ///    only that shard's files/alloc rows), fanned out with scoped
    ///    threads when the bucket is large enough to pay for them;
    /// 2. **commit** — the per-shard slices merged back into global
    ///    `(time, schedule-seq)` order — exactly the order a single
    ///    unsharded wheel pops — and applied sequentially: audit digests
    ///    fold into `audit_root`, then punishments, rent, refreshes and
    ///    reschedules run as in the unsharded engine.
    ///
    /// Both phases are deterministic and shard-count-invariant, so the
    /// resulting state is bit-identical for any `ProtocolParams::shards`.
    fn run_due_bucket(&mut self, now: Time) {
        let slices = self.shards.pop_due(now);
        let audits = self.verify_bucket(&slices, now);

        let mut batch: Vec<(Time, u64, Task, Option<ProofAudit>)> = Vec::new();
        for (slice, shard_audits) in slices.into_iter().zip(audits) {
            for ((time, (seq, task)), audit) in slice.into_iter().zip(shard_audits) {
                batch.push((time, seq, task, audit));
            }
        }
        batch.sort_by_key(|&(time, seq, _, _)| (time, seq));
        for (_, _, task, audit) in batch {
            self.execute(task, audit);
        }
    }

    fn execute(&mut self, task: Task, audit: Option<ProofAudit>) {
        match task {
            Task::CheckAlloc(f) => self.auto_check_alloc(f),
            Task::CheckProof(f) => self.auto_check_proof(f, audit),
            Task::CheckRefresh(f, i) => self.auto_check_refresh(f, i),
            Task::DistributeRent => self.auto_distribute_rent(),
        }
        self.op_counter += 1;
    }

    // ------------------------------------------------------------------
    // Shared internals
    // ------------------------------------------------------------------

    /// Schedules an `Auto_*` task on its shard's wheel, tagging it with
    /// the global schedule sequence number that later reconstructs the
    /// canonical commit order.
    pub(super) fn schedule_task(&mut self, time: Time, task: Task) {
        let seq = self.task_seq;
        self.task_seq += 1;
        self.shards.schedule(seq, time, task);
    }

    pub(super) fn rent_period(&self) -> Time {
        self.params.proof_cycle * self.params.rent_period_cycles as Time
    }

    pub(super) fn log(&mut self, event: ProtocolEvent) {
        self.chain.log(ChainEvent::new(
            event.kind(),
            format!("{event:?}").into_bytes(),
        ));
        self.events.push(event);
        self.op_counter += 1;
    }

    pub(super) fn charge_gas(
        &mut self,
        account: AccountId,
        ops: &[GasOp],
    ) -> Result<(), EngineError> {
        let gas: u64 = ops.iter().map(|&op| self.gas.price(op)).sum();
        let fee = self.gas.to_tokens(gas);
        self.ledger
            .burn(account, fee)
            .map_err(|_| EngineError::InsufficientFunds)
    }
}
