//! Merkle trees with inclusion proofs.
//!
//! FileInsurer commits to every file with a Merkle root (`f.merkleRoot`,
//! Fig. 1) and the simulated Proof-of-Spacetime answers beacon-derived
//! challenges with Merkle inclusion proofs over sealed replica chunks.
//!
//! Leaves and internal nodes are hashed with distinct domain prefixes so a
//! leaf can never be confused with an internal node (second-preimage
//! hardening). Odd nodes at any level are *promoted* (carried up unchanged),
//! not duplicated, so the tree is well-defined for any leaf count ≥ 1.

use crate::hash::Hash256;
use crate::sha256::{self, Backend, Sha256};

/// Hashes a leaf with domain separation.
pub fn leaf_hash(data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[0x00]);
    h.update(data);
    h.finalize()
}

/// Hashes an internal node with domain separation.
pub fn node_hash(left: &Hash256, right: &Hash256) -> Hash256 {
    let mut h = Sha256::new();
    h.update(&[0x01]);
    h.update(left.as_ref());
    h.update(right.as_ref());
    h.finalize()
}

/// [`leaf_hash`] for a batch of payloads, one SIMD lane per leaf.
pub fn leaf_hash_many(payloads: &[&[u8]]) -> Vec<Hash256> {
    leaf_hash_many_with(sha256::active_backend(), payloads)
}

/// [`leaf_hash_many`] with an explicit backend (differential tests).
pub fn leaf_hash_many_with(backend: Backend, payloads: &[&[u8]]) -> Vec<Hash256> {
    let total: usize = payloads.iter().map(|p| 1 + p.len()).sum();
    let mut buf = Vec::with_capacity(total);
    let mut ranges = Vec::with_capacity(payloads.len());
    for payload in payloads {
        let start = buf.len();
        buf.push(0x00);
        buf.extend_from_slice(payload);
        ranges.push(start..buf.len());
    }
    let messages: Vec<&[u8]> = ranges.iter().map(|r| &buf[r.clone()]).collect();
    sha256::digest_many_with(backend, &messages)
}

/// [`node_hash`] for a batch of sibling pairs, one SIMD lane per pair.
///
/// This is the workhorse of batched tree construction and of
/// [`MerklePathBatch`]: each lane's message is a fixed 65 bytes
/// (`0x01 || left || right`), so every lane stays live for both compression
/// rounds — the ideal shape for the 8-wide kernel.
pub fn node_hash_many(pairs: &[(Hash256, Hash256)]) -> Vec<Hash256> {
    node_hash_many_with(sha256::active_backend(), pairs)
}

/// [`node_hash_many`] with an explicit backend (differential tests).
pub fn node_hash_many_with(backend: Backend, pairs: &[(Hash256, Hash256)]) -> Vec<Hash256> {
    let mut buf = Vec::with_capacity(pairs.len() * 65);
    for (left, right) in pairs {
        buf.push(0x01);
        buf.extend_from_slice(left.as_ref());
        buf.extend_from_slice(right.as_ref());
    }
    let messages: Vec<&[u8]> = buf.chunks_exact(65).collect();
    sha256::digest_many_with(backend, &messages)
}

/// A Merkle tree over a sequence of byte-string leaves.
///
/// The full level structure is retained so that proofs for any leaf can be
/// produced in O(log n) time without re-hashing.
///
/// # Example
///
/// ```
/// use fi_crypto::merkle::MerkleTree;
///
/// let chunks: Vec<Vec<u8>> = (0..10u8).map(|i| vec![i; 8]).collect();
/// let tree = MerkleTree::from_leaves(chunks.iter());
/// let proof = tree.prove(7).unwrap();
/// assert!(proof.verify(&tree.root(), &chunks[7]));
/// assert!(!proof.verify(&tree.root(), b"tampered"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` = leaf hashes, last level = `[root]`.
    levels: Vec<Vec<Hash256>>,
}

impl MerkleTree {
    /// Builds a tree from leaf payloads.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty; an empty commitment is meaningless
    /// in the protocol (files have at least one chunk).
    pub fn from_leaves<I, T>(leaves: I) -> Self
    where
        I: IntoIterator<Item = T>,
        T: AsRef<[u8]>,
    {
        let collected: Vec<T> = leaves.into_iter().collect();
        let refs: Vec<&[u8]> = collected.iter().map(|l| l.as_ref()).collect();
        Self::from_leaf_hashes(leaf_hash_many(&refs))
    }

    /// Builds a tree over a contiguous buffer, one leaf per `chunk_len`
    /// bytes (the final chunk may be shorter).
    ///
    /// This is the zero-copy commitment path for flat shard buffers
    /// (`fi_erasure::ShardSet`): every leaf is hashed directly from a
    /// borrowed sub-slice of `flat`, with no intermediate `Vec` per chunk.
    ///
    /// # Panics
    ///
    /// Panics if `flat` is empty or `chunk_len == 0`.
    pub fn from_flat_chunks(flat: &[u8], chunk_len: usize) -> Self {
        assert!(chunk_len > 0, "chunk length must be positive");
        assert!(!flat.is_empty(), "a Merkle tree needs >= 1 leaf");
        Self::from_leaves(flat.chunks(chunk_len))
    }

    /// One commitment root per equal-length shard laid out back-to-back in
    /// `flat`, each shard hashed in `chunk_len`-byte leaves straight from
    /// the buffer.
    ///
    /// FileInsurer stores each erasure segment as an individual file with
    /// its own `merkleRoot` (§VI-C); this builds all of those commitments in
    /// one pass over the encoded flat buffer without materialising any
    /// per-segment copy.
    ///
    /// # Panics
    ///
    /// Panics if `shard_len == 0`, `chunk_len == 0`, or `flat.len()` is not
    /// a multiple of `shard_len`.
    pub fn shard_roots(flat: &[u8], shard_len: usize, chunk_len: usize) -> Vec<Hash256> {
        assert!(shard_len > 0, "shard length must be positive");
        assert!(chunk_len > 0, "chunk length must be positive");
        assert_eq!(
            flat.len() % shard_len,
            0,
            "flat buffer must divide into shards"
        );
        // Hash every shard's leaves in ONE multi-lane batch (cross-shard
        // lanes are independent), then fold each shard's subtree.
        let refs: Vec<&[u8]> = flat
            .chunks_exact(shard_len)
            .flat_map(|shard| shard.chunks(chunk_len))
            .collect();
        let all_hashes = leaf_hash_many(&refs);
        let leaves_per_shard = shard_len.div_ceil(chunk_len);
        all_hashes
            .chunks(leaves_per_shard)
            .map(|hashes| Self::from_leaf_hashes(hashes.to_vec()).root())
            .collect()
    }

    /// Builds a tree from already-hashed leaves.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_hashes` is empty.
    pub fn from_leaf_hashes(leaf_hashes: Vec<Hash256>) -> Self {
        assert!(!leaf_hashes.is_empty(), "a Merkle tree needs >= 1 leaf");
        let mut levels = vec![leaf_hashes];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            // Every sibling pair of a level is independent: hash the whole
            // level as one multi-lane batch.
            let pairs: Vec<(Hash256, Hash256)> =
                prev.chunks_exact(2).map(|c| (c[0], c[1])).collect();
            let mut next = node_hash_many(&pairs);
            if prev.len() % 2 == 1 {
                // Odd node promoted unchanged.
                next.push(*prev.last().unwrap());
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The root commitment.
    pub fn root(&self) -> Hash256 {
        self.levels.last().unwrap()[0]
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.levels[0].len()
    }

    /// Hash of leaf `index`, if in bounds.
    pub fn leaf(&self, index: usize) -> Option<Hash256> {
        self.levels[0].get(index).copied()
    }

    /// Produces an inclusion proof for leaf `index`.
    ///
    /// Returns `None` if `index` is out of bounds.
    pub fn prove(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.leaf_count() {
            return None;
        }
        let mut siblings = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling_idx = idx ^ 1;
            if sibling_idx < level.len() {
                siblings.push(ProofStep {
                    sibling: level[sibling_idx],
                    sibling_on_left: sibling_idx < idx,
                });
            }
            // When the sibling is missing the node was promoted: no step.
            idx /= 2;
        }
        Some(MerkleProof {
            leaf_index: index,
            steps: siblings,
        })
    }
}

/// One step of a Merkle inclusion proof.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ProofStep {
    sibling: Hash256,
    sibling_on_left: bool,
}

/// An inclusion proof binding a leaf payload to a Merkle root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleProof {
    leaf_index: usize,
    steps: Vec<ProofStep>,
}

impl MerkleProof {
    /// Index of the proven leaf.
    pub fn leaf_index(&self) -> usize {
        self.leaf_index
    }

    /// Proof length in hashes (≈ log2 of the leaf count).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the proof has no steps (single-leaf tree).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Verifies the proof for `payload` against `root`.
    pub fn verify(&self, root: &Hash256, payload: &[u8]) -> bool {
        self.verify_leaf_hash(root, leaf_hash(payload))
    }

    /// Verifies the proof for an already-hashed leaf against `root`.
    pub fn verify_leaf_hash(&self, root: &Hash256, leaf: Hash256) -> bool {
        let mut acc = leaf;
        for step in &self.steps {
            acc = if step.sibling_on_left {
                node_hash(&step.sibling, &acc)
            } else {
                node_hash(&acc, &step.sibling)
            };
        }
        acc == *root
    }
}

/// Verifies many independent Merkle authentication paths in lockstep.
///
/// A single path walk is inherently sequential (each node hash feeds the
/// next), so it cannot be SIMD'd internally — but *across* paths every walk
/// at the same depth is independent. The batch advances all lanes one level
/// at a time, hashing each level's `(left, right)` pairs through
/// [`node_hash_many`]; lanes whose (shorter) proofs are exhausted drop out
/// of later rounds. Results are bit-identical to
/// [`MerkleProof::verify_leaf_hash`] per lane.
///
/// # Example
///
/// ```
/// use fi_crypto::merkle::{leaf_hash, MerklePathBatch, MerkleTree};
///
/// let chunks: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 8]).collect();
/// let tree = MerkleTree::from_leaves(chunks.iter());
/// let proofs: Vec<_> = (0..20).map(|i| tree.prove(i).unwrap()).collect();
///
/// let mut batch = MerklePathBatch::new();
/// for (i, proof) in proofs.iter().enumerate() {
///     batch.push(proof, leaf_hash(&chunks[i]), tree.root());
/// }
/// assert!(batch.verify().iter().all(|&ok| ok));
/// ```
#[derive(Debug, Default)]
pub struct MerklePathBatch<'a> {
    lanes: Vec<BatchLane<'a>>,
}

#[derive(Debug)]
struct BatchLane<'a> {
    steps: &'a [ProofStep],
    acc: Hash256,
    root: Hash256,
}

impl<'a> MerklePathBatch<'a> {
    /// An empty batch.
    pub fn new() -> Self {
        MerklePathBatch { lanes: Vec::new() }
    }

    /// Number of queued lanes.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// `true` when no lane has been pushed.
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    /// Queues one authentication path: `proof` applied to the (already
    /// hashed) `leaf`, to be checked against `root`.
    pub fn push(&mut self, proof: &'a MerkleProof, leaf: Hash256, root: Hash256) {
        self.lanes.push(BatchLane {
            steps: &proof.steps,
            acc: leaf,
            root,
        });
    }

    /// Walks all lanes in lockstep and returns one verdict per lane, in
    /// push order.
    pub fn verify(self) -> Vec<bool> {
        self.verify_with(sha256::active_backend())
    }

    /// [`MerklePathBatch::verify`] with an explicit backend (differential
    /// tests).
    pub fn verify_with(self, backend: Backend) -> Vec<bool> {
        let mut lanes = self.lanes;
        let depth = lanes.iter().map(|l| l.steps.len()).max().unwrap_or(0);
        let mut pairs: Vec<(Hash256, Hash256)> = Vec::with_capacity(lanes.len());
        let mut active: Vec<usize> = Vec::with_capacity(lanes.len());
        for level in 0..depth {
            pairs.clear();
            active.clear();
            for (i, lane) in lanes.iter().enumerate() {
                if let Some(step) = lane.steps.get(level) {
                    active.push(i);
                    pairs.push(if step.sibling_on_left {
                        (step.sibling, lane.acc)
                    } else {
                        (lane.acc, step.sibling)
                    });
                }
            }
            let hashed = node_hash_many_with(backend, &pairs);
            for (k, &i) in active.iter().enumerate() {
                lanes[i].acc = hashed[k];
            }
        }
        lanes.iter().map(|l| l.acc == l.root).collect()
    }

    /// Convenience for the common "verify these payloads against these
    /// proofs" shape: leaf-hashes all payloads in one batch, then verifies
    /// all paths in lockstep. Equivalent to calling [`MerkleProof::verify`]
    /// per item.
    pub fn verify_payloads(items: &[(&MerkleProof, &[u8], Hash256)]) -> Vec<bool> {
        let payload_refs: Vec<&[u8]> = items.iter().map(|(_, payload, _)| *payload).collect();
        let leaves = leaf_hash_many(&payload_refs);
        let mut batch = MerklePathBatch::new();
        for ((proof, _, root), leaf) in items.iter().zip(leaves) {
            batch.push(proof, leaf, *root);
        }
        batch.verify()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunks(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("chunk-{i}").into_bytes()).collect()
    }

    #[test]
    fn single_leaf_tree() {
        let tree = MerkleTree::from_leaves([b"only"]);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.root(), leaf_hash(b"only"));
        let proof = tree.prove(0).unwrap();
        assert!(proof.is_empty());
        assert!(proof.verify(&tree.root(), b"only"));
        assert!(!proof.verify(&tree.root(), b"other"));
    }

    #[test]
    fn proofs_verify_for_all_leaf_counts() {
        for n in 1..=33 {
            let data = chunks(n);
            let tree = MerkleTree::from_leaves(data.iter());
            for (i, leaf) in data.iter().enumerate() {
                let proof = tree.prove(i).unwrap();
                assert!(proof.verify(&tree.root(), leaf), "n={n} i={i}");
            }
        }
    }

    #[test]
    fn wrong_payload_or_index_rejected() {
        let data = chunks(9);
        let tree = MerkleTree::from_leaves(data.iter());
        let proof = tree.prove(3).unwrap();
        assert!(!proof.verify(&tree.root(), &data[4]));
        assert!(tree.prove(9).is_none());
    }

    #[test]
    fn root_changes_with_any_leaf() {
        let data = chunks(8);
        let base = MerkleTree::from_leaves(data.iter()).root();
        for i in 0..8 {
            let mut mutated = data.clone();
            mutated[i].push(b'!');
            assert_ne!(MerkleTree::from_leaves(mutated.iter()).root(), base);
        }
    }

    #[test]
    fn leaf_node_domain_separation() {
        // An internal-node preimage must not validate as a leaf.
        let a = leaf_hash(b"a");
        let b = leaf_hash(b"b");
        let n = node_hash(&a, &b);
        let mut preimage = vec![0x01];
        preimage.extend_from_slice(a.as_ref());
        preimage.extend_from_slice(b.as_ref());
        assert_ne!(leaf_hash(&preimage[1..]), n);
    }

    #[test]
    fn order_matters() {
        let t1 = MerkleTree::from_leaves([b"a", b"b"]);
        let t2 = MerkleTree::from_leaves([b"b", b"a"]);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn flat_chunks_equal_copied_leaves() {
        let flat: Vec<u8> = (0..100u8).collect();
        for chunk in [1usize, 7, 32, 100, 150] {
            let copied: Vec<Vec<u8>> = flat.chunks(chunk).map(|c| c.to_vec()).collect();
            assert_eq!(
                MerkleTree::from_flat_chunks(&flat, chunk).root(),
                MerkleTree::from_leaves(copied.iter()).root(),
                "chunk={chunk}"
            );
        }
    }

    #[test]
    fn batched_hashers_match_scalar() {
        let payloads: Vec<Vec<u8>> = (0..19usize).map(|i| vec![i as u8; i * 7]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let pairs: Vec<(Hash256, Hash256)> = (0..19u8)
            .map(|i| (leaf_hash(&[i]), leaf_hash(&[i, i])))
            .collect();
        for &backend in crate::sha256::available_backends() {
            let leaves = leaf_hash_many_with(backend, &refs);
            for (i, p) in refs.iter().enumerate() {
                assert_eq!(leaves[i], leaf_hash(p), "backend {}", backend.name());
            }
            let nodes = node_hash_many_with(backend, &pairs);
            for (i, (l, r)) in pairs.iter().enumerate() {
                assert_eq!(nodes[i], node_hash(l, r), "backend {}", backend.name());
            }
        }
        assert!(leaf_hash_many(&[]).is_empty());
        assert!(node_hash_many(&[]).is_empty());
    }

    #[test]
    fn path_batch_matches_scalar_verification() {
        // Mixed tree sizes => unequal proof depths => short lanes drop out
        // mid-walk. Every backend must agree with per-proof verification.
        let trees: Vec<(MerkleTree, Vec<Vec<u8>>)> = [1usize, 2, 5, 9, 33]
            .iter()
            .map(|&n| {
                let data = chunks(n);
                (MerkleTree::from_leaves(data.iter()), data)
            })
            .collect();
        let mut items: Vec<(MerkleProof, Vec<u8>, Hash256)> = Vec::new();
        for (tree, data) in &trees {
            for (i, payload) in data.iter().enumerate() {
                items.push((tree.prove(i).unwrap(), payload.clone(), tree.root()));
            }
            // One deliberately corrupted lane per tree.
            items.push((tree.prove(0).unwrap(), b"tampered".to_vec(), tree.root()));
        }
        let expected: Vec<bool> = items
            .iter()
            .map(|(proof, payload, root)| proof.verify(root, payload))
            .collect();
        assert!(expected.iter().any(|&ok| ok));
        assert!(expected.iter().any(|&ok| !ok));
        for &backend in crate::sha256::available_backends() {
            let mut batch = MerklePathBatch::new();
            for (proof, payload, root) in &items {
                batch.push(proof, leaf_hash(payload), *root);
            }
            assert_eq!(
                batch.verify_with(backend),
                expected,
                "backend {}",
                backend.name()
            );
        }
        let borrowed: Vec<(&MerkleProof, &[u8], Hash256)> = items
            .iter()
            .map(|(proof, payload, root)| (proof, payload.as_slice(), *root))
            .collect();
        assert_eq!(MerklePathBatch::verify_payloads(&borrowed), expected);
        assert!(MerklePathBatch::new().verify().is_empty());
    }

    #[test]
    fn shard_roots_match_individual_trees() {
        let flat: Vec<u8> = (0..120u8).collect();
        let roots = MerkleTree::shard_roots(&flat, 40, 16);
        assert_eq!(roots.len(), 3);
        for (i, root) in roots.iter().enumerate() {
            let shard = &flat[i * 40..(i + 1) * 40];
            assert_eq!(
                *root,
                MerkleTree::from_flat_chunks(shard, 16).root(),
                "shard {i}"
            );
        }
        // Distinct shards commit to distinct roots.
        assert_ne!(roots[0], roots[1]);
    }
}
