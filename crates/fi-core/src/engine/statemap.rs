//! The bridge between the engine's in-memory hot-path state and its
//! content-addressed Merkle commitment (DESIGN.md §15).
//!
//! Three pieces:
//!
//! * [`TrackedMap`] — a `HashMap` wrapper that records which keys were
//!   touched by mutation. The engine's request handlers and audit tasks
//!   keep their O(1) map accesses (including the parallel per-shard
//!   `cntdown` write batches, which mutate disjoint `&mut Shard`s
//!   concurrently — dirty marking from `&mut self` is lock-free); the
//!   dirty sets are drained only when a commitment is needed.
//! * leaf codecs — deterministic big-endian encodings of the five
//!   consensus-visible value types (file descriptors, alloc rows,
//!   discard reasons, sectors, DRep accounting), the byte language of
//!   the HAMT leaves and of [`StateProof`](super::StateProof) payloads.
//! * [`StateMaps`] / [`CommitCell`] — the five engine-level HAMTs (one
//!   per logical map, *not* per shard: a per-shard trie forest would bake
//!   the shard count into the root) behind a mutex, so
//!   [`Engine::state_root`](super::Engine::state_root) can sync dirty
//!   keys and flush from `&self`.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::ops::Index;
use std::sync::Mutex;

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::tasks::Time;
use fi_crypto::{keyed_hash, Hash256};
use fi_store::{Blockstore, Hamt, StoreError};

use crate::drep::CrAccounting;
use crate::types::{
    AllocEntry, AllocState, FileDescriptor, FileId, FileState, RemovalReason, Sector, SectorId,
    SectorState,
};

// ----------------------------------------------------------------------
// TrackedMap
// ----------------------------------------------------------------------

/// A `HashMap` that remembers which keys mutation has touched since the
/// last [`TrackedMap::take_dirty`].
///
/// The method set is deliberately the minimal one the engine uses — in
/// particular there is no `values_mut`/`iter_mut`, which could mutate
/// entries without marking them dirty. `get_mut` conservatively marks the
/// key dirty whether or not the caller writes through the reference.
///
/// The dirty set lives behind a `Mutex` only so it can be *drained* from
/// `&self` (the state-root path); every marking happens through
/// `&mut self` via the lock-free `Mutex::get_mut`, so the hot path never
/// contends — which is also what keeps the parallel audit phases safe:
/// jobs own disjoint `&mut Shard`s and never touch a shared lock.
#[derive(Debug, Default)]
pub(super) struct TrackedMap<K, V> {
    map: HashMap<K, V>,
    dirty: Mutex<HashSet<K>>,
}

impl<K: Eq + Hash + Copy, V> TrackedMap<K, V> {
    pub(super) fn new() -> Self {
        TrackedMap {
            map: HashMap::new(),
            dirty: Mutex::new(HashSet::new()),
        }
    }

    #[inline]
    fn mark(&mut self, key: K) {
        self.dirty.get_mut().expect("dirty set lock").insert(key);
    }

    #[inline]
    pub(super) fn get(&self, key: &K) -> Option<&V> {
        self.map.get(key)
    }

    #[inline]
    pub(super) fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        if self.map.contains_key(key) {
            self.mark(*key);
        }
        self.map.get_mut(key)
    }

    pub(super) fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.mark(key);
        self.map.insert(key, value)
    }

    pub(super) fn remove(&mut self, key: &K) -> Option<V> {
        let removed = self.map.remove(key);
        if removed.is_some() {
            self.mark(*key);
        }
        removed
    }

    #[inline]
    pub(super) fn contains_key(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    #[inline]
    pub(super) fn len(&self) -> usize {
        self.map.len()
    }

    pub(super) fn keys(&self) -> impl Iterator<Item = &K> {
        self.map.keys()
    }

    pub(super) fn values(&self) -> impl Iterator<Item = &V> {
        self.map.values()
    }

    pub(super) fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.map.iter()
    }

    /// Drains the dirty-key set (callable from `&self`; the state-root
    /// sync is the only consumer).
    pub(super) fn take_dirty(&self) -> Vec<K> {
        self.dirty.lock().expect("dirty set lock").drain().collect()
    }
}

impl<K: Eq + Hash + Copy, V> Index<&K> for TrackedMap<K, V> {
    type Output = V;

    fn index(&self, key: &K) -> &V {
        &self.map[key]
    }
}

impl<K: Eq + Hash + Copy + Clone, V: Clone> Clone for TrackedMap<K, V> {
    fn clone(&self) -> Self {
        TrackedMap {
            map: self.map.clone(),
            dirty: Mutex::new(self.dirty.lock().expect("dirty set lock").clone()),
        }
    }
}

// ----------------------------------------------------------------------
// Leaf codecs
// ----------------------------------------------------------------------
//
// Deterministic big-endian encodings, field order mirroring the FISNAPSH
// sections so the two serializations stay trivially cross-checkable.
// Decoders are defensive: HAMT leaves read from a store (or carried in a
// proof) are untrusted bytes.

/// A bounds-checked reader over untrusted leaf bytes.
struct Leaf<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Leaf<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Leaf { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.bytes.len() {
            return Err(StoreError::Corrupt("truncated state leaf"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_be_bytes(self.take(4)?.try_into().expect("4B")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn u128(&mut self) -> Result<u128, StoreError> {
        Ok(u128::from_be_bytes(self.take(16)?.try_into().expect("16B")))
    }

    fn i64(&mut self) -> Result<i64, StoreError> {
        Ok(i64::from_be_bytes(self.take(8)?.try_into().expect("8B")))
    }

    fn hash(&mut self) -> Result<Hash256, StoreError> {
        Ok(Hash256::from_bytes(self.take(32)?.try_into().expect("32B")))
    }

    fn opt_u64(&mut self) -> Result<Option<u64>, StoreError> {
        match self.u8()? {
            0 => Ok(None),
            1 => Ok(Some(self.u64()?)),
            _ => Err(StoreError::Corrupt("option tag in state leaf")),
        }
    }

    fn finish(&self) -> Result<(), StoreError> {
        if self.pos != self.bytes.len() {
            return Err(StoreError::Corrupt("trailing bytes in state leaf"));
        }
        Ok(())
    }
}

fn push_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    match v {
        Some(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_be_bytes());
        }
        None => out.push(0),
    }
}

/// HAMT key of a file-keyed map entry.
pub(super) fn key_file(id: FileId) -> [u8; 8] {
    id.0.to_be_bytes()
}

/// HAMT key of an allocation row.
pub(super) fn key_alloc(file: FileId, index: u32) -> [u8; 12] {
    let mut k = [0u8; 12];
    k[..8].copy_from_slice(&file.0.to_be_bytes());
    k[8..].copy_from_slice(&index.to_be_bytes());
    k
}

/// HAMT key of a sector-keyed map entry.
pub(super) fn key_sector(id: SectorId) -> [u8; 8] {
    id.0.to_be_bytes()
}

pub(super) fn enc_file(f: &FileDescriptor) -> Vec<u8> {
    let mut out = Vec::with_capacity(85);
    out.extend_from_slice(&f.id.0.to_be_bytes());
    out.extend_from_slice(&f.owner.0.to_be_bytes());
    out.extend_from_slice(&f.size.to_be_bytes());
    out.extend_from_slice(&f.value.0.to_be_bytes());
    out.extend_from_slice(f.merkle_root.as_bytes());
    out.extend_from_slice(&f.cp.to_be_bytes());
    out.extend_from_slice(&f.cntdown.to_be_bytes());
    out.push(match f.state {
        FileState::Allocating => 0,
        FileState::Normal => 1,
        FileState::Discarded => 2,
    });
    out
}

pub(super) fn dec_file(bytes: &[u8]) -> Result<FileDescriptor, StoreError> {
    let mut l = Leaf::new(bytes);
    let desc = FileDescriptor {
        id: FileId(l.u64()?),
        owner: AccountId(l.u64()?),
        size: l.u64()?,
        value: TokenAmount(l.u128()?),
        merkle_root: l.hash()?,
        cp: l.u32()?,
        cntdown: l.i64()?,
        state: match l.u8()? {
            0 => FileState::Allocating,
            1 => FileState::Normal,
            2 => FileState::Discarded,
            _ => return Err(StoreError::Corrupt("file state tag in state leaf")),
        },
    };
    l.finish()?;
    Ok(desc)
}

pub(super) fn enc_alloc_entry(e: &AllocEntry) -> Vec<u8> {
    let mut out = Vec::with_capacity(28);
    push_opt_u64(&mut out, e.prev.map(|s| s.0));
    push_opt_u64(&mut out, e.next.map(|s| s.0));
    push_opt_u64(&mut out, e.last);
    out.push(match e.state {
        AllocState::Alloc => 0,
        AllocState::Confirm => 1,
        AllocState::Normal => 2,
        AllocState::Corrupted => 3,
    });
    out
}

pub(super) fn dec_alloc_entry(bytes: &[u8]) -> Result<AllocEntry, StoreError> {
    let mut l = Leaf::new(bytes);
    let entry = AllocEntry {
        prev: l.opt_u64()?.map(SectorId),
        next: l.opt_u64()?.map(SectorId),
        last: l.opt_u64()?,
        state: match l.u8()? {
            0 => AllocState::Alloc,
            1 => AllocState::Confirm,
            2 => AllocState::Normal,
            3 => AllocState::Corrupted,
            _ => return Err(StoreError::Corrupt("alloc state tag in state leaf")),
        },
    };
    l.finish()?;
    Ok(entry)
}

pub(super) fn enc_reason(r: RemovalReason) -> Vec<u8> {
    vec![match r {
        RemovalReason::ClientDiscard => 0,
        RemovalReason::InsufficientFunds => 1,
        RemovalReason::UploadFailed => 2,
        RemovalReason::Lost => 3,
    }]
}

pub(super) fn dec_reason(bytes: &[u8]) -> Result<RemovalReason, StoreError> {
    let mut l = Leaf::new(bytes);
    let reason = match l.u8()? {
        0 => RemovalReason::ClientDiscard,
        1 => RemovalReason::InsufficientFunds,
        2 => RemovalReason::UploadFailed,
        3 => RemovalReason::Lost,
        _ => return Err(StoreError::Corrupt("removal reason tag in state leaf")),
    };
    l.finish()?;
    Ok(reason)
}

pub(super) fn enc_sector(s: &Sector) -> Vec<u8> {
    let mut out = Vec::with_capacity(54);
    out.extend_from_slice(&s.id.0.to_be_bytes());
    out.extend_from_slice(&s.owner.0.to_be_bytes());
    out.extend_from_slice(&s.capacity.to_be_bytes());
    out.extend_from_slice(&s.free_cap.to_be_bytes());
    out.push(match s.state {
        SectorState::Normal => 0,
        SectorState::Disabled => 1,
        SectorState::Corrupted => 2,
    });
    out.extend_from_slice(&s.deposit.0.to_be_bytes());
    out.extend_from_slice(&s.replica_count.to_be_bytes());
    out.push(s.physically_failed as u8);
    out
}

pub(super) fn dec_sector(bytes: &[u8]) -> Result<Sector, StoreError> {
    let mut l = Leaf::new(bytes);
    let id = SectorId(l.u64()?);
    let sector = Sector {
        id,
        owner: AccountId(l.u64()?),
        capacity: l.u64()?,
        free_cap: l.u64()?,
        state: match l.u8()? {
            0 => SectorState::Normal,
            1 => SectorState::Disabled,
            2 => SectorState::Corrupted,
            _ => return Err(StoreError::Corrupt("sector state tag in state leaf")),
        },
        deposit: TokenAmount(l.u128()?),
        replica_count: l.u32()?,
        physically_failed: match l.u8()? {
            0 => false,
            1 => true,
            _ => return Err(StoreError::Corrupt("bool tag in state leaf")),
        },
    };
    l.finish()?;
    Ok(sector)
}

pub(super) fn enc_cr(acct: &CrAccounting) -> Vec<u8> {
    let (capacity, cr_size, file_bytes, regenerated, discarded) = acct.snapshot_parts();
    let mut out = Vec::with_capacity(40);
    for v in [capacity, cr_size, file_bytes, regenerated, discarded] {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out
}

pub(super) fn dec_cr(bytes: &[u8]) -> Result<CrAccounting, StoreError> {
    let mut l = Leaf::new(bytes);
    let parts = (l.u64()?, l.u64()?, l.u64()?, l.u64()?, l.u64()?);
    l.finish()?;
    CrAccounting::from_parts(parts).map_err(StoreError::Corrupt)
}

// ----------------------------------------------------------------------
// The commitment maps
// ----------------------------------------------------------------------

/// The scalar fields [`Engine::state_root`](super::Engine::state_root)
/// commits to alongside the map commitment — everything a
/// [`StateProof`](super::StateProof) must carry to let a verifier
/// recompute the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateHeader {
    /// Consensus time.
    pub now: Time,
    /// Live file count.
    pub files_len: u64,
    /// Live sector count.
    pub sectors_len: u64,
    /// Total token supply.
    pub total_supply: u128,
    /// Internal event/task counter.
    pub op_counter: u64,
    /// Ops applied since genesis.
    pub ops_applied: u64,
    /// Global task schedule sequence.
    pub task_seq: u64,
    /// The audit-digest fold.
    pub audit_root: Hash256,
}

/// The five per-map HAMT roots the state commitment folds over, plus the
/// resulting `state_root` — the base-version identity a delta snapshot
/// records and a [`PinnedState`](super::PinnedState) reads through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StateRoots {
    /// `state_root()` at the moment the roots were taken.
    pub state_root: Hash256,
    /// File descriptors (`FileId → FileDescriptor`).
    pub files: Hash256,
    /// Allocation rows (`(FileId, index) → AllocEntry`).
    pub alloc: Hash256,
    /// Pending discard reasons (`FileId → RemovalReason`).
    pub discard: Hash256,
    /// Sectors (`SectorId → Sector`).
    pub sectors: Hash256,
    /// DRep accounting (`SectorId → CrAccounting`).
    pub cr: Hash256,
}

impl StateRoots {
    /// The map roots in canonical fold order.
    pub fn map_roots(&self) -> [Hash256; 5] {
        [self.files, self.alloc, self.discard, self.sectors, self.cr]
    }
}

/// Folds the five map roots into the single map commitment.
pub(super) fn fold_maps_root(roots: &[Hash256; 5]) -> Hash256 {
    keyed_hash(
        "fileinsurer/state-maps",
        &[
            roots[0].as_bytes(),
            roots[1].as_bytes(),
            roots[2].as_bytes(),
            roots[3].as_bytes(),
            roots[4].as_bytes(),
        ],
    )
}

/// Folds the scalar header and the map commitment into `state_root` —
/// the one function both the live engine and proof verifiers use.
pub(super) fn fold_state_root(header: &StateHeader, maps_root: Hash256) -> Hash256 {
    keyed_hash(
        "fileinsurer/state",
        &[
            &header.now.to_be_bytes(),
            &header.files_len.to_be_bytes(),
            &header.sectors_len.to_be_bytes(),
            &header.total_supply.to_be_bytes(),
            &header.op_counter.to_be_bytes(),
            &header.ops_applied.to_be_bytes(),
            &header.task_seq.to_be_bytes(),
            header.audit_root.as_bytes(),
            maps_root.as_bytes(),
        ],
    )
}

/// The five engine-level HAMTs. Engine-level, not per-shard, on purpose:
/// per-shard tries would make the commitment a function of
/// `ProtocolParams::shards`, breaking the shard-count invariance of
/// `state_root` (DESIGN.md §15).
#[derive(Debug, Clone, Default)]
pub(super) struct StateMaps {
    pub(super) files: Hamt,
    pub(super) alloc: Hamt,
    pub(super) discard: Hamt,
    pub(super) sectors: Hamt,
    pub(super) cr: Hamt,
}

impl StateMaps {
    /// Flushes all five maps and returns their roots in fold order.
    pub(super) fn flush(&mut self, store: &dyn Blockstore) -> Result<[Hash256; 5], StoreError> {
        Ok([
            self.files.flush(store)?,
            self.alloc.flush(store)?,
            self.discard.flush(store)?,
            self.sectors.flush(store)?,
            self.cr.flush(store)?,
        ])
    }
}

/// [`StateMaps`] behind a mutex, so the commitment can be synced and
/// flushed from `&Engine` (the state root is read in contexts that only
/// hold a shared borrow). Never contended: the engine is externally
/// synchronized for mutation, and parallel phases never touch the cell.
#[derive(Debug, Default)]
pub(super) struct CommitCell(Mutex<StateMaps>);

impl CommitCell {
    pub(super) fn new() -> Self {
        CommitCell::default()
    }

    pub(super) fn lock(&self) -> std::sync::MutexGuard<'_, StateMaps> {
        self.0.lock().expect("state commitment lock")
    }
}

impl Clone for CommitCell {
    fn clone(&self) -> Self {
        CommitCell(Mutex::new(self.lock().clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracked_map_marks_mutations() {
        let mut m: TrackedMap<u64, String> = TrackedMap::new();
        assert!(m.take_dirty().is_empty());
        m.insert(1, "a".into());
        m.insert(2, "b".into());
        let mut d = m.take_dirty();
        d.sort_unstable();
        assert_eq!(d, vec![1, 2]);
        assert!(m.take_dirty().is_empty(), "drained");

        // Reads don't mark.
        assert_eq!(m.get(&1).map(String::as_str), Some("a"));
        assert!(m.contains_key(&2));
        assert_eq!(m.len(), 2);
        assert_eq!(m[&1], "a");
        assert!(m.take_dirty().is_empty());

        // get_mut marks (even without a write), remove marks only hits.
        m.get_mut(&1).unwrap().push('x');
        assert!(m.get_mut(&99).is_none());
        m.remove(&2);
        m.remove(&98);
        let mut d = m.take_dirty();
        d.sort_unstable();
        assert_eq!(d, vec![1, 2]);

        // Clones carry their own dirty set.
        m.insert(5, "e".into());
        let clone = m.clone();
        assert_eq!(clone.take_dirty(), vec![5]);
        assert_eq!(m.take_dirty(), vec![5]);
    }

    #[test]
    fn leaf_codecs_roundtrip_and_reject_damage() {
        let desc = FileDescriptor {
            id: FileId(7),
            owner: AccountId(42),
            size: 1234,
            value: TokenAmount(5_000_000),
            merkle_root: fi_crypto::sha256(b"content"),
            cp: 5,
            cntdown: -3,
            state: FileState::Normal,
        };
        let bytes = enc_file(&desc);
        let back = dec_file(&bytes).unwrap();
        assert_eq!(format!("{desc:?}"), format!("{back:?}"));
        assert!(dec_file(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(dec_file(&extra).is_err());
        let mut bad_tag = bytes.clone();
        *bad_tag.last_mut().unwrap() = 9;
        assert!(dec_file(&bad_tag).is_err());

        let entry = AllocEntry {
            prev: Some(SectorId(3)),
            next: None,
            last: Some(99),
            state: AllocState::Confirm,
        };
        let bytes = enc_alloc_entry(&entry);
        let back = dec_alloc_entry(&bytes).unwrap();
        assert_eq!(format!("{entry:?}"), format!("{back:?}"));
        assert!(dec_alloc_entry(&bytes[..2]).is_err());

        for reason in [
            RemovalReason::ClientDiscard,
            RemovalReason::InsufficientFunds,
            RemovalReason::UploadFailed,
            RemovalReason::Lost,
        ] {
            assert_eq!(dec_reason(&enc_reason(reason)).unwrap(), reason);
        }
        assert!(dec_reason(&[7]).is_err());
        assert!(dec_reason(&[]).is_err());

        let sector = Sector {
            id: SectorId(11),
            owner: AccountId(9),
            capacity: 640,
            free_cap: 320,
            state: SectorState::Disabled,
            deposit: TokenAmount(77),
            replica_count: 4,
            physically_failed: true,
        };
        let bytes = enc_sector(&sector);
        let back = dec_sector(&bytes).unwrap();
        assert_eq!(format!("{sector:?}"), format!("{back:?}"));
        let mut bad_bool = bytes.clone();
        *bad_bool.last_mut().unwrap() = 2;
        assert!(dec_sector(&bad_bool).is_err());

        let cr = CrAccounting::from_parts((100, 10, 40, 3, 5)).unwrap();
        let bytes = enc_cr(&cr);
        assert_eq!(
            dec_cr(&bytes).unwrap().snapshot_parts(),
            cr.snapshot_parts()
        );
        // Constructor invariants are enforced on decode too.
        let bad = enc_cr(&cr)
            .iter()
            .enumerate()
            .map(|(i, &b)| if i < 8 { 0 } else { b })
            .collect::<Vec<_>>();
        assert!(dec_cr(&bad).is_err(), "cr_size > capacity rejected");
    }

    #[test]
    fn key_encodings_are_disjoint_and_ordered() {
        assert_eq!(key_file(FileId(0x0102)), 0x0102u64.to_be_bytes());
        let k = key_alloc(FileId(1), 2);
        assert_eq!(&k[..8], &1u64.to_be_bytes());
        assert_eq!(&k[8..], &2u32.to_be_bytes());
        assert_eq!(key_sector(SectorId(5)), 5u64.to_be_bytes());
    }
}
