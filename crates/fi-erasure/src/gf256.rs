//! The Galois field GF(2^8) with the AES reduction polynomial.
//!
//! Elements are bytes; addition is XOR; multiplication is polynomial
//! multiplication modulo `x^8 + x^4 + x^3 + x + 1` (0x11B). Multiplication
//! and division go through log/antilog tables with generator `0x03`, the
//! standard construction.

/// Precomputed log/antilog tables for GF(2^8).
///
/// Construct once (cheap: 255 field multiplications) and share. All
/// arithmetic on field elements is then table lookups.
///
/// # Example
///
/// ```
/// use fi_erasure::Gf256;
/// let gf = Gf256::new();
/// let a = 0x57;
/// let b = 0x83;
/// let prod = gf.mul(a, b);
/// assert_eq!(prod, 0xc1); // AES reference value
/// assert_eq!(gf.div(prod, b), a);
/// ```
#[derive(Debug, Clone)]
pub struct Gf256 {
    /// `exp[i] = g^i` for generator g = 0x03; doubled length avoids a mod.
    exp: [u8; 512],
    /// `log[x]` for x != 0; `log[0]` is unused.
    log: [u16; 256],
}

impl Default for Gf256 {
    fn default() -> Self {
        Self::new()
    }
}

/// Carry-less multiply modulo 0x11B, used only to build the tables.
fn slow_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1B; // reduce by x^8 + x^4 + x^3 + x + 1
        }
        b >>= 1;
    }
    acc
}

impl Gf256 {
    /// Builds the log/antilog tables.
    pub fn new() -> Self {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x = 1u8;
        for i in 0..255 {
            exp[i] = x;
            log[x as usize] = i as u16;
            x = slow_mul(x, 0x03);
        }
        debug_assert_eq!(x, 1, "generator order must be 255");
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Gf256 { exp, log }
    }

    /// Field addition (= subtraction = XOR).
    #[inline(always)]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication.
    #[inline(always)]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Field division.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline(always)]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(256)");
        if a == 0 {
            0
        } else {
            self.exp[255 + self.log[a as usize] as usize - self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline(always)]
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "zero has no inverse in GF(256)");
        self.exp[255 - self.log[a as usize] as usize]
    }

    /// `a^n` by table arithmetic.
    pub fn pow(&self, a: u8, n: u32) -> u8 {
        if n == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        let e = (self.log[a as usize] as u64 * n as u64) % 255;
        self.exp[e as usize]
    }

    /// In-place `dst ^= coeff * src` over byte slices — the inner loop of
    /// Reed–Solomon encoding.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_acc(&self, dst: &mut [u8], src: &[u8], coeff: u8) {
        assert_eq!(dst.len(), src.len(), "length mismatch");
        if coeff == 0 {
            return;
        }
        if coeff == 1 {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= s;
            }
            return;
        }
        let log_c = self.log[coeff as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            if *s != 0 {
                *d ^= self.exp[log_c + self.log[*s as usize] as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_reference_product() {
        let gf = Gf256::new();
        assert_eq!(gf.mul(0x57, 0x83), 0xc1);
        assert_eq!(gf.mul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn field_axioms_exhaustive_spot() {
        let gf = Gf256::new();
        // Identity, zero, commutativity & associativity on a grid.
        for a in (0u16..256).step_by(7) {
            let a = a as u8;
            assert_eq!(gf.mul(a, 1), a);
            assert_eq!(gf.mul(a, 0), 0);
            for b in (0u16..256).step_by(11) {
                let b = b as u8;
                assert_eq!(gf.mul(a, b), gf.mul(b, a));
                for c in (0u16..256).step_by(29) {
                    let c = c as u8;
                    assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
                    // Distributivity.
                    assert_eq!(gf.mul(a, b ^ c), gf.mul(a, b) ^ gf.mul(a, c));
                }
            }
        }
    }

    #[test]
    fn every_nonzero_element_invertible() {
        let gf = Gf256::new();
        for a in 1..=255u8 {
            let inv = gf.inv(a);
            assert_eq!(gf.mul(a, inv), 1, "a={a}");
            assert_eq!(gf.div(1, a), inv);
            assert_eq!(gf.div(a, a), 1);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = Gf256::new();
        for a in [0u8, 1, 2, 3, 0x53, 0xFF] {
            let mut acc = 1u8;
            for n in 0..20u32 {
                assert_eq!(gf.pow(a, n), acc, "a={a} n={n}");
                acc = gf.mul(acc, a);
            }
        }
        assert_eq!(gf.pow(0, 0), 1); // convention 0^0 = 1
    }

    #[test]
    fn mul_acc_matches_scalar_loop() {
        let gf = Gf256::new();
        let src: Vec<u8> = (0..=255).collect();
        for coeff in [0u8, 1, 2, 0x1D, 0xFF] {
            let mut dst = vec![0xAAu8; 256];
            let mut expect = dst.clone();
            gf.mul_acc(&mut dst, &src, coeff);
            for (e, s) in expect.iter_mut().zip(&src) {
                *e ^= gf.mul(coeff, *s);
            }
            assert_eq!(dst, expect, "coeff={coeff}");
        }
    }
}
