//! Engine behaviour tests: one scenario per protocol rule of Figs. 4–9,
//! plus cross-cutting invariants (space accounting, money conservation).

use fi_chain::account::{AccountId, TokenAmount};
use fi_crypto::sha256;

use crate::engine::{Engine, EngineError, StateView, COMPENSATION_POOL, DEPOSIT_ESCROW};
use crate::params::ProtocolParams;
use crate::types::{AllocState, FileState, ProtocolEvent, RemovalReason, SectorState};
use crate::{FileId, SectorId};

const PROVIDER: AccountId = AccountId(100);
const PROVIDER2: AccountId = AccountId(101);
const CLIENT: AccountId = AccountId(200);

/// Test parameters: k=3 replicas per minValue file, generous windows.
fn test_params() -> ProtocolParams {
    ProtocolParams {
        k: 3,
        delay_per_size: 6,
        avg_refresh: 8.0,
        ..ProtocolParams::default()
    }
}

fn engine_with(params: ProtocolParams) -> Engine {
    let mut e = Engine::new(params).unwrap();
    e.fund(PROVIDER, TokenAmount(1_000_000_000));
    e.fund(PROVIDER2, TokenAmount(1_000_000_000));
    e.fund(CLIENT, TokenAmount(100_000_000));
    e
}

fn engine() -> Engine {
    engine_with(test_params())
}

/// Advances to `until`, letting honest providers confirm and prove every
/// 50 ticks (inside every transfer window and proof-due window).
fn run_honest(e: &mut Engine, until: u64) {
    while e.now() < until {
        e.honest_providers_act();
        let next = (e.now() + 50).min(until);
        e.advance_to(next);
    }
    e.honest_providers_act();
}

/// Checks the space-accounting invariants the engine must preserve:
/// per-sector `free_cap`/`replica_count` equal the allocation table's view,
/// and DRep unsealed space stays below one CR.
fn check_space_invariants(e: &Engine) {
    for sid in e.sector_ids() {
        let sector = e.sector(sid).unwrap();
        if sector.state == SectorState::Corrupted {
            continue;
        }
        let mut used = 0u64;
        let mut count = 0u32;
        for f in e.file_ids() {
            let desc = e.file(f).unwrap();
            for i in 0..desc.cp {
                let entry = e.alloc_entry(f, i).unwrap();
                let holds = entry.prev == Some(sid)
                    && matches!(
                        entry.state,
                        AllocState::Normal | AllocState::Alloc | AllocState::Confirm
                    );
                let reserved = entry.next == Some(sid)
                    && matches!(entry.state, AllocState::Alloc | AllocState::Confirm);
                if holds {
                    used += desc.size;
                    count += 1;
                }
                if reserved {
                    used += desc.size;
                    count += 1;
                }
            }
        }
        assert_eq!(sector.used(), used, "{sid} used-space drift");
        assert_eq!(sector.replica_count, count, "{sid} replica-count drift");
        let cr = e.cr_accounting(sid).unwrap();
        assert!(cr.invariant_holds(), "{sid} DRep invariant");
        assert_eq!(cr.free(), sector.free_cap, "{sid} CR accounting drift");
    }
}

fn add_one_file(e: &mut Engine, size: u64) -> FileId {
    let value = e.params().min_value;
    let f = e
        .file_add(CLIENT, size, value, sha256(b"test file"))
        .unwrap();
    e.honest_providers_act();
    let deadline = e.now() + e.params().transfer_window(size);
    e.advance_to(deadline);
    f
}

// ---------------------------------------------------------------------
// Sector lifecycle
// ---------------------------------------------------------------------

#[test]
fn register_pledges_deposit_into_escrow() {
    let mut e = engine();
    let before = e.ledger().balance(PROVIDER);
    let sid = e.sector_register(PROVIDER, 640).unwrap();
    let deposit = e.params().sector_deposit(640);
    assert_eq!(e.sector(sid).unwrap().deposit, deposit);
    assert_eq!(e.ledger().balance(DEPOSIT_ESCROW), deposit);
    assert!(e.ledger().balance(PROVIDER) < before - deposit); // deposit + gas
    check_space_invariants(&e);
}

#[test]
fn register_rejects_bad_capacity_and_poverty() {
    let mut e = engine();
    assert!(matches!(
        e.sector_register(PROVIDER, 100),
        Err(EngineError::Param(_))
    ));
    let poor = AccountId(999);
    e.fund(poor, TokenAmount(1_000)); // covers gas, not deposit
    assert_eq!(
        e.sector_register(poor, 640),
        Err(EngineError::InsufficientFunds)
    );
}

#[test]
fn disable_empty_sector_removes_and_refunds() {
    let mut e = engine();
    let sid = e.sector_register(PROVIDER, 640).unwrap();
    let deposit = e.params().sector_deposit(640);
    let before = e.ledger().balance(PROVIDER);
    e.sector_disable(PROVIDER, sid).unwrap();
    assert!(e.sector(sid).is_none(), "empty sector removed at once");
    // Balance: deposit returned minus the disable request's gas.
    let gas = TokenAmount(35);
    assert_eq!(e.ledger().balance(PROVIDER), before + deposit - gas);
    assert!(e
        .events()
        .iter()
        .any(|ev| matches!(ev, ProtocolEvent::SectorRemoved { .. })));
}

#[test]
fn disable_requires_ownership() {
    let mut e = engine();
    let sid = e.sector_register(PROVIDER, 640).unwrap();
    assert_eq!(e.sector_disable(PROVIDER2, sid), Err(EngineError::NotOwner));
    assert_eq!(
        e.sector_disable(PROVIDER, SectorId(99)),
        Err(EngineError::UnknownSector(SectorId(99)))
    );
}

// ---------------------------------------------------------------------
// File add / confirm / CheckAlloc
// ---------------------------------------------------------------------

#[test]
fn file_add_happy_path_stores_file() {
    let mut e = engine();
    e.sector_register(PROVIDER, 640).unwrap();
    e.sector_register(PROVIDER2, 640).unwrap();
    let f = add_one_file(&mut e, 16);
    let desc = e.file(f).unwrap();
    assert_eq!(desc.state, FileState::Normal);
    assert_eq!(desc.cp, 3);
    assert!(desc.cntdown >= 1, "cntdown armed");
    for i in 0..3 {
        let entry = e.alloc_entry(f, i).unwrap();
        assert_eq!(entry.state, AllocState::Normal);
        assert!(entry.prev.is_some());
        assert!(entry.next.is_none());
    }
    assert!(e
        .events()
        .iter()
        .any(|ev| matches!(ev, ProtocolEvent::FileStored { file } if *file == f)));
    check_space_invariants(&e);
}

#[test]
fn file_add_validation_errors() {
    let mut e = engine();
    e.sector_register(PROVIDER, 640).unwrap();
    let root = sha256(b"x");
    assert!(matches!(
        e.file_add(CLIENT, 0, TokenAmount(1_000), root),
        Err(EngineError::InvalidState(_))
    ));
    assert!(matches!(
        e.file_add(CLIENT, 33, TokenAmount(1_000), root),
        Err(EngineError::FileTooLarge {
            size: 33,
            limit: 32
        })
    ));
    assert!(matches!(
        e.file_add(CLIENT, 16, TokenAmount(1_500), root),
        Err(EngineError::Param(_))
    ));
}

#[test]
fn unconfirmed_upload_fails_and_refunds_traffic_fee() {
    let mut e = engine();
    e.sector_register(PROVIDER, 640).unwrap();
    let before = e.ledger().balance(CLIENT);
    let f = e
        .file_add(CLIENT, 16, TokenAmount(1_000), sha256(b"ghost"))
        .unwrap();
    // Nobody confirms; the transfer window expires.
    e.advance_to(e.now() + e.params().transfer_window(16));
    assert!(e.file(f).is_none());
    assert!(e.events().iter().any(|ev| matches!(
        ev,
        ProtocolEvent::FileRemoved { file, reason: RemovalReason::UploadFailed } if *file == f
    )));
    // Traffic escrow fully refunded; only gas was spent.
    let gas_spent = before - e.ledger().balance(CLIENT);
    assert!(gas_spent.0 < 100, "only gas burned, got {gas_spent}");
    check_space_invariants(&e);
}

#[test]
fn partial_confirms_also_fail_upload() {
    let mut e = engine();
    e.sector_register(PROVIDER, 640).unwrap();
    let f = e
        .file_add(CLIENT, 16, TokenAmount(1_000), sha256(b"partial"))
        .unwrap();
    // Confirm only the first replica.
    let pending = e.pending_confirms(f);
    let (idx, sid) = pending[0];
    e.file_confirm(PROVIDER, f, idx, sid).unwrap();
    e.advance_to(e.now() + e.params().transfer_window(16));
    assert!(e.file(f).is_none());
    check_space_invariants(&e);
}

#[test]
fn confirm_checks_ownership_and_state() {
    let mut e = engine();
    e.sector_register(PROVIDER, 640).unwrap();
    let f = e
        .file_add(CLIENT, 16, TokenAmount(1_000), sha256(b"c"))
        .unwrap();
    let (idx, sid) = e.pending_confirms(f)[0];
    assert_eq!(
        e.file_confirm(PROVIDER2, f, idx, sid),
        Err(EngineError::NotOwner)
    );
    e.file_confirm(PROVIDER, f, idx, sid).unwrap();
    // Double confirm rejected.
    assert!(matches!(
        e.file_confirm(PROVIDER, f, idx, sid),
        Err(EngineError::InvalidState(_))
    ));
}

#[test]
fn traffic_fee_flows_to_provider_on_confirm() {
    let mut e = engine();
    e.sector_register(PROVIDER, 1280).unwrap();
    let before = e.ledger().balance(PROVIDER);
    let f = e
        .file_add(CLIENT, 16, TokenAmount(1_000), sha256(b"fee"))
        .unwrap();
    let confirms = e.pending_confirms(f);
    assert_eq!(confirms.len(), 3);
    for (idx, sid) in confirms {
        e.file_confirm(PROVIDER, f, idx, sid).unwrap();
    }
    let fee = e.params().traffic_fee(16);
    let gained = e.ledger().balance(PROVIDER) + TokenAmount(3 * 11) - before; // gas back-of-envelope
    assert!(
        gained >= TokenAmount(3 * fee.0),
        "provider earned traffic fees: {gained}"
    );
}

// ---------------------------------------------------------------------
// Rent, proofs, discard
// ---------------------------------------------------------------------

#[test]
fn rent_charged_each_cycle_and_distributed() {
    let mut e = engine();
    // Zero gas so provider balances show pure rent + traffic-fee flows.
    e.set_gas_schedule(fi_chain::gas::GasSchedule::free());
    e.sector_register(PROVIDER, 640).unwrap();
    e.sector_register(PROVIDER2, 1280).unwrap();
    let f = add_one_file(&mut e, 16);
    let client_before = e.ledger().balance(CLIENT);
    let p1_before = e.ledger().balance(PROVIDER);
    let p2_before = e.ledger().balance(PROVIDER2);

    // Run one full rent period of honest proving.
    let period = e.params().proof_cycle * e.params().rent_period_cycles as u64;
    let until = e.now() + period + 10;
    run_honest(&mut e, until);

    assert!(e.file(f).is_some(), "file survives under honest proving");
    assert!(
        e.ledger().balance(CLIENT) < client_before,
        "client pays rent"
    );
    assert!(e
        .events()
        .iter()
        .any(|ev| matches!(ev, ProtocolEvent::RentDistributed { total } if !total.is_zero())));
    let p1_gain = e.ledger().balance(PROVIDER).saturating_sub(p1_before);
    let p2_gain = e.ledger().balance(PROVIDER2).saturating_sub(p2_before);
    // PROVIDER2 has 2x capacity => roughly 2x rent (gas noise aside).
    assert!(
        p2_gain > p1_gain,
        "rent pro rata capacity: {p1_gain} vs {p2_gain}"
    );
    check_space_invariants(&e);
}

#[test]
fn discard_removes_file_at_next_check_proof() {
    let mut e = engine();
    e.sector_register(PROVIDER, 640).unwrap();
    let f = add_one_file(&mut e, 16);
    e.file_discard(CLIENT, f).unwrap();
    assert_eq!(e.file(f).unwrap().state, FileState::Discarded);
    let until = e.now() + e.params().proof_cycle + 10;
    run_honest(&mut e, until);
    assert!(e.file(f).is_none());
    assert!(e.events().iter().any(|ev| matches!(
        ev,
        ProtocolEvent::FileRemoved { file, reason: RemovalReason::ClientDiscard } if *file == f
    )));
    check_space_invariants(&e);
}

#[test]
fn discard_requires_owner() {
    let mut e = engine();
    e.sector_register(PROVIDER, 640).unwrap();
    let f = add_one_file(&mut e, 16);
    assert_eq!(e.file_discard(PROVIDER, f), Err(EngineError::NotOwner));
}

#[test]
fn broke_client_file_auto_discarded() {
    let mut e = engine();
    e.sector_register(PROVIDER, 640).unwrap();
    let f = add_one_file(&mut e, 16);
    // Drain the client to below one cycle's cost (Fig. 8: "does not have
    // enough tokens to pay the cost for the next cycle").
    let balance = e.ledger().balance(CLIENT);
    e.burn_for_test(CLIENT, balance - TokenAmount(10));
    let until = e.now() + 2 * e.params().proof_cycle + 10;
    run_honest(&mut e, until);
    assert!(e.file(f).is_none());
    assert!(e.events().iter().any(|ev| matches!(
        ev,
        ProtocolEvent::FileRemoved { file, reason: RemovalReason::InsufficientFunds } if *file == f
    )));
}

// ---------------------------------------------------------------------
// Punishment, corruption, compensation
// ---------------------------------------------------------------------

#[test]
fn silent_failure_confiscates_deposit_and_compensates_loss() {
    let mut e = engine();
    let s1 = e.sector_register(PROVIDER, 640).unwrap();
    let s2 = e.sector_register(PROVIDER2, 640).unwrap();
    let f = add_one_file(&mut e, 16);
    let value = e.file(f).unwrap().value;
    let client_before = e.ledger().balance(CLIENT);

    // Both providers go dark: proofs stop.
    e.fail_sector_silently(s1);
    e.fail_sector_silently(s2);

    // After ProofDeadline the sectors are corrupted and the file is lost.
    let horizon = e.now() + e.params().proof_deadline + 2 * e.params().proof_cycle;
    e.advance_to(horizon);

    assert_eq!(e.sector(s1).unwrap().state, SectorState::Corrupted);
    assert_eq!(e.sector(s2).unwrap().state, SectorState::Corrupted);
    assert!(e.file(f).is_none());
    assert_eq!(e.stats().files_lost, 1);
    assert_eq!(e.stats().compensation_shortfall, TokenAmount::ZERO);

    // Full compensation: the client's balance recovered the file value
    // minus the rent paid before death.
    let client_after = e.ledger().balance(CLIENT);
    assert!(
        client_after + TokenAmount(1_000) > client_before + value,
        "client compensated {value}: {client_before} -> {client_after}"
    );
    // Confiscated deposits exceed the payout (deposit ratio >> loss).
    assert!(e.ledger().balance(COMPENSATION_POOL) > TokenAmount::ZERO);
}

#[test]
fn late_proofs_punished_before_deadline() {
    let mut e = engine();
    let s1 = e.sector_register(PROVIDER, 640).unwrap();
    let f = add_one_file(&mut e, 16);
    let deposit_before = e.sector(s1).unwrap().deposit;

    // Provider proves nothing for a window past ProofDue but short of
    // ProofDeadline: 2 cycles < t < 4 cycles.
    e.advance_to(e.now() + 3 * e.params().proof_cycle);
    assert!(e.stats().punishments > 0, "late proof punished");
    let s = e.sector(s1).unwrap();
    assert_eq!(s.state, SectorState::Normal, "not yet corrupted");
    assert!(s.deposit < deposit_before, "deposit docked");
    assert!(e.file(f).is_some(), "file still alive");
}

#[test]
fn one_surviving_replica_keeps_file_alive() {
    let mut e = engine();
    let mut params_sectors = Vec::new();
    for _ in 0..3 {
        params_sectors.push(e.sector_register(PROVIDER, 640).unwrap());
    }
    let f = add_one_file(&mut e, 16);
    // Corrupt every sector except one that holds a replica.
    let holder: Vec<SectorId> = (0..3)
        .filter_map(|i| e.alloc_entry(f, i).unwrap().prev)
        .collect();
    let survivor = holder[0];
    for sid in e.sector_ids() {
        if sid != survivor {
            e.corrupt_sector_now(sid);
        }
    }
    let until = e.now() + 3 * e.params().proof_cycle;
    run_honest(&mut e, until);
    assert!(e.file(f).is_some(), "file survives on one replica");
    assert_eq!(e.stats().files_lost, 0);
    check_space_invariants(&e);
}

#[test]
fn corrupt_sector_now_resolves_mid_refresh_confirm() {
    // A replica mid-refresh whose source dies after the target confirmed
    // must finalise at the target (no loss).
    let mut e = engine_with(ProtocolParams {
        k: 1,
        avg_refresh: 1.0, // refresh at every proof cycle
        delay_per_size: 6,
        ..ProtocolParams::default()
    });
    let _s1 = e.sector_register(PROVIDER, 640).unwrap();
    let s2 = e.sector_register(PROVIDER2, 640).unwrap();
    let f = add_one_file(&mut e, 16);
    // Drive to the first refresh start (cntdown=1 fires at first cycle).
    let mut saw_swap = false;
    for _ in 0..40 {
        e.honest_providers_act();
        e.advance_to(e.now() + 25);
        let entry = e.alloc_entry(f, 0).unwrap();
        if entry.state == AllocState::Confirm && entry.prev != entry.next {
            // Target confirmed (a genuine cross-sector move); kill the
            // source before CheckRefresh completes the swap.
            let source = entry.prev.unwrap();
            let target = entry.next.unwrap();
            e.corrupt_sector_now(source);
            let entry = e.alloc_entry(f, 0).unwrap();
            assert_eq!(entry.state, AllocState::Normal);
            assert_eq!(entry.prev, Some(target));
            saw_swap = true;
            break;
        }
    }
    assert!(saw_swap, "never caught a mid-refresh confirm");
    assert!(e.file(f).is_some());
    let _ = s2;
}

// ---------------------------------------------------------------------
// Refresh dynamics
// ---------------------------------------------------------------------

#[test]
fn refreshes_move_replicas_over_time() {
    let mut e = engine_with(ProtocolParams {
        k: 3,
        avg_refresh: 2.0,
        delay_per_size: 6,
        ..ProtocolParams::default()
    });
    for _ in 0..4 {
        e.sector_register(PROVIDER, 640).unwrap();
    }
    let f = add_one_file(&mut e, 16);
    let until = e.now() + 30 * e.params().proof_cycle;
    run_honest(&mut e, until);
    assert!(e.file(f).is_some(), "file alive under honest churn");
    assert!(
        e.stats().refreshes_completed > 0,
        "refreshes ran: {:?}",
        e.stats()
    );
    check_space_invariants(&e);
}

#[test]
fn failed_refresh_punishes_and_retries() {
    let mut e = engine_with(ProtocolParams {
        k: 1,
        avg_refresh: 1.0,
        delay_per_size: 6,
        ..ProtocolParams::default()
    });
    let _s1 = e.sector_register(PROVIDER, 640).unwrap();
    let _s2 = e.sector_register(PROVIDER2, 640).unwrap();
    let f = add_one_file(&mut e, 16);
    // Providers confirm nothing after the initial placement and never
    // prove; but keep the file alive by proving only (no confirms):
    // simulate by advancing exactly one cycle at a time and proving
    // manually for the holder.
    let mut punished = false;
    for _ in 0..10 {
        // Prove for current holder to avoid deadline corruption.
        let entry = e.alloc_entry(f, 0).unwrap().clone();
        if let Some(holder) = entry.prev {
            let owner = e.sector(holder).map(|s| s.owner);
            if let Some(o) = owner {
                let _ = e.file_prove(o, f, 0, holder);
            }
        }
        e.advance_to(e.now() + e.params().proof_cycle);
        if e.stats().punishments > 0 {
            punished = true;
            break;
        }
    }
    assert!(punished, "unconfirmed refresh must punish");
    assert!(e.file(f).is_some());
}

#[test]
fn disabled_sector_drains_and_refunds() {
    let mut e = engine_with(ProtocolParams {
        k: 2,
        avg_refresh: 1.5,
        delay_per_size: 6,
        ..ProtocolParams::default()
    });
    let s1 = e.sector_register(PROVIDER, 640).unwrap();
    let s2 = e.sector_register(PROVIDER2, 640).unwrap();
    let s3 = e.sector_register(PROVIDER2, 640).unwrap();
    let f = add_one_file(&mut e, 16);

    // Disable s1; refreshes must eventually move its replicas elsewhere.
    e.sector_disable(PROVIDER, s1).unwrap();
    let provider_before = e.ledger().balance(PROVIDER);
    let until = e.now() + 80 * e.params().proof_cycle;
    run_honest(&mut e, until);

    assert!(e.file(f).is_some());
    assert!(
        e.sector(s1).is_none(),
        "disabled sector drained and removed"
    );
    assert!(
        e.ledger().balance(PROVIDER) > provider_before,
        "deposit refunded"
    );
    let _ = (s2, s3);
    check_space_invariants(&e);
}

// ---------------------------------------------------------------------
// Retrieval, capacity exhaustion, Poisson swap-in
// ---------------------------------------------------------------------

#[test]
fn file_get_lists_live_holders() {
    let mut e = engine();
    let s1 = e.sector_register(PROVIDER, 640).unwrap();
    let f = add_one_file(&mut e, 16);
    let holders = e.file_get(CLIENT, f).unwrap();
    assert_eq!(holders.len(), 3);
    assert!(holders
        .iter()
        .all(|&(sid, owner)| sid == s1 && owner == PROVIDER));
    e.corrupt_sector_now(s1);
    let holders = e.file_get(CLIENT, f).unwrap();
    assert!(holders.is_empty());
    assert!(matches!(
        e.file_get(CLIENT, FileId(404)),
        Err(EngineError::UnknownFile(_))
    ));
}

#[test]
fn capacity_exhaustion_returns_no_capacity() {
    let mut e = engine_with(ProtocolParams {
        k: 1,
        ..test_params()
    });
    e.sector_register(PROVIDER, 64).unwrap();
    // Fill the single 64-unit sector with two 32-unit files.
    add_one_file(&mut e, 32);
    add_one_file(&mut e, 32);
    let err = e
        .file_add(CLIENT, 32, TokenAmount(1_000), sha256(b"overflow"))
        .unwrap_err();
    assert_eq!(err, EngineError::NoCapacity);
    assert!(e.stats().add_collisions > 0);
    // The escrow was refunded.
    check_space_invariants(&e);
}

#[test]
fn poisson_swap_in_targets_new_sector() {
    let mut e = engine_with(ProtocolParams {
        k: 4,
        poisson_rebalance: true,
        delay_per_size: 6,
        ..ProtocolParams::default()
    });
    e.sector_register(PROVIDER, 640).unwrap();
    for _ in 0..8 {
        add_one_file(&mut e, 16);
    }
    let swaps_before = e.stats().refreshes_started;
    // A big new sector should attract a Poisson(≈ replicas × share) number
    // of swap-ins; with share 2/3 and 32 replicas the chance of zero is
    // negligible.
    e.sector_register(PROVIDER2, 1280).unwrap();
    assert!(
        e.stats().refreshes_started > swaps_before,
        "swap-ins started on register"
    );
    let until = e.now() + 200;
    run_honest(&mut e, until);
    check_space_invariants(&e);
}

// ---------------------------------------------------------------------
// Money conservation
// ---------------------------------------------------------------------

#[test]
fn ledger_conserves_through_full_scenario() {
    let mut e = engine_with(ProtocolParams {
        k: 2,
        avg_refresh: 2.0,
        delay_per_size: 6,
        ..ProtocolParams::default()
    });
    let s1 = e.sector_register(PROVIDER, 640).unwrap();
    let _s2 = e.sector_register(PROVIDER2, 640).unwrap();
    let f1 = add_one_file(&mut e, 16);
    let _f2 = add_one_file(&mut e, 8);
    let until = e.now() + 5 * e.params().proof_cycle;
    run_honest(&mut e, until);
    e.file_discard(CLIENT, f1).unwrap();
    e.corrupt_sector_now(s1);
    let until = e.now() + 10 * e.params().proof_cycle;
    run_honest(&mut e, until);

    assert!(e.ledger().audit(), "balances sum to supply");
    // Everything minted is either held, burned (gas), or still in supply:
    // audit() already checks supply = Σ balances; additionally no negative
    // flows occurred (all asserts inside the engine held).
    check_space_invariants(&e);
}

#[test]
fn state_root_changes_with_activity() {
    let mut e = engine();
    let r0 = e.state_root();
    e.sector_register(PROVIDER, 640).unwrap();
    let r1 = e.state_root();
    assert_ne!(r0, r1);
    let e2 = engine();
    assert_eq!(e2.state_root(), r0, "deterministic initial state");
}

#[test]
fn deterministic_replay() {
    let run = || {
        let mut e = engine_with(ProtocolParams {
            k: 3,
            avg_refresh: 3.0,
            delay_per_size: 6,
            ..ProtocolParams::default()
        });
        e.sector_register(PROVIDER, 640).unwrap();
        e.sector_register(PROVIDER2, 1280).unwrap();
        add_one_file(&mut e, 16);
        add_one_file(&mut e, 8);
        run_honest(&mut e, 2_000);
        (e.state_root(), e.stats(), e.events().len())
    };
    assert_eq!(run(), run(), "same seed, same trajectory");
}

#[test]
fn segmented_upload_and_retrieval_round_trip() {
    let mut e = engine_with(ProtocolParams {
        k: 2,
        size_limit: 32,
        delay_per_size: 6,
        ..ProtocolParams::default()
    });
    for i in 0..6u64 {
        let p = AccountId(300 + i);
        e.fund(p, TokenAmount(1_000_000_000));
        e.sector_register(p, 640).unwrap();
    }
    let payload: Vec<u8> = (0..300u32).map(|i| (i * 31 % 251) as u8).collect();

    // Small payloads are refused — file_add is the right door.
    assert!(matches!(
        e.file_add_segmented(CLIENT, &payload[..10], TokenAmount(1_000)),
        Err(EngineError::InvalidState(_))
    ));

    let upload = e
        .file_add_segmented(CLIENT, &payload, TokenAmount(10_000))
        .unwrap();
    // 300/32 -> 10 data shards, doubled for parity.
    assert_eq!(upload.segmented.data_shards, 10);
    assert_eq!(upload.files.len(), 20);
    // Each segment registered under its flat-buffer Merkle commitment.
    let roots = upload.segmented.segment_roots();
    for (i, &f) in upload.files.iter().enumerate() {
        assert_eq!(e.file(f).unwrap().merkle_root, roots[i], "segment {i}");
    }

    run_honest(&mut e, 400);
    let recovered = e.file_get_segmented(CLIENT, &upload).unwrap();
    assert_eq!(recovered, payload);
}

#[test]
fn segmented_retrieval_survives_partial_loss_then_fails_past_half() {
    let mut e = engine_with(ProtocolParams {
        k: 2,
        size_limit: 50,
        delay_per_size: 6,
        ..ProtocolParams::default()
    });
    let mut sectors = Vec::new();
    for i in 0..8u64 {
        let p = AccountId(300 + i);
        e.fund(p, TokenAmount(1_000_000_000));
        sectors.push(e.sector_register(p, 640).unwrap());
    }
    let payload: Vec<u8> = (0..200u32).map(|i| (i * 17 % 251) as u8).collect();
    let upload = e
        .file_add_segmented(CLIENT, &payload, TokenAmount(10_000))
        .unwrap();
    run_honest(&mut e, 400);

    // Destroy every sector: all segments lose their holders.
    for &s in &sectors {
        e.corrupt_sector_now(s);
    }
    assert!(matches!(
        e.file_get_segmented(CLIENT, &upload),
        Err(EngineError::InvalidState(_))
    ));
}

#[test]
fn discard_during_transfer_window_survives_check_alloc() {
    // A discard issued while the upload is still Allocating must not be
    // clobbered back to Normal when Auto_CheckAlloc finalises confirmed
    // replicas; the file must be removed at the first Auto_CheckProof.
    let mut e = engine();
    e.sector_register(PROVIDER, 640).unwrap();
    let root = sha256(b"discard-mid-transfer");
    let file = e.file_add(CLIENT, 16, TokenAmount(1_000), root).unwrap();
    e.file_discard(CLIENT, file).unwrap();
    // Providers confirm anyway (they don't see the discard).
    let window = e.params().transfer_window(16);
    run_honest(&mut e, window + 1);
    assert_ne!(
        e.file(file).map(|d| d.state),
        Some(FileState::Normal),
        "discard was clobbered back to Normal by Auto_CheckAlloc"
    );
    // The next proof cycle removes it entirely.
    let until = e.now() + e.params().proof_cycle + 1;
    run_honest(&mut e, until);
    assert!(e.file(file).is_none(), "discarded file must be removed");
}

#[test]
fn segmented_rollback_partial_segments_do_not_revive() {
    // file_add_segmented fails mid-way; its rollback marks partial segments
    // Discarded while their transfers are pending. They must never come
    // back as Normal files (the orphan-insured-segment bug).
    let mut e = engine_with(ProtocolParams {
        k: 2,
        size_limit: 32,
        delay_per_size: 6,
        ..ProtocolParams::default()
    });
    e.fund(AccountId(300), TokenAmount(1_000_000_000));
    e.sector_register(AccountId(300), 128).unwrap(); // room for only a few segments
    let payload: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
    assert!(matches!(
        e.file_add_segmented(CLIENT, &payload, TokenAmount(10_000)),
        Err(EngineError::NoCapacity)
    ));
    let partial = e.file_ids();
    assert!(
        !partial.is_empty(),
        "expected partially-registered segments"
    );
    // Confirm + advance well past transfer windows and a proof cycle.
    let until = 2 * e.params().proof_cycle + 200;
    run_honest(&mut e, until);
    for f in partial {
        assert!(
            e.file(f).is_none(),
            "partial segment {f:?} survived the rollback"
        );
    }
}
