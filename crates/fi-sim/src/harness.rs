//! Full-protocol scenario harness: drives an `fi-core` [`Engine`] with
//! configurable provider behaviours over simulated time (the Fig. 3
//! timelines, with faults).
//!
//! Providers follow a [`ProviderBehavior`]: honest ones confirm transfers
//! and submit proofs each cycle; lazy ones skip proofs with some
//! probability (earning punishments); failing ones go dark at a set time
//! (exercising the `ProofDeadline` → confiscation → compensation path).
//!
//! Every engine action the harness takes goes through the typed
//! transaction layer — the per-sweep confirm and proof batches through the
//! pipelined `Engine::apply_batch` ingest path, the rest through the
//! `Engine::apply` wrappers — so whole scenario runs — faults,
//! punishments, compensation included — are replayable from the op log via
//! `Engine::replay` (asserted in the tests below).
//!
//! The engine's shard count is configured through
//! [`ProtocolParams::shards`]; scenario outcomes are shard-count-invariant
//! (asserted below), so scenarios can drive any shard configuration.

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::{Engine, StateView};
use fi_core::ops::Op;
use fi_core::params::ProtocolParams;
use fi_core::types::{FileId, SectorId};
use fi_crypto::{sha256, DetRng};

/// Every `(file, index, sector)` replica transfer currently awaiting its
/// provider's `File_Confirm`, across all live files in id order.
///
/// This is the read-only sweep view [`Scenario`] drives its confirm
/// batches from; the node layer's client drivers compute the same view
/// over their replayed follower engines to decide which confirm
/// transactions to submit.
pub fn pending_confirm_candidates(engine: &Engine) -> Vec<(FileId, u32, SectorId)> {
    engine
        .file_ids()
        .into_iter()
        .flat_map(|f| {
            engine
                .pending_confirms(f)
                .into_iter()
                .map(move |(i, s)| (f, i, s))
        })
        .collect()
}

/// Every `(file, index, sector)` replica currently held by a sector (i.e.
/// provable this cycle), across all live files in id order.
///
/// The proof-sweep counterpart of [`pending_confirm_candidates`]: callers
/// filter by provider behaviour (skip lazy/dark providers) and wrap the
/// survivors into `File_Prove` ops.
pub fn held_replica_candidates(engine: &Engine) -> Vec<(FileId, u32, SectorId)> {
    engine
        .file_ids()
        .into_iter()
        .flat_map(|f| {
            let cp = engine.file(f).map(|d| d.cp).unwrap_or(0);
            (0..cp).map(move |i| (f, i))
        })
        .filter_map(|(f, i)| {
            let e = engine.alloc_entry(f, i)?;
            Some((f, i, e.prev?))
        })
        .collect()
}

/// How a provider behaves over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProviderBehavior {
    /// Confirms and proves promptly, forever.
    Honest,
    /// Skips each proof round with probability `skip_prob`.
    Lazy {
        /// Probability of skipping a given proof round.
        skip_prob: f64,
    },
    /// Honest until `at`, then permanently dark (disk failure).
    FailsAt {
        /// Failure time.
        at: u64,
    },
}

/// One provider in the scenario.
#[derive(Debug, Clone)]
pub struct ProviderSpec {
    /// Ledger account.
    pub account: AccountId,
    /// Sector capacities to register.
    pub sectors: Vec<u64>,
    /// Behaviour.
    pub behavior: ProviderBehavior,
}

/// A scripted protocol scenario.
#[derive(Debug)]
pub struct Scenario {
    /// The engine under test.
    pub engine: Engine,
    providers: Vec<(ProviderSpec, Vec<SectorId>)>,
    rng: DetRng,
    /// Action cadence (ticks between provider action sweeps).
    step: u64,
}

impl Scenario {
    /// Builds a scenario: registers every provider's sectors and funds the
    /// given client account.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters or if a registration fails.
    pub fn new(params: ProtocolParams, providers: Vec<ProviderSpec>, client: AccountId) -> Self {
        let step = (params.proof_cycle / 2).max(1);
        let seed = params.seed;
        let mut engine = Engine::new(params).expect("valid parameters");
        engine.fund(client, TokenAmount(1_000_000_000));
        let mut registered = Vec::new();
        for spec in providers {
            engine.fund(spec.account, TokenAmount(1_000_000_000_000));
            let mut ids = Vec::new();
            for &capacity in &spec.sectors {
                ids.push(
                    engine
                        .sector_register(spec.account, capacity)
                        .expect("registration succeeds"),
                );
            }
            registered.push((spec, ids));
        }
        Scenario {
            engine,
            providers: registered,
            rng: DetRng::from_seed_label(seed, "scenario"),
            step,
        }
    }

    /// Stores a file owned by `client`; returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the add is rejected.
    pub fn add_file(&mut self, client: AccountId, size: u64, value: TokenAmount) -> FileId {
        let root = sha256(format!("scenario-file-{}", self.engine.now()).as_bytes());
        self.engine
            .file_add(client, size, value, root)
            .expect("file add accepted")
    }

    /// Runs until `until`, sweeping provider actions every half proof
    /// cycle according to their behaviours.
    pub fn run_until(&mut self, until: u64) {
        while self.engine.now() < until {
            self.act_providers();
            let next = (self.engine.now() + self.step).min(until);
            self.engine.advance_to(next);
        }
        self.act_providers();
    }

    fn act_providers(&mut self) {
        let now = self.engine.now();
        // Confirms: every live provider confirms pending transfers to its
        // sectors (failing/dark providers don't). The whole sweep goes
        // through the pipelined ingest path — `File_Confirm` is
        // shard-local, so a big sweep stages across shards concurrently
        // while staying bit-identical to one-by-one application.
        let confirms: Vec<Op> = pending_confirm_candidates(&self.engine)
            .into_iter()
            .filter_map(|(f, i, s)| {
                let (spec, _) = self.providers.iter().find(|(_, ids)| ids.contains(&s))?;
                if self.is_dark(spec.behavior, now) {
                    return None;
                }
                Some(Op::FileConfirm {
                    caller: spec.account,
                    file: f,
                    index: i,
                    sector: s,
                })
            })
            .collect();
        self.engine.apply_batch(confirms);
        // Proofs — likewise one shard-local batch.
        let held: Vec<(FileId, u32, SectorId, AccountId, ProviderBehavior)> =
            held_replica_candidates(&self.engine)
                .into_iter()
                .filter_map(|(f, i, s)| {
                    let (spec, _) = self.providers.iter().find(|(_, ids)| ids.contains(&s))?;
                    Some((f, i, s, spec.account, spec.behavior))
                })
                .collect();
        let mut proofs = Vec::with_capacity(held.len());
        for (f, i, s, account, behavior) in held {
            if self.is_dark(behavior, now) {
                continue;
            }
            if let ProviderBehavior::Lazy { skip_prob } = behavior {
                if self.rng.bernoulli(skip_prob) {
                    continue;
                }
            }
            proofs.push(Op::FileProve {
                caller: account,
                file: f,
                index: i,
                sector: s,
            });
        }
        self.engine.apply_batch(proofs);
        // Propagate physical failures into the engine (so honest helpers
        // and File_Get treat them correctly).
        let failing: Vec<SectorId> = self
            .providers
            .iter()
            .filter(|(spec, _)| self.is_dark(spec.behavior, now))
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect();
        for s in failing {
            if let Some(sector) = self.engine.sector(s) {
                if !sector.physically_failed {
                    self.engine.fail_sector_silently(s);
                }
            }
        }
    }

    fn is_dark(&self, behavior: ProviderBehavior, now: u64) -> bool {
        matches!(behavior, ProviderBehavior::FailsAt { at } if now >= at)
    }

    /// Sector ids registered for provider `idx` (insertion order).
    pub fn sectors_of(&self, idx: usize) -> &[SectorId] {
        &self.providers[idx].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_core::types::{ProtocolEvent, RemovalReason};

    const CLIENT: AccountId = AccountId(900);

    fn params(k: u32) -> ProtocolParams {
        ProtocolParams {
            k,
            delay_per_size: 6,
            avg_refresh: 6.0,
            ..ProtocolParams::default()
        }
    }

    #[test]
    fn honest_network_keeps_files_forever() {
        let mut scenario = Scenario::new(
            params(3),
            vec![
                ProviderSpec {
                    account: AccountId(700),
                    sectors: vec![640, 640],
                    behavior: ProviderBehavior::Honest,
                },
                ProviderSpec {
                    account: AccountId(701),
                    sectors: vec![1280],
                    behavior: ProviderBehavior::Honest,
                },
            ],
            CLIENT,
        );
        let f = scenario.add_file(CLIENT, 16, TokenAmount(1_000));
        scenario.run_until(5_000);
        assert!(scenario.engine.file(f).is_some());
        assert_eq!(scenario.engine.stats().files_lost, 0);
    }

    #[test]
    fn total_provider_failure_triggers_compensation() {
        let mut scenario = Scenario::new(
            params(2),
            vec![ProviderSpec {
                account: AccountId(700),
                sectors: vec![640, 640],
                behavior: ProviderBehavior::FailsAt { at: 500 },
            }],
            CLIENT,
        );
        let f = scenario.add_file(CLIENT, 16, TokenAmount(1_000));
        scenario.run_until(2_000);
        assert!(scenario.engine.file(f).is_none());
        assert_eq!(scenario.engine.stats().files_lost, 1);
        assert_eq!(
            scenario.engine.stats().compensation_paid,
            TokenAmount(1_000),
            "full compensation"
        );
        assert!(scenario.engine.events().iter().any(|e| matches!(
            e,
            ProtocolEvent::FileRemoved {
                reason: RemovalReason::Lost,
                ..
            }
        )));
    }

    #[test]
    fn lazy_provider_gets_punished_but_file_survives() {
        let mut scenario = Scenario::new(
            params(3),
            vec![
                ProviderSpec {
                    account: AccountId(700),
                    sectors: vec![640],
                    behavior: ProviderBehavior::Lazy { skip_prob: 0.7 },
                },
                ProviderSpec {
                    account: AccountId(701),
                    sectors: vec![640, 640],
                    behavior: ProviderBehavior::Honest,
                },
            ],
            CLIENT,
        );
        let f = scenario.add_file(CLIENT, 16, TokenAmount(1_000));
        scenario.run_until(4_000);
        assert!(
            scenario.engine.stats().punishments > 0,
            "lazy proofs punished: {:?}",
            scenario.engine.stats()
        );
        assert!(scenario.engine.file(f).is_some(), "file survives laziness");
    }

    /// The harness drives everything through `Engine::apply`, so a whole
    /// scenario — faults, punishments, compensation included — replays
    /// from its op log to the identical state and chain head.
    #[test]
    fn scenario_runs_are_replayable_from_op_log() {
        let p = params(3);
        let mut scenario = Scenario::new(
            p.clone(),
            vec![
                ProviderSpec {
                    account: AccountId(700),
                    sectors: vec![640],
                    behavior: ProviderBehavior::FailsAt { at: 700 },
                },
                ProviderSpec {
                    account: AccountId(701),
                    sectors: vec![640, 1280],
                    behavior: ProviderBehavior::Honest,
                },
            ],
            CLIENT,
        );
        scenario.add_file(CLIENT, 16, TokenAmount(1_000));
        scenario.run_until(2_500);
        let replayed = Engine::replay(p, scenario.engine.op_log()).expect("params valid");
        assert_eq!(replayed.state_root(), scenario.engine.state_root());
        assert_eq!(
            replayed.chain().head_hash(),
            scenario.engine.chain().head_hash()
        );
        // Replay re-executes op by op, so execution-strategy counters
        // (batch staging) may differ from the batched original; consensus
        // counters must not.
        assert_eq!(
            replayed.stats().consensus(),
            scenario.engine.stats().consensus()
        );
    }

    /// A full scenario — lazy and failing providers, punishments,
    /// compensation — reaches bit-identical consensus state at any shard
    /// count: sharding is a performance knob, not a consensus parameter.
    #[test]
    fn scenario_outcomes_are_shard_count_invariant() {
        let run = |shards: usize| {
            let mut p = params(3);
            p.shards = shards;
            let mut scenario = Scenario::new(
                p,
                vec![
                    ProviderSpec {
                        account: AccountId(700),
                        sectors: vec![640],
                        behavior: ProviderBehavior::Lazy { skip_prob: 0.5 },
                    },
                    ProviderSpec {
                        account: AccountId(701),
                        sectors: vec![640, 1280],
                        behavior: ProviderBehavior::FailsAt { at: 1_200 },
                    },
                    ProviderSpec {
                        account: AccountId(702),
                        sectors: vec![640, 640],
                        behavior: ProviderBehavior::Honest,
                    },
                ],
                CLIENT,
            );
            for i in 0..6 {
                scenario.add_file(CLIENT, 8 + i, TokenAmount(1_000));
            }
            scenario.run_until(3_000);
            scenario.engine
        };
        let one = run(1);
        for shards in [4usize, 8] {
            let sharded = run(shards);
            assert_eq!(one.state_root(), sharded.state_root());
            assert_eq!(one.chain().head_hash(), sharded.chain().head_hash());
            assert_eq!(one.stats().consensus(), sharded.stats().consensus());
            assert_eq!(one.file_ids(), sharded.file_ids());
        }
    }

    #[test]
    fn partial_failure_keeps_file_alive_via_survivors() {
        let mut scenario = Scenario::new(
            params(3),
            vec![
                ProviderSpec {
                    account: AccountId(700),
                    sectors: vec![640],
                    behavior: ProviderBehavior::FailsAt { at: 300 },
                },
                ProviderSpec {
                    account: AccountId(701),
                    sectors: vec![640, 640, 640],
                    behavior: ProviderBehavior::Honest,
                },
            ],
            CLIENT,
        );
        let f = scenario.add_file(CLIENT, 16, TokenAmount(1_000));
        scenario.run_until(3_000);
        // The failing provider's sector is corrupted, its deposit gone…
        let failed = scenario.sectors_of(0)[0];
        let sector = scenario.engine.sector(failed).unwrap();
        assert_eq!(sector.state, fi_core::types::SectorState::Corrupted);
        // …but unless every replica sat there, the file lives.
        if scenario.engine.stats().files_lost == 0 {
            assert!(scenario.engine.file(f).is_some());
        }
    }
}
