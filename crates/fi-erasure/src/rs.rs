//! Systematic Reed–Solomon erasure codes over GF(2^8).
//!
//! Construction: start from a `(data+parity) × data` Vandermonde matrix
//! (rows are powers of distinct evaluation points, hence any `data` rows are
//! linearly independent), then right-multiply by the inverse of the top
//! square so the first `data` rows become the identity. Encoding is then
//! *systematic* — data shards pass through unchanged, parity rows are dense
//! linear combinations — and **any** `data` surviving shards suffice to
//! recover, exactly the "recover from any half of the segments" property the
//! paper uses in §VI-C.
//!
//! Two API tiers:
//!
//! * the **flat-buffer fast path** — [`ReedSolomon::encode_into`] /
//!   [`ReedSolomon::reconstruct_into`] operate in place on a [`ShardSet`]
//!   (one contiguous allocation), never clone a data shard, and on
//!   reconstruction recompute **only** the erased rows via the inverted
//!   sub-matrix;
//! * the seed-compatible **owning API** — [`ReedSolomon::encode`] /
//!   [`ReedSolomon::reconstruct`] on `Vec<Vec<u8>>`, now thin wrappers over
//!   the fast path (kept because the copies are inherent to returning owned
//!   shards).

use crate::gf256::Gf256;
use crate::shard_set::ShardSet;

/// Errors returned by [`ReedSolomon`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// `data == 0`, `parity == 0`, or `data + parity > 255`.
    BadParameters {
        /// Requested number of data shards.
        data: usize,
        /// Requested number of parity shards.
        parity: usize,
    },
    /// Fewer than `data` shards available for reconstruction.
    NotEnoughShards {
        /// How many shards were present.
        available: usize,
        /// How many are required.
        required: usize,
    },
    /// Shards have inconsistent lengths or the shard vector has wrong arity.
    ShapeMismatch,
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::BadParameters { data, parity } => {
                write!(
                    f,
                    "invalid reed-solomon parameters ({data} data, {parity} parity)"
                )
            }
            RsError::NotEnoughShards {
                available,
                required,
            } => {
                write!(
                    f,
                    "not enough shards: {available} available, {required} required"
                )
            }
            RsError::ShapeMismatch => write!(f, "shard shape mismatch"),
        }
    }
}

impl std::error::Error for RsError {}

/// A dense matrix over GF(2^8).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    #[inline]
    fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    fn mul(&self, gf: &Gf256, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows);
        let mut out = Matrix::zero(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0 {
                    continue;
                }
                for j in 0..other.cols {
                    let v = out.get(i, j) ^ gf.mul(a, other.get(k, j));
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Gauss–Jordan inversion. Returns `None` when singular.
    fn inverse(&self, gf: &Gf256) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                for j in 0..n {
                    let (x, y) = (a.get(col, j), a.get(pivot, j));
                    a.set(col, j, y);
                    a.set(pivot, j, x);
                    let (x, y) = (inv.get(col, j), inv.get(pivot, j));
                    inv.set(col, j, y);
                    inv.set(pivot, j, x);
                }
            }
            // Normalise pivot row.
            let p = a.get(col, col);
            let p_inv = gf.inv(p);
            for j in 0..n {
                a.set(col, j, gf.mul(a.get(col, j), p_inv));
                inv.set(col, j, gf.mul(inv.get(col, j), p_inv));
            }
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor == 0 {
                    continue;
                }
                for j in 0..n {
                    let v = a.get(r, j) ^ gf.mul(factor, a.get(col, j));
                    a.set(r, j, v);
                    let v = inv.get(r, j) ^ gf.mul(factor, inv.get(col, j));
                    inv.set(r, j, v);
                }
            }
        }
        Some(inv)
    }
}

/// A systematic Reed–Solomon erasure code with `data` data shards and
/// `parity` parity shards.
///
/// Any `data` of the `data + parity` shards reconstruct the original.
///
/// # Example
///
/// ```
/// use fi_erasure::ReedSolomon;
///
/// let rs = ReedSolomon::new(3, 3).unwrap(); // paper §VI-C: survive half lost
/// let data_shards = vec![vec![1u8, 2], vec![3, 4], vec![5, 6]];
/// let all = rs.encode(&data_shards).unwrap();
/// assert_eq!(all.len(), 6);
/// // Drop all three data shards; recover from parity alone.
/// let mut got: Vec<Option<Vec<u8>>> = all.into_iter().map(Some).collect();
/// got[0] = None; got[1] = None; got[2] = None;
/// let recovered = rs.reconstruct(&got).unwrap();
/// assert_eq!(recovered[..3], data_shards[..]);
/// ```
///
/// The zero-copy fast path works in place on a [`ShardSet`]:
///
/// ```
/// use fi_erasure::{ReedSolomon, ShardSet};
///
/// let rs = ReedSolomon::new(4, 4).unwrap();
/// let mut set = rs.encode_bytes_flat(b"the paper's half-loss property");
/// let mut present = vec![true; 8];
/// for i in [0, 2, 5, 7] {
///     present[i] = false; // lose half the shards
/// }
/// rs.reconstruct_into(&mut set, &present).unwrap();
/// assert_eq!(&set.flat()[..8], b"the pape");
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data: usize,
    parity: usize,
    gf: Gf256,
    /// `(data+parity) × data` systematic encoding matrix.
    encode_matrix: Matrix,
}

impl ReedSolomon {
    /// Creates a code with the given shard counts.
    ///
    /// # Errors
    ///
    /// [`RsError::BadParameters`] when `data == 0`, `parity == 0`, or
    /// `data + parity > 255` (GF(2^8) supports at most 255 distinct rows).
    pub fn new(data: usize, parity: usize) -> Result<Self, RsError> {
        if data == 0 || parity == 0 || data + parity > 255 {
            return Err(RsError::BadParameters { data, parity });
        }
        let gf = Gf256::new();
        let total = data + parity;
        // Vandermonde rows: row i = [i^0, i^1, ..., i^(data-1)] for distinct
        // evaluation points i = 1..=total (skip 0 so no all-but-first-zero row
        // degeneracy; any `data` distinct points give an invertible minor).
        let mut vand = Matrix::zero(total, data);
        for (r, point) in (1..=total as u32).enumerate() {
            for c in 0..data {
                vand.set(r, c, gf.pow(point as u8, c as u32));
            }
        }
        // Normalise: top square -> identity.
        let mut top = Matrix::zero(data, data);
        for r in 0..data {
            for c in 0..data {
                top.set(r, c, vand.get(r, c));
            }
        }
        let top_inv = top
            .inverse(&gf)
            .expect("vandermonde top square is invertible");
        let encode_matrix = vand.mul(&gf, &top_inv);
        Ok(ReedSolomon {
            data,
            parity,
            gf,
            encode_matrix,
        })
    }

    /// Number of data shards.
    pub fn data_shards(&self) -> usize {
        self.data
    }

    /// Number of parity shards.
    pub fn parity_shards(&self) -> usize {
        self.parity
    }

    /// Total shard count.
    pub fn total_shards(&self) -> usize {
        self.data + self.parity
    }

    // ------------------------------------------------------------------
    // Flat-buffer fast path
    // ------------------------------------------------------------------

    /// Fills the parity rows of `set` in place from its data rows.
    ///
    /// `set` must have `total_shards()` rows with the data shards already in
    /// rows `0..data_shards()`. No shard is copied; each parity row is
    /// accumulated directly in the flat buffer.
    ///
    /// # Errors
    ///
    /// [`RsError::ShapeMismatch`] if `set` has the wrong number of rows.
    pub fn encode_into(&self, set: &mut ShardSet) -> Result<(), RsError> {
        if set.shard_count() != self.total_shards() {
            return Err(RsError::ShapeMismatch);
        }
        for p in 0..self.parity {
            self.derive_parity_row(set, self.data + p);
        }
        Ok(())
    }

    /// Recomputes parity row `row_idx` in place from the (complete) data
    /// rows — the dense linear combination shared by encoding and by
    /// restoring erased parity during reconstruction.
    fn derive_parity_row(&self, set: &mut ShardSet, row_idx: usize) {
        let gf = self.gf;
        set.shard_mut(row_idx).fill(0);
        for c in 0..self.data {
            let coeff = self.encode_matrix.get(row_idx, c);
            if coeff == 0 {
                continue;
            }
            set.with_rows(row_idx, c, |dst, src| gf.mul_acc(dst, src, coeff));
        }
    }

    /// Restores the erased rows of `set` in place; `present[i]` says whether
    /// row `i` still holds its original content.
    ///
    /// Unlike the seed path (which decoded all data and re-derived **every**
    /// parity shard), this recomputes **only** the erased rows: erased data
    /// rows come from the inverted sub-matrix over the first `data` present
    /// rows, erased parity rows are then re-encoded from the (now complete)
    /// data rows. Rows marked present are never touched.
    ///
    /// # Errors
    ///
    /// * [`RsError::ShapeMismatch`] — wrong row count or `present` arity;
    /// * [`RsError::NotEnoughShards`] — fewer than `data_shards()` present.
    pub fn reconstruct_into(&self, set: &mut ShardSet, present: &[bool]) -> Result<(), RsError> {
        let total = self.total_shards();
        if set.shard_count() != total || present.len() != total {
            return Err(RsError::ShapeMismatch);
        }
        let available: Vec<usize> = (0..total).filter(|&i| present[i]).collect();
        if available.len() < self.data {
            return Err(RsError::NotEnoughShards {
                available: available.len(),
                required: self.data,
            });
        }
        let gf = self.gf;

        let erased_data: Vec<usize> = (0..self.data).filter(|&i| !present[i]).collect();
        if !erased_data.is_empty() {
            // Take the first `data` available rows; the corresponding
            // sub-matrix of the encoding matrix is invertible by design.
            let chosen = &available[..self.data];
            let mut sub = Matrix::zero(self.data, self.data);
            for (r, &shard_idx) in chosen.iter().enumerate() {
                for c in 0..self.data {
                    sub.set(r, c, self.encode_matrix.get(shard_idx, c));
                }
            }
            let inv = sub.inverse(&gf).expect("any data rows are invertible");
            for &d in &erased_data {
                set.shard_mut(d).fill(0);
                for (r, &src) in chosen.iter().enumerate() {
                    let coeff = inv.get(d, r);
                    if coeff == 0 {
                        continue;
                    }
                    // `d` is erased, `src` is present, so the rows differ.
                    set.with_rows(d, src, |dst, s| gf.mul_acc(dst, s, coeff));
                }
            }
        }

        for p in 0..self.parity {
            let row_idx = self.data + p;
            if present[row_idx] {
                continue;
            }
            self.derive_parity_row(set, row_idx);
        }
        Ok(())
    }

    /// Splits `payload` across the data rows of a fresh [`ShardSet`]
    /// (zero-padded, shard length `ceil(len / data)`, min 1) and encodes in
    /// place — the zero-copy counterpart of [`ReedSolomon::encode_bytes`].
    pub fn encode_bytes_flat(&self, payload: &[u8]) -> ShardSet {
        let mut set = ShardSet::from_payload(payload, self.data, self.total_shards());
        self.encode_into(&mut set)
            .expect("shape is valid by construction");
        set
    }

    /// Recovers the first `original_len` payload bytes in place and returns
    /// them as a borrowed slice of `set`'s data region.
    ///
    /// # Errors
    ///
    /// Propagates [`ReedSolomon::reconstruct_into`] errors, plus
    /// [`RsError::ShapeMismatch`] when `original_len` exceeds the data
    /// region.
    pub fn decode_bytes_flat<'s>(
        &self,
        set: &'s mut ShardSet,
        present: &[bool],
        original_len: usize,
    ) -> Result<&'s [u8], RsError> {
        if original_len > self.data * set.shard_len() {
            return Err(RsError::ShapeMismatch);
        }
        // Only the data region is needed; erased parity rows still get
        // restored (cheaply) so `set` is left fully consistent.
        self.reconstruct_into(set, present)?;
        Ok(&set.flat()[..original_len])
    }

    // ------------------------------------------------------------------
    // Owning (seed-compatible) API
    // ------------------------------------------------------------------

    /// Encodes `data` shards into `data + parity` shards (data first).
    ///
    /// # Errors
    ///
    /// [`RsError::ShapeMismatch`] if the number of input shards differs from
    /// `data_shards()` or the shards have unequal lengths.
    pub fn encode(&self, data_shards: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, RsError> {
        if data_shards.len() != self.data {
            return Err(RsError::ShapeMismatch);
        }
        let len = data_shards[0].len();
        if data_shards.iter().any(|s| s.len() != len) {
            return Err(RsError::ShapeMismatch);
        }
        let gf = self.gf;
        let mut out: Vec<Vec<u8>> = Vec::with_capacity(self.total_shards());
        out.extend_from_slice(data_shards);
        for p in 0..self.parity {
            // Borrow the matrix row directly — the seed path `to_vec`ed it
            // on every call.
            let row = self.encode_matrix.row(self.data + p);
            let mut shard = vec![0u8; len];
            for (c, &coeff) in row.iter().enumerate() {
                gf.mul_acc(&mut shard, &data_shards[c], coeff);
            }
            out.push(shard);
        }
        Ok(out)
    }

    /// Reconstructs **all** shards from any `data` present shards.
    ///
    /// Input is one `Option<Vec<u8>>` per shard position (length
    /// `total_shards()`); `None` marks an erased shard.
    ///
    /// # Errors
    ///
    /// * [`RsError::ShapeMismatch`] — wrong arity or inconsistent lengths.
    /// * [`RsError::NotEnoughShards`] — fewer than `data_shards()` present.
    pub fn reconstruct(&self, shards: &[Option<Vec<u8>>]) -> Result<Vec<Vec<u8>>, RsError> {
        let (mut set, present) = self.gather(shards)?;
        self.reconstruct_into(&mut set, &present)?;
        Ok(set.to_vecs())
    }

    /// Convenience: splits `payload` into `data` equal shards (zero-padded)
    /// and encodes. Shard size is `ceil(len / data)`.
    pub fn encode_bytes(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        self.encode_bytes_flat(payload).to_vecs()
    }

    /// Convenience: inverse of [`ReedSolomon::encode_bytes`], truncating the
    /// zero padding to `original_len`.
    ///
    /// # Errors
    ///
    /// Propagates [`ReedSolomon::reconstruct`] errors.
    pub fn decode_bytes(
        &self,
        shards: &[Option<Vec<u8>>],
        original_len: usize,
    ) -> Result<Vec<u8>, RsError> {
        let (mut set, present) = self.gather(shards)?;
        Ok(self
            .decode_bytes_flat(&mut set, &present, original_len)?
            .to_vec())
    }

    /// Validates a vector of optional shard *slices* (`None` = erased) and
    /// packs the present ones into a flat [`ShardSet`] plus a presence
    /// mask — the standard prelude to [`ReedSolomon::reconstruct_into`] /
    /// [`ReedSolomon::decode_bytes_flat`] for callers whose survivors live
    /// in borrowed buffers (network receive paths, segment reassembly).
    ///
    /// # Errors
    ///
    /// * [`RsError::ShapeMismatch`] — wrong arity or inconsistent shard
    ///   lengths among the survivors;
    /// * [`RsError::NotEnoughShards`] — no shard present at all (later
    ///   stages report the precise shortfall against `data_shards()`).
    pub fn gather_slices(
        &self,
        shards: &[Option<&[u8]>],
    ) -> Result<(ShardSet, Vec<bool>), RsError> {
        let total = self.total_shards();
        if shards.len() != total {
            return Err(RsError::ShapeMismatch);
        }
        let available: Vec<usize> = (0..total).filter(|&i| shards[i].is_some()).collect();
        if available.is_empty() {
            return Err(RsError::NotEnoughShards {
                available: 0,
                required: self.data,
            });
        }
        let len = shards[available[0]].unwrap().len();
        if available.iter().any(|&i| shards[i].unwrap().len() != len) {
            return Err(RsError::ShapeMismatch);
        }
        let mut set = ShardSet::new(total, len);
        let mut present = vec![false; total];
        for (i, s) in shards.iter().enumerate() {
            if let Some(v) = s {
                set.shard_mut(i).copy_from_slice(v);
                present[i] = true;
            }
        }
        Ok((set, present))
    }

    /// Owning-API counterpart of [`ReedSolomon::gather_slices`].
    fn gather(&self, shards: &[Option<Vec<u8>>]) -> Result<(ShardSet, Vec<bool>), RsError> {
        let borrowed: Vec<Option<&[u8]>> = shards.iter().map(|s| s.as_deref()).collect();
        self.gather_slices(&borrowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn parameter_validation() {
        assert!(ReedSolomon::new(0, 1).is_err());
        assert!(ReedSolomon::new(1, 0).is_err());
        assert!(ReedSolomon::new(200, 56).is_err());
        assert!(ReedSolomon::new(200, 55).is_ok());
    }

    #[test]
    fn systematic_prefix() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 16]).collect();
        let all = rs.encode(&data).unwrap();
        assert_eq!(&all[..4], &data[..]);
    }

    #[test]
    fn recovers_from_every_loss_pattern_up_to_parity() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let payload = sample_payload(57);
        let encoded = rs.encode_bytes(&payload);
        let total = rs.total_shards();
        // All loss patterns of exactly `parity` erasures.
        for a in 0..total {
            for b in a + 1..total {
                for c in b + 1..total {
                    let mut got: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
                    got[a] = None;
                    got[b] = None;
                    got[c] = None;
                    let rec = rs.decode_bytes(&got, payload.len()).unwrap();
                    assert_eq!(rec, payload, "pattern ({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn reconstruct_into_only_touches_erased_rows() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let payload = sample_payload(200);
        let mut set = rs.encode_bytes_flat(&payload);
        let pristine = set.clone();
        // Poison one erased row; everything else must come back identical
        // without being rewritten.
        let mut present = vec![true; 7];
        present[2] = false;
        set.shard_mut(2).fill(0xEE);
        rs.reconstruct_into(&mut set, &present).unwrap();
        assert_eq!(set, pristine);
    }

    #[test]
    fn fails_beyond_parity() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let encoded = rs.encode_bytes(&sample_payload(20));
        let mut got: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        got[0] = None;
        got[1] = None;
        got[2] = None;
        assert_eq!(
            rs.reconstruct(&got),
            Err(RsError::NotEnoughShards {
                available: 3,
                required: 4
            })
        );
    }

    #[test]
    fn half_segments_lost_recoverable() {
        // The paper's §VI-C configuration: recoverable when half the
        // segments are lost => data == parity.
        let rs = ReedSolomon::new(8, 8).unwrap();
        let payload = sample_payload(1000);
        let encoded = rs.encode_bytes(&payload);
        let mut got: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        for i in 0..8 {
            got[i * 2] = None; // lose every other shard = exactly half
        }
        assert_eq!(rs.decode_bytes(&got, payload.len()).unwrap(), payload);
    }

    #[test]
    fn parity_shards_also_reconstructed() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let encoded = rs.encode_bytes(&sample_payload(30));
        let mut got: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
        got[3] = None; // lose one parity shard
        let rec = rs.reconstruct(&got).unwrap();
        assert_eq!(rec, encoded);
    }

    #[test]
    fn empty_and_tiny_payloads() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        for n in [0usize, 1, 2, 3, 4] {
            let payload = sample_payload(n);
            let encoded = rs.encode_bytes(&payload);
            let got: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
            assert_eq!(rs.decode_bytes(&got, n).unwrap(), payload, "n={n}");
        }
    }

    #[test]
    fn flat_and_owning_encodes_agree() {
        let rs = ReedSolomon::new(5, 3).unwrap();
        let payload = sample_payload(333);
        let flat = rs.encode_bytes_flat(&payload);
        let owned = rs.encode_bytes(&payload);
        assert_eq!(flat.to_vecs(), owned);
    }

    #[test]
    fn shape_mismatch_detected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        assert_eq!(
            rs.encode(&[vec![1, 2], vec![3]]),
            Err(RsError::ShapeMismatch)
        );
        assert_eq!(rs.encode(&[vec![1, 2]]), Err(RsError::ShapeMismatch));
        let bad = vec![Some(vec![1u8, 2]), Some(vec![3u8]), None];
        assert_eq!(rs.reconstruct(&bad), Err(RsError::ShapeMismatch));
        // Flat path: wrong row count.
        let mut set = ShardSet::new(2, 4);
        assert_eq!(rs.encode_into(&mut set), Err(RsError::ShapeMismatch));
        assert_eq!(
            rs.reconstruct_into(&mut set, &[true, true]),
            Err(RsError::ShapeMismatch)
        );
    }

    #[test]
    fn gather_slices_packs_and_masks() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let encoded = rs.encode_bytes(&sample_payload(60));
        let slices: Vec<Option<&[u8]>> = encoded
            .iter()
            .enumerate()
            .map(|(i, s)| (i != 1).then_some(s.as_slice()))
            .collect();
        let (set, present) = rs.gather_slices(&slices).unwrap();
        assert_eq!(present, vec![true, false, true, true, true]);
        assert_eq!(set.shard(0), encoded[0].as_slice());
        assert_eq!(set.shard(1), vec![0u8; set.shard_len()].as_slice());

        // Arity and length mismatches are rejected.
        assert_eq!(rs.gather_slices(&slices[..4]), Err(RsError::ShapeMismatch));
        let short = vec![0u8; encoded[0].len() - 1];
        let mut bad = slices.clone();
        bad[2] = Some(&short);
        assert_eq!(rs.gather_slices(&bad), Err(RsError::ShapeMismatch));
        let none: Vec<Option<&[u8]>> = vec![None; 5];
        assert_eq!(
            rs.gather_slices(&none),
            Err(RsError::NotEnoughShards {
                available: 0,
                required: 3
            })
        );
    }

    #[test]
    fn error_display() {
        let e = RsError::NotEnoughShards {
            available: 1,
            required: 4,
        };
        assert!(e.to_string().contains("1 available"));
    }
}
