//! # fi-store — content-addressed blockstore + persistent HAMT maps
//!
//! The storage substrate behind the engine's Merkle-ized state (DESIGN.md
//! §15). Two layers:
//!
//! * [`Blockstore`] — an abstract content-addressed block space: immutable
//!   byte blocks keyed by their SHA-256 hash. [`MemoryBlockstore`] keeps
//!   blocks on the heap; [`DiskBlockstore`] appends them to a log file so
//!   state can spill past RAM and survive the process.
//! * [`Hamt`] — a copy-on-write hash-array-mapped trie persisted as
//!   blockstore nodes: an untyped `bytes → bytes` map whose root hash is a
//!   cryptographic commitment to its full contents. The node layout is
//!   **canonical** (history-independent): two maps holding the same
//!   key-value pairs have bit-identical roots no matter the insert/delete
//!   order that produced them — which is what lets engines with different
//!   shard counts, ingest widths and store backends agree on one root.
//!
//! Because blocks are keyed by their own hash, structural sharing is free:
//! a map mutation re-writes only the path from the changed leaf to the
//! root (`O(log n)` new nodes), the rest is shared with the previous
//! version. That makes three things cheap by construction:
//!
//! * **time travel** — any flushed root pins a readable historical map;
//! * **incremental snapshots** — the delta between two versions is just
//!   the set of nodes reachable from the new root but not the old one
//!   ([`Hamt::diff_new_nodes`]);
//! * **inclusion proofs** — the node path from root to leaf proves one
//!   key's value against the root hash ([`Hamt::prove`] /
//!   [`Hamt::verify_proof`]) without shipping the map.
//!
//! Everything decodes defensively: truncated, bit-flipped or
//! cycle-forming node bytes surface as typed [`StoreError`]s, never a
//! panic or an infinite loop.
//!
//! ```
//! use fi_store::{Blockstore, Hamt, MemoryBlockstore};
//!
//! let store = MemoryBlockstore::new();
//! let mut map = Hamt::new();
//! map.set(&store, b"alice", b"7").unwrap();
//! map.set(&store, b"bob", b"3").unwrap();
//! let root = map.flush(&store).unwrap();
//!
//! // Any later reader can pin the root and prove a single entry.
//! let proof = Hamt::prove(&store, root, b"alice").unwrap().unwrap();
//! assert_eq!(Hamt::verify_proof(root, b"alice", &proof).unwrap(), b"7");
//! ```

mod blockstore;
mod hamt;

pub use blockstore::{block_hash, Blockstore, DiskBlockstore, MemoryBlockstore, StoreError};
pub use hamt::Hamt;
