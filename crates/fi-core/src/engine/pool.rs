//! A persistent scoped worker pool for the engine's parallel phases.
//!
//! Before this module, every parallel phase — batch-ingest staging
//! (`engine/batch.rs`) and the audit verify fan-out (`engine/audit.rs`) —
//! spawned fresh OS threads with `std::thread::scope` per call. At
//! 100k-file scale that is a thread spawn per block batch per worker, pure
//! overhead on the hot path. [`WorkerPool`] spawns its workers **once**
//! (lazily, on the first parallel phase an engine runs) and parks them on
//! a condvar between submissions; a phase submits a batch of borrowed
//! closures and blocks on a [`Ticket`] until the pool has run them all.
//!
//! # Scoped-job safety
//!
//! Jobs may borrow from the submitting stack frame (`&Engine` fields,
//! segment slices, per-job output slots) even though the workers are
//! long-lived threads. Soundness rests on the ticket: [`WorkerPool::submit`]
//! erases the job lifetime, and the returned [`Ticket`] **blocks until
//! every job has finished — on `wait` or on drop, panics included** — so
//! no job can outlive the frame it borrows from. The one obligation on
//! callers is not to leak the ticket (`std::mem::forget`); the API is
//! crate-internal precisely so that invariant stays reviewable at every
//! call site.
//!
//! A panicking job does not poison the pool: the panic is caught on the
//! worker, carried on the ticket, and resumed on the submitting thread
//! once all of the batch's jobs have settled — the same observable
//! behaviour as a panicking `std::thread::scope` child.
//!
//! The pool is shared, not duplicated, across [`Engine`](super::Engine)
//! clones (replay bases, snapshots under test, bench reference engines):
//! cloning an engine clones an `Arc` handle, so a process never holds more
//! worker threads than one engine would. The pool holds no consensus
//! state — snapshots and replays ignore it entirely.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::{self, JoinHandle};

/// A submitted job: the lifetime-erased closure plus the completion ticket
/// it reports to.
type Job = (Box<dyn FnOnce() + Send>, Arc<TicketState>);

/// A batch of scoped jobs as accepted by [`WorkerPool::submit`].
pub(crate) type JobBatch<'scope> = Vec<Box<dyn FnOnce() + Send + 'scope>>;

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// Completion state for one submitted batch.
struct TicketState {
    /// Jobs not yet finished; the submitter blocks while this is non-zero.
    remaining: Mutex<usize>,
    done: Condvar,
    /// First captured job panic, resumed on the submitting thread.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl TicketState {
    fn job_finished(&self, panic_payload: Option<Box<dyn std::any::Any + Send>>) {
        if let Some(payload) = panic_payload {
            let mut slot = self.panic.lock().unwrap();
            slot.get_or_insert(payload);
        }
        let mut remaining = self.remaining.lock().unwrap();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// A persistent pool of parked worker threads executing scoped job
/// batches. See the module docs for the lifetime-safety argument.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    workers: usize,
}

impl WorkerPool {
    /// Spawns `workers` (at least one) parked worker threads.
    pub(crate) fn spawn(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("fi-engine-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn engine pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            handles,
            workers,
        }
    }

    /// The number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.workers
    }

    /// Enqueues a batch of scoped jobs and returns the ticket that gates
    /// their borrows: the caller's frame cannot be left (return **or**
    /// unwind) before the ticket has blocked on completion.
    pub(crate) fn submit<'scope>(&self, jobs: JobBatch<'scope>) -> Ticket<'scope> {
        let state = Arc::new(TicketState {
            remaining: Mutex::new(jobs.len()),
            done: Condvar::new(),
            panic: Mutex::new(None),
        });
        if !jobs.is_empty() {
            let mut pool_state = self.shared.state.lock().unwrap();
            for job in jobs {
                // SAFETY: the 'scope lifetime is erased, but the job cannot
                // outlive 'scope: `Ticket` blocks until the job has run —
                // in `wait`, or in `Drop` on unwind — and `Ticket<'scope>`
                // itself cannot outlive the borrows it guards.
                let job: Box<dyn FnOnce() + Send + 'static> =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, _>(job) };
                pool_state.queue.push_back((job, Arc::clone(&state)));
            }
            drop(pool_state);
            self.shared.work_ready.notify_all();
        }
        Ticket {
            state,
            _scope: PhantomData,
        }
    }

    /// Submits a batch and blocks until every job has run, resuming the
    /// first job panic (if any) on this thread.
    pub(crate) fn run(&self, jobs: JobBatch<'_>) {
        self.submit(jobs).wait();
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shared.state.lock().unwrap().shutdown = true;
        self.shared.work_ready.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (job, ticket) = {
            let mut state = shared.state.lock().unwrap();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    break job;
                }
                if state.shutdown {
                    return;
                }
                state = shared.work_ready.wait(state).unwrap();
            }
        };
        let panic_payload = panic::catch_unwind(AssertUnwindSafe(job)).err();
        ticket.job_finished(panic_payload);
    }
}

/// Completion latch for one submitted batch. Blocks on [`Ticket::wait`]
/// or on drop until every job of the batch has run; dropping (not
/// leaking) the ticket before the borrowed data goes out of scope is what
/// makes the pool's lifetime erasure sound.
pub(crate) struct Ticket<'scope> {
    state: Arc<TicketState>,
    /// Invariant over `'scope`: the ticket must not be coerced to a
    /// shorter guard than the borrows its jobs hold.
    _scope: PhantomData<&'scope mut &'scope ()>,
}

impl Ticket<'_> {
    /// Blocks until every job of the batch has run, then resumes the
    /// first job panic (if any) on this thread.
    pub(crate) fn wait(self) {
        // Drop does the blocking and the panic propagation.
        drop(self);
    }

    fn block_until_done(&self) {
        let mut remaining = self.state.remaining.lock().unwrap();
        while *remaining > 0 {
            remaining = self.state.done.wait(remaining).unwrap();
        }
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        self.block_until_done();
        if let Some(payload) = self.state.panic.lock().unwrap().take() {
            if !thread::panicking() {
                panic::resume_unwind(payload);
            }
        }
    }
}

/// The engine's lazily spawned, clone-shared pool handle.
///
/// [`Engine`](super::Engine) derives `Clone`, and engines are cloned
/// freely (replay bases, bench references); the handle makes that cheap
/// and thread-bounded: the pool spawns on the first parallel phase, and
/// clones share the already-spawned pool through an `Arc`.
pub(crate) struct PoolHandle {
    slot: OnceLock<Arc<WorkerPool>>,
}

impl PoolHandle {
    pub(crate) fn new() -> Self {
        PoolHandle {
            slot: OnceLock::new(),
        }
    }

    /// The shared pool, spawning `workers` threads on first use.
    pub(crate) fn get(&self, workers: usize) -> Arc<WorkerPool> {
        Arc::clone(
            self.slot
                .get_or_init(|| Arc::new(WorkerPool::spawn(workers))),
        )
    }
}

impl Clone for PoolHandle {
    fn clone(&self) -> Self {
        let slot = OnceLock::new();
        if let Some(pool) = self.slot.get() {
            let _ = slot.set(Arc::clone(pool));
        }
        PoolHandle { slot }
    }
}

impl std::fmt::Debug for PoolHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolHandle")
            .field("spawned", &self.slot.get().is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_scoped_jobs_to_completion() {
        let pool = WorkerPool::spawn(4);
        let counter = AtomicUsize::new(0);
        let jobs: JobBatch<'_> = (0..100)
            .map(|_| {
                Box::new(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn jobs_write_into_disjoint_borrowed_slots() {
        let pool = WorkerPool::spawn(3);
        let mut out = vec![0usize; 32];
        let jobs: JobBatch<'_> = out
            .iter_mut()
            .enumerate()
            .map(|(i, slot)| {
                Box::new(move || {
                    *slot = i * i;
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(jobs);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn pool_survives_sequential_batches() {
        let pool = WorkerPool::spawn(2);
        for round in 0..50 {
            let sum = AtomicUsize::new(0);
            let sum_ref = &sum;
            let jobs: JobBatch<'_> = (0..8)
                .map(|i| {
                    Box::new(move || {
                        sum_ref.fetch_add(i, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(jobs);
            assert_eq!(sum.load(Ordering::Relaxed), 28, "round {round}");
        }
    }

    #[test]
    fn job_panic_propagates_to_submitter() {
        let pool = WorkerPool::spawn(2);
        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![
                Box::new(|| panic!("boom in job")) as Box<dyn FnOnce() + Send>
            ]);
        }));
        assert!(caught.is_err(), "job panic must resume on the submitter");
        // The pool is still usable after a panicking batch.
        let ok = AtomicUsize::new(0);
        pool.run(vec![Box::new(|| {
            ok.store(1, Ordering::Relaxed);
        }) as Box<dyn FnOnce() + Send + '_>]);
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = WorkerPool::spawn(1);
        pool.run(Vec::new());
    }

    #[test]
    fn handle_clones_share_one_pool() {
        let handle = PoolHandle::new();
        let a = handle.get(2);
        let cloned = handle.clone();
        let b = cloned.get(8); // size argument ignored: pool already spawned
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(b.workers(), 2);
    }
}
