//! Large-file segmentation via erasure coding (paper §VI-C).
//!
//! Files bigger than `sizeLimit` would break storage randomness (their
//! allocations might not find space in one draw), so the network requires
//! them to be split: *"we can convert it to a collection of segments by the
//! erasure code, such that each segment's size is upper bounded by
//! sizeLimit. By this operation, the file can still be recovered even if
//! half of the segments are lost. Therefore, we can simply regard each
//! segment as an individual file with value 2·value/k"* (with `k` the
//! number of segments).
//!
//! We use a Reed–Solomon code with `data = parity` shards so any half of
//! the segments reconstructs the file, and assign each segment the value
//! `2·value/segments` rounded up to a `minValue` multiple — so losing the
//! file (≥ half the segments gone) pays out at least the original value.
//!
//! Segments live in a single contiguous [`ShardSet`] flat buffer: encoding
//! writes parity in place, per-segment Merkle commitments hash borrowed
//! slices of the buffer, and reassembly recomputes only the missing
//! segments.

use fi_chain::account::TokenAmount;
use fi_crypto::merkle::MerkleTree;
use fi_crypto::Hash256;
use fi_erasure::{ReedSolomon, RsError, ShardSet};

use crate::params::ProtocolParams;

/// Leaf size used when committing to a segment's content (bytes).
pub const SEGMENT_CHUNK_LEN: usize = 1024;

/// A segmentation plan plus the encoded segment payloads, stored as one
/// flat buffer (data segments first, then parity).
#[derive(Debug, Clone)]
pub struct SegmentedFile {
    /// All segments, contiguous: segment `i` is `shards.shard(i)`.
    pub shards: ShardSet,
    /// Value to declare for each segment (a `minValue` multiple).
    pub segment_value: TokenAmount,
    /// Number of data shards (= parity shards).
    pub data_shards: usize,
    /// Original payload length (needed to strip padding on decode).
    pub original_len: usize,
}

impl SegmentedFile {
    /// Number of segments (`2 × data_shards`).
    pub fn segment_count(&self) -> usize {
        self.shards.shard_count()
    }

    /// Length of each segment in bytes.
    pub fn segment_len(&self) -> usize {
        self.shards.shard_len()
    }

    /// Segment `i` as a borrowed slice of the flat buffer.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn segment(&self, i: usize) -> &[u8] {
        self.shards.shard(i)
    }

    /// Iterates all segments as borrowed slices.
    pub fn segments(&self) -> impl Iterator<Item = &[u8]> {
        self.shards.iter()
    }

    /// Per-segment Merkle commitments (the `merkleRoot` each segment is
    /// registered under), hashed directly from the flat buffer.
    pub fn segment_roots(&self) -> Vec<Hash256> {
        MerkleTree::shard_roots(self.shards.flat(), self.segment_len(), SEGMENT_CHUNK_LEN)
    }
}

/// Errors from segmentation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// The file is small enough to store directly — segmentation refused
    /// to avoid silently doubling storage cost.
    NotNeeded {
        /// File size.
        size: u64,
        /// The configured limit it does not exceed.
        limit: u64,
    },
    /// The file is too large for the maximum shard count (255 for RS over
    /// GF(2^8)).
    TooLarge,
    /// Underlying erasure-code failure.
    Erasure(RsError),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::NotNeeded { size, limit } => {
                write!(
                    f,
                    "file of size {size} fits the size limit {limit}; store directly"
                )
            }
            SegmentError::TooLarge => write!(f, "file exceeds 127 x sizeLimit; cannot segment"),
            SegmentError::Erasure(e) => write!(f, "erasure failure: {e}"),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<RsError> for SegmentError {
    fn from(e: RsError) -> Self {
        SegmentError::Erasure(e)
    }
}

/// Splits `payload` (declared `value`) into erasure-coded segments per
/// §VI-C, encoding in place in one flat allocation.
///
/// # Errors
///
/// * [`SegmentError::NotNeeded`] if the payload already fits `sizeLimit`;
/// * [`SegmentError::TooLarge`] if more than 127 data shards would be
///   needed (RS over GF(2^8) caps total shards at 255).
pub fn segment_file(
    payload: &[u8],
    value: TokenAmount,
    params: &ProtocolParams,
) -> Result<SegmentedFile, SegmentError> {
    let size = payload.len() as u64;
    let limit = params.size_limit;
    if size <= limit {
        return Err(SegmentError::NotNeeded { size, limit });
    }
    let data_shards = size.div_ceil(limit) as usize;
    if data_shards > 127 {
        return Err(SegmentError::TooLarge);
    }
    let rs = ReedSolomon::new(data_shards, data_shards).expect("shard counts validated");
    let shards = rs.encode_bytes_flat(payload);
    let total = shards.shard_count() as u128; // = 2 × data_shards

    // Segment value: 2·value/k rounded UP to a minValue multiple so the
    // insurance property (loss ⇒ payout ≥ value) survives rounding.
    let raw = (2 * value.0).div_ceil(total);
    let min_value = params.min_value.0;
    let segment_value = TokenAmount(raw.div_ceil(min_value) * min_value);

    Ok(SegmentedFile {
        shards,
        segment_value,
        data_shards,
        original_len: payload.len(),
    })
}

/// Reassembles the original payload from surviving segments (`None` =
/// lost). Succeeds whenever at least half the segments survive.
///
/// Survivors are read through borrowed slices (callers keep ownership) and
/// copied once into a contiguous working buffer; only the missing segments
/// are then recomputed.
///
/// # Errors
///
/// [`SegmentError::Erasure`] when fewer than `data_shards` survive or a
/// survivor has the wrong length.
pub fn reassemble_file(
    segmented: &SegmentedFile,
    received: &[Option<&[u8]>],
) -> Result<Vec<u8>, SegmentError> {
    let rs = ReedSolomon::new(segmented.data_shards, segmented.data_shards)
        .expect("shard counts validated at segmentation");
    // Survivors whose length disagrees with the plan are as useless as
    // erasures (gather only checks consistency *among* survivors).
    let len = segmented.segment_len();
    if received.iter().flatten().any(|s| s.len() != len) {
        return Err(SegmentError::Erasure(RsError::ShapeMismatch));
    }
    let (mut set, present) = rs.gather_slices(received)?;
    let payload = rs.decode_bytes_flat(&mut set, &present, segmented.original_len)?;
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> ProtocolParams {
        ProtocolParams {
            size_limit: 100,
            ..ProtocolParams::default()
        }
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 13 % 251) as u8).collect()
    }

    #[test]
    fn small_files_rejected() {
        let p = params();
        let err = segment_file(&payload(100), TokenAmount(1_000), &p).unwrap_err();
        assert_eq!(
            err,
            SegmentError::NotNeeded {
                size: 100,
                limit: 100
            }
        );
    }

    #[test]
    fn segments_respect_size_limit() {
        let p = params();
        let seg = segment_file(&payload(950), TokenAmount(10_000), &p).unwrap();
        assert_eq!(seg.data_shards, 10);
        assert_eq!(seg.segment_count(), 20);
        for s in seg.segments() {
            assert!(s.len() as u64 <= p.size_limit);
        }
        // Flat layout: the data region reproduces the payload prefix.
        assert_eq!(&seg.shards.flat()[..950], &payload(950)[..]);
    }

    #[test]
    fn survives_loss_of_any_half() {
        let p = params();
        let data = payload(500);
        let seg = segment_file(&data, TokenAmount(10_000), &p).unwrap();
        let n = seg.segment_count();
        // Lose the first half; recover from the second.
        let mut received: Vec<Option<&[u8]>> = seg.segments().map(Some).collect();
        for slot in received.iter_mut().take(n / 2) {
            *slot = None;
        }
        assert_eq!(reassemble_file(&seg, &received).unwrap(), data);

        // One more loss and recovery fails.
        received[n / 2] = None;
        assert!(matches!(
            reassemble_file(&seg, &received),
            Err(SegmentError::Erasure(_))
        ));
    }

    #[test]
    fn insurance_value_preserved() {
        // Losing the file means ≥ half the segments are gone; their summed
        // compensation must be at least the original value.
        let p = params();
        for (size, value) in [(201usize, 7_000u128), (999, 123_000), (150, 1_000)] {
            let seg = segment_file(&payload(size), TokenAmount(value), &p).unwrap();
            let half = seg.segment_count() as u128 / 2;
            let payout_when_lost = half * seg.segment_value.0;
            assert!(
                payout_when_lost >= value,
                "size={size} value={value}: payout {payout_when_lost}"
            );
            // Value is a minValue multiple (File_Add requirement).
            assert_eq!(seg.segment_value.0 % p.min_value.0, 0);
        }
    }

    #[test]
    fn too_large_rejected() {
        let p = params();
        let huge = vec![0u8; (127 * 100 + 1) as usize];
        assert_eq!(
            segment_file(&huge, TokenAmount(1_000), &p).unwrap_err(),
            SegmentError::TooLarge
        );
    }

    #[test]
    fn segment_roots_commit_to_segment_content() {
        let p = params();
        let seg = segment_file(&payload(500), TokenAmount(10_000), &p).unwrap();
        let roots = seg.segment_roots();
        assert_eq!(roots.len(), seg.segment_count());
        for (i, root) in roots.iter().enumerate() {
            assert_eq!(
                *root,
                MerkleTree::from_flat_chunks(seg.segment(i), SEGMENT_CHUNK_LEN).root(),
                "segment {i}"
            );
        }
    }

    #[test]
    fn wrong_length_survivor_rejected() {
        let p = params();
        let seg = segment_file(&payload(300), TokenAmount(5_000), &p).unwrap();
        let short = vec![0u8; seg.segment_len() - 1];
        let mut received: Vec<Option<&[u8]>> = seg.segments().map(Some).collect();
        received[0] = Some(&short);
        assert_eq!(
            reassemble_file(&seg, &received).unwrap_err(),
            SegmentError::Erasure(RsError::ShapeMismatch)
        );
    }
}
