//! Cryptographic substrate for the FileInsurer reproduction.
//!
//! FileInsurer (ICDCS 2022) relies on a handful of cryptographic primitives
//! that, in a production deployment, would come from a hardened library:
//!
//! * a collision-resistant hash for file Merkle roots and content IDs
//!   (we implement **SHA-256** from the FIPS 180-4 specification),
//! * **Merkle trees** with inclusion proofs, used by file commitments and by
//!   the simulated Proof-of-Spacetime challenge/response in `fi-porep`,
//! * a **deterministic pseudorandom generator** seeded from a short random
//!   beacon (paper §III-F): we implement the ChaCha20 block function and wrap
//!   it as [`rng::DetRng`], and
//! * a **random beacon** abstraction ([`beacon::RandomBeacon`]) producing one
//!   unpredictable-but-agreed 32-byte value per consensus round.
//!
//! Everything here is deterministic and dependency-free so that whole-network
//! simulations are reproducible bit-for-bit from a single seed.
//!
//! # Example
//!
//! ```
//! use fi_crypto::{sha256, merkle::MerkleTree, rng::DetRng};
//!
//! let digest = sha256(b"hello world");
//! assert_eq!(digest.to_hex().len(), 64);
//!
//! let leaves: Vec<&[u8]> = vec![b"a", b"b", b"c"];
//! let tree = MerkleTree::from_leaves(leaves.iter());
//! let proof = tree.prove(2).unwrap();
//! assert!(proof.verify(&tree.root(), b"c"));
//!
//! let mut rng = DetRng::from_seed_label(42, "docs");
//! let x = rng.next_u64();
//! let y = DetRng::from_seed_label(42, "docs").next_u64();
//! assert_eq!(x, y); // fully deterministic
//! ```

pub mod beacon;
pub mod hash;
pub mod merkle;
pub mod rng;
pub mod sha256;

pub use beacon::RandomBeacon;
pub use hash::{keyed_hash, Hash256, KeyedDomain};
pub use merkle::{MerklePathBatch, MerkleProof, MerkleTree};
pub use rng::{DetRng, DetRngState};
pub use sha256::sha256;
