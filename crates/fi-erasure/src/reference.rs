//! Frozen scalar reference implementation of the erasure path.
//!
//! This module is a faithful snapshot of the **seed** implementation before
//! the flat-buffer/table-accelerated overhaul: log/antilog scalar
//! multiplication with a per-byte zero branch, cloning `encode`, and a
//! `reconstruct` that re-derives *every* parity shard. It exists for two
//! reasons and must not be "optimised":
//!
//! 1. **Differential testing** — `tests/differential.rs` pins the fast path
//!    byte-for-byte against this code across random payloads, coefficients,
//!    and erasure patterns.
//! 2. **Honest benchmarking** — `fi-bench` measures speedups against this
//!    code rather than asserting them.
//!
//! It deliberately rebuilds its own private tables so a bug in the shared
//! [`crate::Gf256`] tables cannot cancel out of the comparison.

/// Seed-style GF(2^8) with private log/antilog tables.
pub struct RefGf256 {
    exp: [u8; 512],
    log: [u16; 256],
}

impl Default for RefGf256 {
    fn default() -> Self {
        Self::new()
    }
}

fn slow_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1B;
        }
        b >>= 1;
    }
    acc
}

impl RefGf256 {
    /// Builds the tables (seed construction, generator 0x03).
    pub fn new() -> Self {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x = 1u8;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x;
            log[x as usize] = i as u16;
            x = slow_mul(x, 0x03);
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        RefGf256 { exp, log }
    }

    /// Scalar multiplication via log/antilog, with the zero branch.
    #[inline(always)]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[self.log[a as usize] as usize + self.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "zero has no inverse in GF(256)");
        self.exp[255 - self.log[a as usize] as usize]
    }

    /// The seed inner loop: per-byte, two lookups plus a branch.
    pub fn mul_acc(&self, dst: &mut [u8], src: &[u8], coeff: u8) {
        assert_eq!(dst.len(), src.len(), "length mismatch");
        if coeff == 0 {
            return;
        }
        if coeff == 1 {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= s;
            }
            return;
        }
        let log_c = self.log[coeff as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            if *s != 0 {
                *d ^= self.exp[log_c + self.log[*s as usize] as usize];
            }
        }
    }
}

/// Seed-style systematic Reed–Solomon (clone-heavy, full re-encode on
/// reconstruct).
pub struct RefReedSolomon {
    data: usize,
    parity: usize,
    gf: RefGf256,
    /// `(data+parity) × data`, row-major.
    encode_matrix: Vec<u8>,
}

impl RefReedSolomon {
    /// Builds the seed Vandermonde-derived systematic matrix.
    ///
    /// # Panics
    ///
    /// Panics on invalid parameters (`data == 0`, `parity == 0`, or
    /// `data + parity > 255`); the reference exists only for valid codes.
    pub fn new(data: usize, parity: usize) -> Self {
        assert!(
            data > 0 && parity > 0 && data + parity <= 255,
            "bad parameters"
        );
        let gf = RefGf256::new();
        let total = data + parity;
        let mut vand = vec![0u8; total * data];
        for (r, point) in (1..=total as u32).enumerate() {
            let mut p = 1u8;
            for c in 0..data {
                vand[r * data + c] = p;
                p = gf.mul(p, point as u8);
            }
        }
        let top: Vec<u8> = vand[..data * data].to_vec();
        let top_inv = invert(&gf, &top, data);
        // encode_matrix = vand × top_inv.
        let mut m = vec![0u8; total * data];
        for i in 0..total {
            for k in 0..data {
                let a = vand[i * data + k];
                if a == 0 {
                    continue;
                }
                for j in 0..data {
                    m[i * data + j] ^= gf.mul(a, top_inv[k * data + j]);
                }
            }
        }
        RefReedSolomon {
            data,
            parity,
            gf,
            encode_matrix: m,
        }
    }

    /// Seed `encode`: clones the data shards, `to_vec`s each matrix row.
    pub fn encode(&self, data_shards: &[Vec<u8>]) -> Vec<Vec<u8>> {
        assert_eq!(data_shards.len(), self.data, "shard arity");
        let len = data_shards[0].len();
        let mut out: Vec<Vec<u8>> = data_shards.to_vec();
        for p in 0..self.parity {
            let row = self.encode_matrix
                [(self.data + p) * self.data..(self.data + p + 1) * self.data]
                .to_vec();
            let mut shard = vec![0u8; len];
            for (c, &coeff) in row.iter().enumerate() {
                self.gf.mul_acc(&mut shard, &data_shards[c], coeff);
            }
            out.push(shard);
        }
        out
    }

    /// Seed `encode_bytes`: per-byte div/mod payload split, then `encode`.
    pub fn encode_bytes(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        let shard_len = payload.len().div_ceil(self.data).max(1);
        let mut data_shards = vec![vec![0u8; shard_len]; self.data];
        for (i, &b) in payload.iter().enumerate() {
            data_shards[i / shard_len][i % shard_len] = b;
        }
        self.encode(&data_shards)
    }

    /// Seed `reconstruct`: decodes the data shards (cloning when all are
    /// present), then re-encodes **all** parity regardless of what was lost.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `data` shards are present; the reference is
    /// only exercised on recoverable patterns.
    pub fn reconstruct(&self, shards: &[Option<Vec<u8>>]) -> Vec<Vec<u8>> {
        assert_eq!(shards.len(), self.data + self.parity, "shard arity");
        let available: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        assert!(available.len() >= self.data, "not enough shards");
        let len = shards[available[0]].as_ref().unwrap().len();

        let data_present = (0..self.data).all(|i| shards[i].is_some());
        let data_shards: Vec<Vec<u8>> = if data_present {
            (0..self.data)
                .map(|i| shards[i].as_ref().unwrap().clone())
                .collect()
        } else {
            let chosen = &available[..self.data];
            let mut sub = vec![0u8; self.data * self.data];
            for (r, &shard_idx) in chosen.iter().enumerate() {
                for c in 0..self.data {
                    sub[r * self.data + c] = self.encode_matrix[shard_idx * self.data + c];
                }
            }
            let inv = invert(&self.gf, &sub, self.data);
            (0..self.data)
                .map(|d| {
                    let mut shard = vec![0u8; len];
                    for (r, &shard_idx) in chosen.iter().enumerate() {
                        let coeff = inv[d * self.data + r];
                        self.gf
                            .mul_acc(&mut shard, shards[shard_idx].as_ref().unwrap(), coeff);
                    }
                    shard
                })
                .collect()
        };

        self.encode(&data_shards)
    }
}

/// Gauss–Jordan inversion of an `n × n` row-major matrix (seed algorithm).
fn invert(gf: &RefGf256, m: &[u8], n: usize) -> Vec<u8> {
    let mut a = m.to_vec();
    let mut inv = vec![0u8; n * n];
    for i in 0..n {
        inv[i * n + i] = 1;
    }
    for col in 0..n {
        let pivot = (col..n)
            .find(|&r| a[r * n + col] != 0)
            .expect("reference matrix is invertible");
        if pivot != col {
            for j in 0..n {
                a.swap(col * n + j, pivot * n + j);
                inv.swap(col * n + j, pivot * n + j);
            }
        }
        let p_inv = gf.inv(a[col * n + col]);
        for j in 0..n {
            a[col * n + j] = gf.mul(a[col * n + j], p_inv);
            inv[col * n + j] = gf.mul(inv[col * n + j], p_inv);
        }
        for r in 0..n {
            if r == col {
                continue;
            }
            let factor = a[r * n + col];
            if factor == 0 {
                continue;
            }
            for j in 0..n {
                let v = gf.mul(factor, a[col * n + j]);
                a[r * n + j] ^= v;
                let v = gf.mul(factor, inv[col * n + j]);
                inv[r * n + j] ^= v;
            }
        }
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_round_trips() {
        let rs = RefReedSolomon::new(4, 3);
        let payload: Vec<u8> = (0..57).map(|i| (i * 31 % 251) as u8).collect();
        let encoded = rs.encode_bytes(&payload);
        assert_eq!(encoded.len(), 7);
        let mut got: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
        got[0] = None;
        got[2] = None;
        got[5] = None;
        let rec = rs.reconstruct(&got);
        assert_eq!(rec, encoded);
    }
}
