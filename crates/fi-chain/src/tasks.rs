//! The pending list: consensus-scheduled future tasks.
//!
//! Paper Fig. 1: `pendingList: {time → [task, task, ...]}` — *"When a new
//! time point t is reached, the tasks in the pending list whose timestamp is
//! t will be automatically executed by the network"*. Tasks are generated
//! only through network consensus and must have a prepaid gas bound
//! (§III-B.4); the gas side lives in [`crate::gas`], the scheduling side
//! here.
//!
//! Generic over the task type so `fi-core` can schedule its `Auto_*`
//! variants and tests can schedule plain markers.

use std::collections::BTreeMap;

/// Discrete consensus time (block timestamp units).
pub type Time = u64;

/// A time-ordered task queue with stable FIFO order within a timestamp.
///
/// # Example
///
/// ```
/// use fi_chain::PendingList;
/// let mut pl = PendingList::new();
/// pl.schedule(10, "check-proof");
/// pl.schedule(5, "check-alloc");
/// pl.schedule(10, "refresh");
/// assert_eq!(pl.pop_due(9), vec![(5, "check-alloc")]);
/// assert_eq!(pl.pop_due(10), vec![(10, "check-proof"), (10, "refresh")]);
/// assert!(pl.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct PendingList<T> {
    queue: BTreeMap<Time, Vec<T>>,
    len: usize,
}

impl<T> Default for PendingList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PendingList<T> {
    /// Creates an empty pending list.
    pub fn new() -> Self {
        PendingList {
            queue: BTreeMap::new(),
            len: 0,
        }
    }

    /// Schedules `task` for execution at `time`.
    pub fn schedule(&mut self, time: Time, task: T) {
        self.queue.entry(time).or_default().push(task);
        self.len += 1;
    }

    /// Removes and returns every task due at or before `now`, in
    /// `(time, insertion)` order.
    pub fn pop_due(&mut self, now: Time) -> Vec<(Time, T)> {
        let mut due = Vec::new();
        // split_off keeps keys > now in the original map.
        let mut later = self.queue.split_off(&(now + 1));
        std::mem::swap(&mut self.queue, &mut later);
        for (time, tasks) in later {
            for task in tasks {
                due.push((time, task));
            }
        }
        self.len -= due.len();
        due
    }

    /// Earliest scheduled time, if any.
    pub fn next_time(&self) -> Option<Time> {
        self.queue.keys().next().copied()
    }

    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no tasks are scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over `(time, task)` without removing.
    pub fn iter(&self) -> impl Iterator<Item = (Time, &T)> {
        self.queue
            .iter()
            .flat_map(|(t, tasks)| tasks.iter().map(move |task| (*t, task)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_timestamp() {
        let mut pl = PendingList::new();
        for i in 0..5 {
            pl.schedule(7, i);
        }
        let due: Vec<i32> = pl.pop_due(7).into_iter().map(|(_, t)| t).collect();
        assert_eq!(due, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_due_is_inclusive_and_ordered() {
        let mut pl = PendingList::new();
        pl.schedule(30, "c");
        pl.schedule(10, "a");
        pl.schedule(20, "b");
        let due = pl.pop_due(20);
        assert_eq!(due, vec![(10, "a"), (20, "b")]);
        assert_eq!(pl.len(), 1);
        assert_eq!(pl.next_time(), Some(30));
    }

    #[test]
    fn pop_before_everything_returns_empty() {
        let mut pl = PendingList::new();
        pl.schedule(10, ());
        assert!(pl.pop_due(9).is_empty());
        assert_eq!(pl.len(), 1);
    }

    #[test]
    fn time_zero_tasks() {
        let mut pl = PendingList::new();
        pl.schedule(0, "genesis");
        assert_eq!(pl.pop_due(0), vec![(0, "genesis")]);
    }

    #[test]
    fn iter_does_not_consume() {
        let mut pl = PendingList::new();
        pl.schedule(1, "x");
        pl.schedule(2, "y");
        let seen: Vec<_> = pl.iter().map(|(t, s)| (t, *s)).collect();
        assert_eq!(seen, vec![(1, "x"), (2, "y")]);
        assert_eq!(pl.len(), 2);
    }

    #[test]
    fn property_pop_due_ordered_and_conserving() {
        // Seeded randomized cases (DetRng — no registry deps available).
        for seed in 0..128u64 {
            let mut rng = fi_crypto::DetRng::from_seed_label(seed, "tasks-prop");
            let schedule: Vec<(u64, u32)> = (0..rng.below(80))
                .map(|_| (rng.below(100), rng.below(1000) as u32))
                .collect();
            let mut checkpoints: Vec<u64> = (0..1 + rng.below(9)).map(|_| rng.below(120)).collect();
            let mut pl = PendingList::new();
            for &(t, task) in &schedule {
                pl.schedule(t, task);
            }
            checkpoints.sort_unstable();
            let mut popped = Vec::new();
            for &cp in &checkpoints {
                for (t, task) in pl.pop_due(cp) {
                    assert!(t <= cp, "seed {seed}: late pop");
                    popped.push((t, task));
                }
            }
            // Time-ordered overall.
            for pair in popped.windows(2) {
                assert!(pair[0].0 <= pair[1].0, "seed {seed}");
            }
            // Conservation: popped + remaining = scheduled.
            assert_eq!(popped.len() + pl.len(), schedule.len(), "seed {seed}");
            // Everything still queued is after the last checkpoint.
            let last = *checkpoints.last().unwrap();
            for (t, _) in pl.iter() {
                assert!(t > last, "seed {seed}");
            }
        }
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut pl = PendingList::new();
        pl.schedule(10, 1);
        assert_eq!(pl.pop_due(10), vec![(10, 1)]);
        // Re-arming at a later time after popping (the CheckProof cycle).
        pl.schedule(20, 2);
        pl.schedule(15, 3);
        assert_eq!(pl.pop_due(25), vec![(15, 3), (20, 2)]);
        assert!(pl.is_empty());
    }
}
