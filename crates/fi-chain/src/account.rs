//! Token ledger: accounts, balances, and conservation-audited flows.
//!
//! All FileInsurer money — deposits pledged per sector, storage rent,
//! traffic fees, prepaid gas, compensation payouts — moves through this
//! ledger. The ledger tracks total supply so tests can assert the
//! conservation invariant: tokens are created only by explicit `mint`
//! (client funding in simulations) and destroyed only by explicit `burn`
//! (e.g. Filecoin-style deposit burning in the baseline comparison).

use std::collections::HashMap;

/// An account identifier.
///
/// Low ids are reserved by convention for system accounts (see
/// [`AccountId::TREASURY`]); simulations hand out ids from
/// [`AccountId::FIRST_USER`] upward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AccountId(pub u64);

impl AccountId {
    /// The network treasury: holds confiscated deposits pending
    /// compensation payouts, and collects rent before distribution.
    pub const TREASURY: AccountId = AccountId(0);
    /// First id available for ordinary participants.
    pub const FIRST_USER: AccountId = AccountId(16);
}

impl std::fmt::Display for AccountId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "acct#{}", self.0)
    }
}

/// A token amount in base units.
///
/// Arithmetic helpers are checked: protocol code uses
/// [`TokenAmount::saturating_sub`] / [`TokenAmount::checked_sub`] rather
/// than raw subtraction so accounting bugs surface as errors, not wraps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default, Hash)]
pub struct TokenAmount(pub u128);

impl TokenAmount {
    /// Zero tokens.
    pub const ZERO: TokenAmount = TokenAmount(0);

    /// Checked addition.
    pub fn checked_add(self, rhs: TokenAmount) -> Option<TokenAmount> {
        self.0.checked_add(rhs.0).map(TokenAmount)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, rhs: TokenAmount) -> Option<TokenAmount> {
        self.0.checked_sub(rhs.0).map(TokenAmount)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: TokenAmount) -> TokenAmount {
        TokenAmount(self.0.saturating_sub(rhs.0))
    }

    /// Scales by a ratio `num/den`, rounding down.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn mul_ratio(self, num: u128, den: u128) -> TokenAmount {
        assert!(den != 0, "zero denominator");
        TokenAmount(self.0 * num / den)
    }

    /// `true` when zero.
    pub fn is_zero(&self) -> bool {
        self.0 == 0
    }
}

impl std::ops::Add for TokenAmount {
    type Output = TokenAmount;
    fn add(self, rhs: TokenAmount) -> TokenAmount {
        TokenAmount(self.0.checked_add(rhs.0).expect("token overflow"))
    }
}

impl std::ops::AddAssign for TokenAmount {
    fn add_assign(&mut self, rhs: TokenAmount) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub for TokenAmount {
    type Output = TokenAmount;
    fn sub(self, rhs: TokenAmount) -> TokenAmount {
        TokenAmount(self.0.checked_sub(rhs.0).expect("token underflow"))
    }
}

impl std::iter::Sum for TokenAmount {
    fn sum<I: Iterator<Item = TokenAmount>>(iter: I) -> TokenAmount {
        iter.fold(TokenAmount::ZERO, |a, b| a + b)
    }
}

impl std::fmt::Display for TokenAmount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}tok", self.0)
    }
}

/// Errors from ledger operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerError {
    /// The source account lacks the funds.
    InsufficientFunds {
        /// Account that was debited.
        account: AccountId,
        /// Requested amount.
        requested: TokenAmount,
        /// Available balance.
        available: TokenAmount,
    },
}

impl std::fmt::Display for LedgerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LedgerError::InsufficientFunds {
                account,
                requested,
                available,
            } => write!(
                f,
                "insufficient funds in {account}: requested {requested}, available {available}"
            ),
        }
    }
}

impl std::error::Error for LedgerError {}

/// The token ledger.
///
/// # Example
///
/// ```
/// use fi_chain::account::{AccountId, Ledger, TokenAmount};
/// let mut l = Ledger::new();
/// l.mint(AccountId(20), TokenAmount(10));
/// assert!(l.transfer(AccountId(20), AccountId(21), TokenAmount(20)).is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Ledger {
    balances: HashMap<AccountId, TokenAmount>,
    total_supply: TokenAmount,
    total_burned: TokenAmount,
}

impl Ledger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Ledger::default()
    }

    /// Balance of `account` (zero for unknown accounts).
    pub fn balance(&self, account: AccountId) -> TokenAmount {
        self.balances.get(&account).copied().unwrap_or_default()
    }

    /// Tokens currently in circulation.
    pub fn total_supply(&self) -> TokenAmount {
        self.total_supply
    }

    /// Cumulative tokens destroyed by [`Ledger::burn`].
    pub fn total_burned(&self) -> TokenAmount {
        self.total_burned
    }

    /// Creates `amount` new tokens in `account`.
    pub fn mint(&mut self, account: AccountId, amount: TokenAmount) {
        *self.balances.entry(account).or_default() += amount;
        self.total_supply += amount;
    }

    /// Destroys up to `amount` tokens from `account`.
    ///
    /// # Errors
    ///
    /// [`LedgerError::InsufficientFunds`] if the balance is too small;
    /// nothing is burned in that case.
    pub fn burn(&mut self, account: AccountId, amount: TokenAmount) -> Result<(), LedgerError> {
        self.debit(account, amount)?;
        self.total_supply = self.total_supply - amount;
        self.total_burned += amount;
        Ok(())
    }

    /// Moves `amount` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// [`LedgerError::InsufficientFunds`] if `from` lacks the funds; the
    /// ledger is unchanged in that case.
    pub fn transfer(
        &mut self,
        from: AccountId,
        to: AccountId,
        amount: TokenAmount,
    ) -> Result<(), LedgerError> {
        self.debit(from, amount)?;
        *self.balances.entry(to).or_default() += amount;
        Ok(())
    }

    /// Transfers as much of `amount` as `from` can afford; returns the
    /// amount actually moved. Used for best-effort compensation payouts.
    pub fn transfer_up_to(
        &mut self,
        from: AccountId,
        to: AccountId,
        amount: TokenAmount,
    ) -> TokenAmount {
        let moved = self.balance(from).min(amount);
        if !moved.is_zero() {
            self.transfer(from, to, moved).expect("bounded by balance");
        }
        moved
    }

    fn debit(&mut self, account: AccountId, amount: TokenAmount) -> Result<(), LedgerError> {
        let balance = self.balance(account);
        match balance.checked_sub(amount) {
            Some(rest) => {
                self.balances.insert(account, rest);
                Ok(())
            }
            None => Err(LedgerError::InsufficientFunds {
                account,
                requested: amount,
                available: balance,
            }),
        }
    }

    /// Rebuilds a ledger from snapshot parts: the non-zero balances plus
    /// the cumulative supply/burn counters. The inverse of enumerating
    /// [`Ledger::iter`], [`Ledger::total_supply`] and
    /// [`Ledger::total_burned`].
    ///
    /// # Errors
    ///
    /// Returns a description when the balances overflow or don't sum to
    /// `total_supply` (conservation — the [`Ledger::audit`] invariant).
    /// Never panics: snapshot restoration feeds it untrusted bytes.
    pub fn restore(
        balances: impl IntoIterator<Item = (AccountId, TokenAmount)>,
        total_supply: TokenAmount,
        total_burned: TokenAmount,
    ) -> Result<Self, &'static str> {
        let balances: HashMap<AccountId, TokenAmount> = balances.into_iter().collect();
        let mut sum = TokenAmount::ZERO;
        for balance in balances.values() {
            sum = sum
                .checked_add(*balance)
                .ok_or("ledger balances overflow the token range")?;
        }
        if sum != total_supply {
            return Err("ledger balances do not sum to the declared total supply");
        }
        Ok(Ledger {
            balances,
            total_supply,
            total_burned,
        })
    }

    /// Iterates over `(account, balance)` pairs with non-zero balance.
    pub fn iter(&self) -> impl Iterator<Item = (AccountId, TokenAmount)> + '_ {
        self.balances
            .iter()
            .filter(|(_, b)| !b.is_zero())
            .map(|(a, b)| (*a, *b))
    }

    /// Audits conservation: the sum of all balances must equal the total
    /// supply. Called by tests after every scenario.
    pub fn audit(&self) -> bool {
        let sum: TokenAmount = self.balances.values().copied().sum();
        sum == self.total_supply
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `restore` consumes untrusted snapshot bytes: inconsistent or
    /// overflowing balances must come back as typed errors, not panics.
    #[test]
    fn restore_rejects_bad_balances_without_panicking() {
        let ok = Ledger::restore(
            [
                (AccountId(1), TokenAmount(60)),
                (AccountId(2), TokenAmount(40)),
            ],
            TokenAmount(100),
            TokenAmount(7),
        )
        .expect("consistent parts restore");
        assert_eq!(ok.balance(AccountId(1)), TokenAmount(60));
        assert_eq!(ok.total_burned(), TokenAmount(7));
        assert!(ok.audit());

        let wrong_sum = Ledger::restore(
            [(AccountId(1), TokenAmount(60))],
            TokenAmount(100),
            TokenAmount::ZERO,
        );
        assert!(wrong_sum.unwrap_err().contains("sum"));

        // Two u128::MAX balances would overflow the conservation sum — a
        // crafted snapshot (with a recomputed self-hash) can reach this.
        let overflow = Ledger::restore(
            [
                (AccountId(1), TokenAmount(u128::MAX)),
                (AccountId(2), TokenAmount(u128::MAX)),
            ],
            TokenAmount(u128::MAX),
            TokenAmount::ZERO,
        );
        assert!(overflow.unwrap_err().contains("overflow"));
    }

    #[test]
    fn mint_transfer_burn_flow() {
        let mut l = Ledger::new();
        let (a, b) = (AccountId(20), AccountId(21));
        l.mint(a, TokenAmount(100));
        l.transfer(a, b, TokenAmount(40)).unwrap();
        assert_eq!(l.balance(a), TokenAmount(60));
        assert_eq!(l.balance(b), TokenAmount(40));
        l.burn(b, TokenAmount(10)).unwrap();
        assert_eq!(l.total_supply(), TokenAmount(90));
        assert_eq!(l.total_burned(), TokenAmount(10));
        assert!(l.audit());
    }

    #[test]
    fn insufficient_funds_leaves_state_unchanged() {
        let mut l = Ledger::new();
        let (a, b) = (AccountId(20), AccountId(21));
        l.mint(a, TokenAmount(5));
        let err = l.transfer(a, b, TokenAmount(6)).unwrap_err();
        assert_eq!(
            err,
            LedgerError::InsufficientFunds {
                account: a,
                requested: TokenAmount(6),
                available: TokenAmount(5)
            }
        );
        assert_eq!(l.balance(a), TokenAmount(5));
        assert_eq!(l.balance(b), TokenAmount::ZERO);
        assert!(l.burn(a, TokenAmount(6)).is_err());
        assert!(l.audit());
    }

    #[test]
    fn transfer_up_to_caps_at_balance() {
        let mut l = Ledger::new();
        let (a, b) = (AccountId(20), AccountId(21));
        l.mint(a, TokenAmount(30));
        let moved = l.transfer_up_to(a, b, TokenAmount(100));
        assert_eq!(moved, TokenAmount(30));
        assert_eq!(l.balance(a), TokenAmount::ZERO);
        let moved = l.transfer_up_to(a, b, TokenAmount(100));
        assert_eq!(moved, TokenAmount::ZERO);
    }

    #[test]
    fn self_transfer_is_identity() {
        let mut l = Ledger::new();
        let a = AccountId(20);
        l.mint(a, TokenAmount(10));
        l.transfer(a, a, TokenAmount(10)).unwrap();
        assert_eq!(l.balance(a), TokenAmount(10));
        assert!(l.audit());
    }

    #[test]
    fn token_amount_arithmetic() {
        assert_eq!(TokenAmount(7).mul_ratio(2, 3), TokenAmount(4));
        assert_eq!(
            TokenAmount(5).saturating_sub(TokenAmount(9)),
            TokenAmount::ZERO
        );
        assert_eq!(TokenAmount(5).checked_sub(TokenAmount(9)), None);
        let sum: TokenAmount = [TokenAmount(1), TokenAmount(2)].into_iter().sum();
        assert_eq!(sum, TokenAmount(3));
    }

    #[test]
    #[should_panic(expected = "token underflow")]
    fn raw_subtraction_panics_on_underflow() {
        let _ = TokenAmount(1) - TokenAmount(2);
    }
}
