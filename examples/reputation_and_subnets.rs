//! Extensions beyond the core protocol: value-level subnetworks (§VI-D)
//! and the §VII reputation open problem, prototyped.
//!
//! Run with `cargo run --example reputation_and_subnets`.

use fi_core::reputation::{ReputationBook, ReputationParams};
use fi_core::subnet::SubnetRouter;
use fileinsurer::prelude::*;

fn main() {
    // ---- §VI-D: value-level subnetworks --------------------------------
    println!("== value-level subnetworks (§VI-D) ==");
    let base = ProtocolParams {
        k: 4,
        ..ProtocolParams::default()
    };
    let mut router = SubnetRouter::new(base, 3, 10).unwrap();
    let provider = AccountId(100);
    let client = AccountId(200);
    for level in 0..router.level_count() {
        let engine = router.level_mut(level);
        engine.fund(provider, TokenAmount(u128::MAX / 8));
        engine.fund(client, TokenAmount(10_000_000_000));
        engine.sector_register(provider, 6_400).unwrap();
        println!("  level {level}: minValue = {}", engine.params().min_value);
    }
    for value in [1_000u128, 25_000, 3_000_000] {
        let (without, with) = router.replica_saving(TokenAmount(value));
        let id = router
            .file_add(client, 8, TokenAmount(value), sha256(&value.to_be_bytes()))
            .unwrap();
        println!(
            "  file of value {value:>9}: level {}, {} replicas (flat design would need {})",
            id.level,
            router.level(id.level).file(id.file).unwrap().cp,
            without.max(with)
        );
    }

    // ---- §VII: reputation prototype -------------------------------------
    println!("\n== provider reputation (§VII open problem) ==");
    let mut book = ReputationBook::new(ReputationParams::default());
    let reliable = AccountId(1);
    let flaky = AccountId(2);
    for round in 0..25 {
        book.record_proof(reliable);
        if round % 3 == 0 {
            book.record_miss(flaky);
        } else {
            book.record_proof(flaky);
        }
    }
    println!(
        "  reliable provider: score {:>7.2}, capacity factor {:.2}",
        book.score(reliable),
        book.factor(reliable)
    );
    println!(
        "  flaky provider:    score {:>7.2}, capacity factor {:.2}",
        book.score(flaky),
        book.factor(flaky)
    );
    println!(
        "  a 640-unit sector weighs {} vs {} in RandomSector()",
        book.weighted_capacity(reliable, 640),
        book.weighted_capacity(flaky, 640)
    );
    println!("\nreputation shifts placement away from unreliable providers while");
    println!("never excluding them (clamped factor), preserving the i.i.d. analysis.");
}
