//! §VI-E: refreshing defeats selfish storage providers.
//!
//! A *selfish* provider stores files (collects rent) but refuses retrieval
//! service. The paper's argument: any protocol with **fixed** placements
//! leaves `α^k` of files permanently controlled by selfish providers
//! (every replica selfish), while FileInsurer's refresh keeps placements
//! moving — *"no single file will be completely controlled by the selfish
//! storage provider for a long time"*.
//!
//! The experiment tracks, over refresh epochs, the set of files whose
//! replicas are all on selfish sectors:
//!
//! * **static placement** — the initially captured files stay captured
//!   forever (the capture set is constant);
//! * **refreshing placement** — capture is transient: the captured set
//!   churns, and the *long-term* fraction of epochs a given file spends
//!   captured matches the memoryless `α^k` — no file is permanently down.

use fi_crypto::DetRng;

use crate::report::{f3, TextTable};

/// Result of one selfish-provider run.
#[derive(Debug, Clone)]
pub struct SelfishOutcome {
    /// Fraction of selfish capacity `α`.
    pub alpha: f64,
    /// Replicas per file `k`.
    pub k: u32,
    /// Fraction of files captured at epoch 0.
    pub initial_captured: f64,
    /// Fraction captured at the final epoch.
    pub final_captured: f64,
    /// Fraction of files that were captured in **every** epoch
    /// (permanently unavailable).
    pub permanently_captured: f64,
    /// Mean per-epoch captured fraction (should approximate `α^k`).
    pub mean_captured: f64,
}

/// Simulates `epochs` refresh epochs of `files` files with `k` replicas
/// over `ns` sectors of which `alpha` are selfish.
///
/// `refresh = false` freezes placements after epoch 0 (the fixed-placement
/// strawman of §VI-E); `refresh = true` re-places one random replica per
/// file per epoch (the FileInsurer dynamic).
pub fn run(
    files: usize,
    ns: usize,
    k: u32,
    alpha: f64,
    epochs: u32,
    refresh: bool,
    seed: u64,
) -> SelfishOutcome {
    let selfish_cut = (ns as f64 * alpha) as usize;
    let is_selfish = |sector: usize| sector < selfish_cut;
    let mut rng = DetRng::from_seed_label(seed, "selfish");

    // Initial i.i.d. placement.
    let mut locations: Vec<Vec<usize>> = (0..files)
        .map(|_| (0..k).map(|_| rng.index(ns)).collect())
        .collect();

    let captured = |locs: &[Vec<usize>]| -> Vec<bool> {
        locs.iter()
            .map(|l| l.iter().all(|&s| is_selfish(s)))
            .collect()
    };

    let first = captured(&locations);
    let initial_captured = first.iter().filter(|&&c| c).count() as f64 / files as f64;
    let mut always = first.clone();
    let mut total_captured: f64 = initial_captured;

    for _ in 1..epochs {
        if refresh {
            for locs in locations.iter_mut() {
                let idx = rng.index(locs.len());
                locs[idx] = rng.index(ns);
            }
        }
        let now = captured(&locations);
        for (a, &c) in always.iter_mut().zip(&now) {
            *a = *a && c;
        }
        total_captured += now.iter().filter(|&&c| c).count() as f64 / files as f64;
    }

    let final_set = captured(&locations);
    SelfishOutcome {
        alpha,
        k,
        initial_captured,
        final_captured: final_set.iter().filter(|&&c| c).count() as f64 / files as f64,
        permanently_captured: always.iter().filter(|&&c| c).count() as f64 / files as f64,
        mean_captured: total_captured / epochs as f64,
    }
}

/// Renders a static-vs-refresh comparison over several `α` values.
pub fn render_comparison(files: usize, ns: usize, k: u32, epochs: u32, seed: u64) -> String {
    let mut table = TextTable::new(vec![
        "alpha",
        "alpha^k",
        "static: permanently captured",
        "refresh: permanently captured",
        "refresh: mean captured/epoch",
    ]);
    for &alpha in &[0.1, 0.2, 0.3, 0.5] {
        let fixed = run(files, ns, k, alpha, epochs, false, seed);
        let moving = run(files, ns, k, alpha, epochs, true, seed + 1);
        table.row(vec![
            format!("{alpha:.1}"),
            format!("{:.5}", alpha.powi(k as i32)),
            f3(fixed.permanently_captured),
            f3(moving.permanently_captured),
            format!("{:.5}", moving.mean_captured),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_placement_captures_alpha_to_k_forever() {
        let out = run(20_000, 500, 3, 0.3, 50, false, 1);
        let expect = 0.3f64.powi(3);
        // Initial capture ≈ α^k and it never heals.
        assert!(
            (out.initial_captured - expect).abs() < 0.01,
            "initial {} vs α^k {expect}",
            out.initial_captured
        );
        assert_eq!(out.permanently_captured, out.initial_captured);
        assert_eq!(out.final_captured, out.initial_captured);
    }

    #[test]
    fn refresh_eliminates_permanent_capture() {
        let out = run(20_000, 500, 3, 0.3, 50, true, 2);
        // Transient capture stays near α^k on average…
        assert!(
            (out.mean_captured - 0.3f64.powi(3)).abs() < 0.01,
            "mean {}",
            out.mean_captured
        );
        // …but essentially no file is captured across all 50 epochs.
        assert!(
            out.permanently_captured < 0.001,
            "permanent {}",
            out.permanently_captured
        );
    }

    #[test]
    fn higher_k_reduces_capture() {
        let k2 = run(20_000, 500, 2, 0.3, 20, true, 3);
        let k5 = run(20_000, 500, 5, 0.3, 20, true, 3);
        assert!(k5.mean_captured < k2.mean_captured / 5.0);
    }

    #[test]
    fn render_contains_all_alphas() {
        let text = render_comparison(2_000, 100, 3, 10, 4);
        for a in ["0.1", "0.2", "0.3", "0.5"] {
            assert!(text.contains(a));
        }
    }
}
