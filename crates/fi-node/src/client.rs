//! The workload driver: a chain-watching client/provider wallet.
//!
//! A [`ClientDriver`] is itself a replaying follower — it keeps a replica
//! engine fed by the proposer's sealed blocks — and derives its next
//! transactions from that view, exactly the way `fi_sim::harness` sweeps
//! derive provider actions from engine state: pending replica transfers
//! become `File_Confirm` submissions
//! ([`fi_sim::harness::pending_confirm_candidates`]), held replicas become
//! periodic `File_Prove`s ([`fi_sim::harness::held_replica_candidates`]),
//! and the client account mixes in `File_Add`s, gas-charged `File_Get`
//! reads and occasional discards. Every submission goes to the proposer's
//! mempool over the lossy link with bounded retransmit, so the blocks the
//! pipeline produces are realistic mixes of all five shard-local op kinds
//! plus `File_Add`/`AdvanceTo` barriers.
//!
//! Because the replica view lags the chain by the network latency, the
//! driver naturally produces the awkward traffic a real mempool sees:
//! re-submissions of already-committed confirms (rejected as duplicates or
//! failing at commit), proofs racing the proof cycle, and fee-ordered
//! bursts.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::Engine;
use fi_core::ops::Op;
use fi_core::types::SectorId;
use fi_crypto::{sha256, DetRng, Hash256};
use fi_net::world::{Ctx, NodeIdx, Process, Retransmitter, RetryEvent};
use fi_sim::harness::{held_replica_candidates, pending_confirm_candidates};

use crate::node::{NodeMsg, ReplayMode, SealedBlock, RETX_TAG_BASE};

/// Shape of the generated workload.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Submit a `File_Add` every this many rounds (0 disables adds).
    pub add_every_rounds: u64,
    /// Stop adding after this many files.
    pub max_files: u64,
    /// Size of each added file.
    pub file_size: u64,
    /// Sweep `File_Prove`s every this many rounds (match the proof cycle).
    pub prove_every_rounds: u64,
    /// Per-round probability of a `File_Get` on a random live file.
    pub get_prob: f64,
    /// Per-round probability of discarding a random live file.
    pub discard_prob: f64,
}

/// Rounds before the driver may re-submit an identical op (see
/// [`ClientDriver`]'s dedup field): longer than the view lag plus a
/// round-trip, shorter than a proof cycle so recurring proofs re-admit.
pub const DEDUP_WINDOW_ROUNDS: u64 = 8;

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            add_every_rounds: 2,
            max_files: 40,
            file_size: 4,
            prove_every_rounds: 10,
            get_prob: 0.3,
            discard_prob: 0.02,
        }
    }
}

/// What the driver submitted, readable after a run.
#[derive(Debug, Default)]
pub struct ClientReport {
    /// Transactions submitted (first transmissions, not retries).
    pub txs_submitted: u64,
    /// Submissions whose retransmit budget ran out unacknowledged.
    pub txs_given_up: u64,
    /// Blocks applied to the replica view.
    pub blocks_applied: u64,
}

/// The chain-watching workload generator.
pub struct ClientDriver {
    replica: Engine,
    proposer: NodeIdx,
    retx: Retransmitter<NodeMsg>,
    /// Provider account owning each sector (from the shared genesis).
    sector_owner: HashMap<SectorId, AccountId>,
    client: AccountId,
    nonces: HashMap<AccountId, u64>,
    /// Op digests submitted recently (digest → submission round). A
    /// duplicate submission is rejected at admission and spends its nonce
    /// as a mempool tombstone — harmless for liveness, but pure waste —
    /// so the driver only re-submits an identical op after
    /// [`DEDUP_WINDOW_ROUNDS`], by which time its earlier copy has either
    /// committed (and left the pool) or been dropped.
    recent: HashMap<Hash256, u64>,
    next_key: u64,
    next_round: u64,
    buffer: std::collections::BTreeMap<u64, SealedBlock>,
    rng: DetRng,
    workload: WorkloadConfig,
    files_added: u64,
    report: Rc<RefCell<ClientReport>>,
}

impl ClientDriver {
    /// A driver watching `proposer`, acting for `client` and every
    /// provider in `sector_owner`, over its own `genesis` replica.
    pub fn new(
        genesis: Engine,
        proposer: NodeIdx,
        sector_owner: HashMap<SectorId, AccountId>,
        client: AccountId,
        seed: u64,
        workload: WorkloadConfig,
        report: Rc<RefCell<ClientReport>>,
    ) -> Self {
        let interval = genesis.params().block_interval;
        ClientDriver {
            replica: genesis,
            proposer,
            retx: Retransmitter::new(interval.max(2), 24, RETX_TAG_BASE),
            sector_owner,
            client,
            nonces: HashMap::new(),
            recent: HashMap::new(),
            next_key: 0,
            next_round: 1,
            buffer: std::collections::BTreeMap::new(),
            rng: DetRng::from_seed_label(seed, "fi-node/client"),
            workload,
            files_added: 0,
            report,
        }
    }

    /// Submits `op` unless an identical one is still inside the dedup
    /// window (a duplicate would be rejected at admission, wasting the
    /// nonce — see the `recent` field).
    fn submit(&mut self, ctx: &mut Ctx<'_, NodeMsg>, round: u64, from: AccountId, op: Op) {
        let digest = op.digest();
        if let Some(&at) = self.recent.get(&digest) {
            if round.saturating_sub(at) < DEDUP_WINDOW_ROUNDS {
                return;
            }
        }
        self.recent.insert(digest, round);
        let nonce = self.nonces.entry(from).or_insert(0);
        let tx = crate::mempool::Tx {
            from,
            nonce: *nonce,
            fee: TokenAmount(1 + self.rng.below(1_000) as u128),
            op,
        };
        *nonce += 1;
        let key = self.next_key;
        self.next_key += 1;
        let bytes = tx.wire_bytes();
        self.retx.send(
            ctx,
            self.proposer,
            key,
            NodeMsg::SubmitTx { key, tx },
            bytes,
        );
        self.report.borrow_mut().txs_submitted += 1;
    }

    /// Derives this round's submissions from the freshly-advanced replica.
    fn act(&mut self, ctx: &mut Ctx<'_, NodeMsg>, round: u64) {
        // New files from the client account.
        if self.workload.add_every_rounds > 0
            && round.is_multiple_of(self.workload.add_every_rounds)
            && self.files_added < self.workload.max_files
        {
            self.files_added += 1;
            let op = Op::FileAdd {
                client: self.client,
                size: self.workload.file_size,
                value: self.replica.params().min_value,
                merkle_root: sha256(format!("node-file-{round}-{}", self.files_added).as_bytes()),
            };
            self.submit(ctx, round, self.client, op);
        }
        // Confirm every transfer the replica still shows pending. Some of
        // these are already committed on-chain (the view lags); those fail
        // admission as duplicates or fail at commit — realistic traffic.
        let confirms: Vec<(AccountId, Op)> = pending_confirm_candidates(&self.replica)
            .into_iter()
            .filter_map(|(f, i, s)| {
                let owner = *self.sector_owner.get(&s)?;
                Some((
                    owner,
                    Op::FileConfirm {
                        caller: owner,
                        file: f,
                        index: i,
                        sector: s,
                    },
                ))
            })
            .collect();
        for (owner, op) in confirms {
            self.submit(ctx, round, owner, op);
        }
        // Periodic proofs for everything held.
        if self.workload.prove_every_rounds > 0
            && round.is_multiple_of(self.workload.prove_every_rounds)
        {
            let proofs: Vec<(AccountId, Op)> = held_replica_candidates(&self.replica)
                .into_iter()
                .filter_map(|(f, i, s)| {
                    let owner = *self.sector_owner.get(&s)?;
                    Some((
                        owner,
                        Op::FileProve {
                            caller: owner,
                            file: f,
                            index: i,
                            sector: s,
                        },
                    ))
                })
                .collect();
            for (owner, op) in proofs {
                self.submit(ctx, round, owner, op);
            }
        }
        // Occasional reads and discards on random live files.
        let live = self.replica.file_ids();
        if !live.is_empty() {
            if self.rng.bernoulli(self.workload.get_prob) {
                let file = live[self.rng.index(live.len())];
                self.submit(
                    ctx,
                    round,
                    self.client,
                    Op::FileGet {
                        caller: self.client,
                        file,
                    },
                );
            }
            if live.len() > 4 && self.rng.bernoulli(self.workload.discard_prob) {
                let file = live[self.rng.index(live.len())];
                self.submit(
                    ctx,
                    round,
                    self.client,
                    Op::FileDiscard {
                        caller: self.client,
                        file,
                    },
                );
            }
        }
    }

    fn apply_ready(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        while let Some(block) = self.buffer.remove(&self.next_round) {
            for op in block.ops.iter().cloned() {
                let _ = self.replica.apply(op);
            }
            debug_assert_eq!(self.replica.state_root(), block.state_root);
            let round = block.round;
            self.next_round += 1;
            self.report.borrow_mut().blocks_applied += 1;
            // Bound the dedup memory: anything past the window can go.
            self.recent
                .retain(|_, &mut at| round.saturating_sub(at) < DEDUP_WINDOW_ROUNDS);
            self.act(ctx, round);
        }
    }

    /// The replica engine, for post-run inspection.
    pub fn replica(&self) -> &Engine {
        &self.replica
    }

    /// The replay mode the driver's replica uses (always op-by-op).
    pub fn mode(&self) -> ReplayMode {
        ReplayMode::OpByOp
    }
}

impl Process<NodeMsg> for ClientDriver {
    fn on_message(&mut self, ctx: &mut Ctx<'_, NodeMsg>, _from: NodeIdx, msg: NodeMsg) {
        match msg {
            NodeMsg::Block(block) => {
                ctx.send(self.proposer, NodeMsg::BlockAck { round: block.round }, 24);
                if block.round >= self.next_round {
                    self.buffer.entry(block.round).or_insert(block);
                    self.apply_ready(ctx);
                }
            }
            NodeMsg::TxAck { key } => {
                self.retx.ack(key);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NodeMsg>, tag: u64) {
        if let Some(RetryEvent::Exhausted { .. }) = self.retx.handle_timer(ctx, tag) {
            self.report.borrow_mut().txs_given_up += 1;
        }
    }
}
