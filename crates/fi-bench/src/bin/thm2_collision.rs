//! Verifies Theorem 2: collision probability bound.

use fi_sim::collision::{render, run};
use fi_sim::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    let (ns, trials) = match scale {
        Scale::Paper => (200, 2_000),
        Scale::Default => (100, 400),
    };
    println!(
        "{}",
        fi_bench::banner(
            "Theorem 2 — collision probability",
            "FileInsurer (ICDCS'22), Theorem 2 / §V-B.2"
        )
    );
    println!("equal-size files filling half of total capacity; event: freeCap <= capacity/8\n");
    let rows = run(&[8, 12, 16, 24, 32, 48, 64, 96, 128], ns, trials, 0x7112);
    println!("{}", render(&rows));
}
