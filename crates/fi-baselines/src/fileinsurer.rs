//! Placement-level FileInsurer model.
//!
//! The full protocol engine lives in `fi-core`; for apples-to-apples
//! corruption experiments against the baselines we model exactly the part
//! the robustness analysis depends on: each file of value `v` stores
//! `k·v/minValue` replicas at i.i.d. capacity-proportional locations
//! (storage randomness), deposits are `γ_deposit` of carried value, and
//! confiscated deposits fully compensate losses.

use fi_crypto::DetRng;

use crate::common::{sample_capacity_weighted, FileSpec, NetworkSpec, Placement};
use crate::{Compensation, DsnModel};

/// FileInsurer at placement granularity.
#[derive(Debug, Clone)]
pub struct FileInsurerModel {
    /// Replicas per unit of value (`k` with `minValue = 1`).
    k: u32,
    /// Deposit ratio `γ_deposit`.
    deposit_ratio: f64,
}

impl FileInsurerModel {
    /// Creates the model with `k` replicas per unit value and the given
    /// deposit ratio.
    pub fn new(k: u32, deposit_ratio: f64) -> Self {
        assert!(k > 0);
        FileInsurerModel { k, deposit_ratio }
    }

    /// Replica count for a file (value in `minValue = 1` units).
    pub fn replica_count(&self, value: f64) -> usize {
        (self.k as f64 * value.max(1.0)).round() as usize
    }
}

impl DsnModel for FileInsurerModel {
    fn name(&self) -> &'static str {
        "FileInsurer"
    }

    fn place(&self, net: &NetworkSpec, files: &[FileSpec], rng: &mut DetRng) -> Placement {
        let locations = files
            .iter()
            .map(|f| sample_capacity_weighted(net, self.replica_count(f.value), rng))
            .collect();
        Placement {
            locations,
            survivors_needed: vec![1; files.len()],
        }
    }

    fn sybil_vulnerable(&self) -> bool {
        false // DRep: every replica is a unique PoRep encoding
    }

    fn provable_robustness(&self) -> bool {
        true // Theorem 3
    }

    fn compensation(&self) -> Compensation {
        Compensation::Full {
            deposit_ratio: self.deposit_ratio,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{corrupt_nodes, evaluate_loss, AdversaryStrategy};

    #[test]
    fn replicas_scale_with_value() {
        let m = FileInsurerModel::new(10, 0.0046);
        assert_eq!(m.replica_count(1.0), 10);
        assert_eq!(m.replica_count(3.0), 30);
    }

    #[test]
    fn random_half_corruption_loses_almost_nothing() {
        // The headline behaviour: k=20, λ=0.5 random corruption ⇒ expected
        // per-file loss probability 2^-20; with 2000 files the expected
        // number of losses is ~0.002 — we assert zero losses at this seed.
        let m = FileInsurerModel::new(20, 0.0046);
        let net = NetworkSpec::uniform(500, 64);
        let files: Vec<FileSpec> = (0..2000)
            .map(|_| FileSpec {
                size: 1,
                value: 1.0,
            })
            .collect();
        let mut rng = DetRng::from_seed_label(61, "fi-place");
        let placement = m.place(&net, &files, &mut rng);
        let corrupted = corrupt_nodes(
            &net,
            &placement,
            &files,
            0.5,
            AdversaryStrategy::Random,
            false,
            &mut rng,
        );
        let report = evaluate_loss(&net, &placement, &files, &corrupted);
        assert_eq!(report.lost_files, 0, "γ_lost = {}", report.gamma_lost());
    }

    #[test]
    fn full_compensation_within_pool() {
        let m = FileInsurerModel::new(4, 0.01);
        assert_eq!(m.compensate(5.0, 100.0), 5.0);
    }
}
