//! Plain-text table rendering for the experiment binaries.

/// A simple column-aligned text table.
///
/// # Example
///
/// ```
/// use fi_sim::report::TextTable;
/// let mut t = TextTable::new(vec!["Ncp", "Ns", "[1]"]);
/// t.row(vec!["1e5".into(), "20".into(), "0.525".into()]);
/// let s = t.render();
/// assert!(s.contains("Ncp"));
/// assert!(s.contains("0.525"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                line.push_str(&format!("{:<width$}  ", cell, width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * cols;
        out.push_str(&"-".repeat(total.saturating_sub(2)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (for EXPERIMENTS.md appendices).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 decimals (the Table III precision).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float in compact scientific notation.
pub fn sci(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if (0.001..10_000.0).contains(&x.abs()) {
        format!("{x:.4}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = TextTable::new(vec!["a", "long-header"]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["yyyy".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("x"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn arity_checked() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_output() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f3(0.5249), "0.525");
        assert_eq!(sci(0.0), "0");
        assert_eq!(sci(1e-9), "1.00e-9");
        assert_eq!(sci(1.5), "1.5000");
    }
}
