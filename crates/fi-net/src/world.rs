//! The process framework: nodes, typed messages, timers.
//!
//! A [`World`] owns a set of nodes (each a [`Process`] implementation), a
//! shared [`LinkModel`], and the event queue. Nodes interact only through
//! their [`Ctx`] handle — sending messages (subject to link delay/loss) and
//! arming timers — so every run is a deterministic function of the seed.
//!
//! Links may drop messages ([`LinkModel::loss`]) with no built-in
//! acknowledgement, so any protocol that needs at-least-once delivery has
//! to retry. [`Retransmitter`] packages that pattern — send, arm a timer,
//! resend on expiry up to a bound, stop on ack — so protocol actors don't
//! each reimplement it.

use std::collections::BTreeMap;

use fi_crypto::DetRng;

use crate::link::LinkModel;
use crate::sim::{SimTime, Simulator};

/// Index of a node within its world.
pub type NodeIdx = usize;

/// Events processed by the world.
#[derive(Debug)]
enum Event<M> {
    Deliver { from: NodeIdx, to: NodeIdx, msg: M },
    Timer { node: NodeIdx, tag: u64 },
}

/// A node's behaviour.
///
/// All callbacks receive a [`Ctx`] for sending messages and arming timers.
/// Default implementations do nothing, so simple nodes implement only what
/// they need.
pub trait Process<M> {
    /// Called once when the world starts running.
    fn on_start(&mut self, ctx: &mut Ctx<'_, M>) {
        let _ = ctx;
    }

    /// Called when a message from `from` is delivered.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: NodeIdx, msg: M);

    /// Called when a timer armed via [`Ctx::set_timer`] fires.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: u64) {
        let _ = (ctx, tag);
    }
}

/// Per-callback handle: scheduling and randomness for one node.
pub struct Ctx<'a, M> {
    me: NodeIdx,
    now: SimTime,
    sim: &'a mut Simulator<Event<M>>,
    link: &'a LinkModel,
    rng: &'a mut DetRng,
    messages_sent: &'a mut u64,
    messages_lost: &'a mut u64,
}

impl<M> Ctx<'_, M> {
    /// This node's index.
    pub fn me(&self) -> NodeIdx {
        self.me
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Deterministic randomness scoped to the world.
    pub fn rng(&mut self) -> &mut DetRng {
        self.rng
    }

    /// Sends `msg` (`bytes` long on the wire) to `to`; it arrives after the
    /// link delay, or never (lossy links).
    pub fn send(&mut self, to: NodeIdx, msg: M, bytes: u64) {
        *self.messages_sent += 1;
        match self.link.delivery_delay(self.rng, bytes) {
            Some(delay) => {
                let from = self.me;
                self.sim.schedule(delay, Event::Deliver { from, to, msg });
            }
            None => *self.messages_lost += 1,
        }
    }

    /// Arms a timer that fires on this node after `delay` ticks with `tag`.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) {
        let node = self.me;
        self.sim.schedule(delay, Event::Timer { node, tag });
    }
}

/// A simulated network of processes.
pub struct World<M> {
    nodes: Vec<Option<Box<dyn Process<M>>>>,
    sim: Simulator<Event<M>>,
    link: LinkModel,
    rng: DetRng,
    started: bool,
    messages_sent: u64,
    messages_lost: u64,
}

impl<M> std::fmt::Debug for World<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("nodes", &self.nodes.len())
            .field("now", &self.sim.now())
            .field("queued", &self.sim.len())
            .finish()
    }
}

impl<M> World<M> {
    /// Creates a world with one shared link model and a master seed.
    pub fn new(link: LinkModel, seed: u64) -> Self {
        World {
            nodes: Vec::new(),
            sim: Simulator::new(),
            link,
            rng: DetRng::from_seed_label(seed, "fi-net/world"),
            started: false,
            messages_sent: 0,
            messages_lost: 0,
        }
    }

    /// Adds a node; returns its index.
    pub fn add(&mut self, node: impl Process<M> + 'static) -> NodeIdx {
        self.nodes.push(Some(Box::new(node)));
        self.nodes.len() - 1
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Total messages sent (including lost ones).
    pub fn messages_sent(&self) -> u64 {
        self.messages_sent
    }

    /// Messages dropped by the link model.
    pub fn messages_lost(&self) -> u64 {
        self.messages_lost
    }

    /// Runs until the queue drains or `deadline` passes, whichever first.
    /// Returns the number of events processed.
    pub fn run_until(&mut self, deadline: SimTime) -> u64 {
        if !self.started {
            self.started = true;
            for i in 0..self.nodes.len() {
                self.with_node(i, |node, ctx| node.on_start(ctx));
            }
        }
        let mut processed = 0;
        while let Some((_, event)) = self.sim.next_before(deadline) {
            match event {
                Event::Deliver { from, to, msg } => {
                    self.with_node(to, |node, ctx| node.on_message(ctx, from, msg));
                }
                Event::Timer { node, tag } => {
                    self.with_node(node, |n, ctx| n.on_timer(ctx, tag));
                }
            }
            processed += 1;
        }
        if self.sim.now() < deadline {
            self.sim.advance_clock(deadline);
        }
        processed
    }

    /// Borrow of node `idx` for inspection after a run.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    pub fn node(&self, idx: NodeIdx) -> &dyn Process<M> {
        self.nodes[idx].as_deref().expect("node present")
    }

    /// Temporarily extracts a node, builds a `Ctx`, runs `f`.
    fn with_node<F>(&mut self, idx: NodeIdx, f: F)
    where
        F: FnOnce(&mut Box<dyn Process<M>>, &mut Ctx<'_, M>),
    {
        let Some(slot) = self.nodes.get_mut(idx) else {
            return;
        };
        let Some(mut node) = slot.take() else { return };
        let mut ctx = Ctx {
            me: idx,
            now: self.sim.now(),
            sim: &mut self.sim,
            link: &self.link,
            rng: &mut self.rng,
            messages_sent: &mut self.messages_sent,
            messages_lost: &mut self.messages_lost,
        };
        f(&mut node, &mut ctx);
        self.nodes[idx] = Some(node);
    }
}

/// What a [`Retransmitter`] timer expiry meant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryEvent {
    /// The message was sent again; `attempt` transmissions have now been
    /// made (the initial send counts as attempt 1).
    Resent {
        /// The caller's key for the in-flight message.
        key: u64,
        /// Total transmissions so far, including this one.
        attempt: u32,
    },
    /// The retry budget is exhausted: the entry was dropped and delivery is
    /// now the caller's problem (escalate, give up, re-route).
    Exhausted {
        /// The caller's key for the abandoned message.
        key: u64,
        /// The destination that never acknowledged.
        to: NodeIdx,
    },
}

/// Bounded at-least-once delivery over lossy links: sends a message, arms
/// a timer, resends on expiry until acknowledged or a retry budget runs
/// out.
///
/// The helper owns a contiguous timer-tag namespace starting at its
/// `tag_base`: message `key` uses tag `tag_base + key`. Route every
/// [`Process::on_timer`] tag through [`Retransmitter::handle_timer`]
/// first — it returns `None` for tags outside its namespace, so it
/// composes with the caller's own timers as long as those stay below
/// `tag_base`.
///
/// Duplicate deliveries are inherent to retries (an ack can be lost while
/// its message got through); receivers must dedup by key or sequence.
#[derive(Debug)]
pub struct Retransmitter<M> {
    pending: BTreeMap<u64, PendingSend<M>>,
    interval: SimTime,
    max_attempts: u32,
    tag_base: u64,
}

#[derive(Debug)]
struct PendingSend<M> {
    to: NodeIdx,
    msg: M,
    bytes: u64,
    attempts: u32,
}

impl<M: Clone> Retransmitter<M> {
    /// A retransmitter resending every `interval` ticks, giving up after
    /// `max_attempts` total transmissions, owning timer tags
    /// `tag_base..`.
    ///
    /// # Panics
    ///
    /// Panics if `interval == 0` or `max_attempts == 0`.
    pub fn new(interval: SimTime, max_attempts: u32, tag_base: u64) -> Self {
        assert!(interval > 0, "retransmit interval must be positive");
        assert!(max_attempts > 0, "at least one attempt required");
        Retransmitter {
            pending: BTreeMap::new(),
            interval,
            max_attempts,
            tag_base,
        }
    }

    /// Sends `msg` to `to` and tracks it under `key` until
    /// [`Retransmitter::ack`]. Keys must not be re-used while live: the
    /// earlier send's timer stays armed, so both timers would resend the
    /// replacement and burn its attempts budget about twice as fast.
    /// Ack (or let exhaust) a key before assigning it again.
    pub fn send(&mut self, ctx: &mut Ctx<'_, M>, to: NodeIdx, key: u64, msg: M, bytes: u64) {
        ctx.send(to, msg.clone(), bytes);
        self.pending.insert(
            key,
            PendingSend {
                to,
                msg,
                bytes,
                attempts: 1,
            },
        );
        ctx.set_timer(self.interval, self.tag_base + key);
    }

    /// Stops retrying `key`. Returns `false` when the key was not in
    /// flight (already acked, already exhausted, or never sent) — callers
    /// routinely ignore that, since duplicate acks are normal on lossy
    /// links.
    pub fn ack(&mut self, key: u64) -> bool {
        self.pending.remove(&key).is_some()
    }

    /// Routes a timer expiry. Tags below this instance's `tag_base` are
    /// not ours: `None`. Tags for already-acked keys are spent timers:
    /// also `None`. Otherwise resends and re-arms, or reports the budget
    /// exhausted and drops the entry.
    pub fn handle_timer(&mut self, ctx: &mut Ctx<'_, M>, tag: u64) -> Option<RetryEvent> {
        let key = tag.checked_sub(self.tag_base)?;
        let entry = self.pending.get_mut(&key)?;
        if entry.attempts >= self.max_attempts {
            let to = entry.to;
            self.pending.remove(&key);
            return Some(RetryEvent::Exhausted { key, to });
        }
        entry.attempts += 1;
        let attempt = entry.attempts;
        let (to, msg, bytes) = (entry.to, entry.msg.clone(), entry.bytes);
        ctx.send(to, msg, bytes);
        ctx.set_timer(self.interval, tag);
        Some(RetryEvent::Resent { key, attempt })
    }

    /// Messages still awaiting acknowledgement.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts messages; replies until a hop budget is exhausted.
    struct Echo {
        received: Vec<(NodeIdx, u64)>,
        timers: Vec<u64>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                received: Vec::new(),
                timers: Vec::new(),
            }
        }
    }

    impl Process<u64> for Echo {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == 0 {
                ctx.send(1, 3, 100); // 3 hops left
                ctx.set_timer(50, 99);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeIdx, msg: u64) {
            self.received.push((from, msg));
            if msg > 0 {
                ctx.send(from, msg - 1, 100);
            }
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, u64>, tag: u64) {
            self.timers.push(tag);
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        let mut world = World::new(LinkModel::lan(), 1);
        world.add(Echo::new());
        world.add(Echo::new());
        let processed = world.run_until(10_000);
        // 4 deliveries (3,2,1,0) + 1 timer = 5 events.
        assert_eq!(processed, 5);
        assert_eq!(world.messages_sent(), 4);
        assert_eq!(world.messages_lost(), 0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut world = World::new(LinkModel::wan(), 9);
            world.add(Echo::new());
            world.add(Echo::new());
            world.run_until(5_000);
            (world.now(), world.messages_sent())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn lossy_link_drops_some() {
        let mut world = World::new(LinkModel::lossy(0.5), 3);
        // Node 0 sprays messages at node 1 via timers.
        struct Sprayer;
        impl Process<u64> for Sprayer {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                if ctx.me() == 0 {
                    for _ in 0..200 {
                        ctx.send(1, 0, 10);
                    }
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeIdx, _: u64) {}
        }
        world.add(Sprayer);
        world.add(Sprayer);
        world.run_until(100_000);
        assert_eq!(world.messages_sent(), 200);
        assert!(world.messages_lost() > 50 && world.messages_lost() < 150);
    }

    /// Sender pushing `COUNT` keyed messages through a retransmitter;
    /// receiver acks each delivery.
    #[derive(Clone)]
    struct RetryMsg {
        key: u64,
        ack: bool,
    }

    const RETRY_TAG_BASE: u64 = 1 << 32;

    struct RetryReceiver {
        seen: Vec<u64>,
    }

    impl Process<RetryMsg> for RetryReceiver {
        fn on_message(&mut self, ctx: &mut Ctx<'_, RetryMsg>, from: NodeIdx, msg: RetryMsg) {
            if !self.seen.contains(&msg.key) {
                self.seen.push(msg.key);
            }
            ctx.send(
                from,
                RetryMsg {
                    key: msg.key,
                    ack: true,
                },
                16,
            );
        }
    }

    #[test]
    fn retransmitter_delivers_everything_under_heavy_loss() {
        // Nodes are boxed trait objects the world owns, so the test tallies
        // outcomes through thread_locals instead of downcasts.
        use std::cell::RefCell;
        thread_local! {
            static ACKED: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
            static EXHAUSTED: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        }
        struct TallySender {
            retx: Retransmitter<RetryMsg>,
        }
        impl Process<RetryMsg> for TallySender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, RetryMsg>) {
                for key in 0..20 {
                    let msg = RetryMsg { key, ack: false };
                    self.retx.send(ctx, 1, key, msg, 100);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, RetryMsg>, _: NodeIdx, msg: RetryMsg) {
                assert!(msg.ack, "the sender only ever receives acks");
                if self.retx.ack(msg.key) {
                    ACKED.with(|a| a.borrow_mut().push(msg.key));
                }
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, RetryMsg>, tag: u64) {
                if let Some(RetryEvent::Exhausted { key, .. }) = self.retx.handle_timer(ctx, tag) {
                    EXHAUSTED.with(|e| e.borrow_mut().push(key));
                }
            }
        }
        ACKED.with(|a| a.borrow_mut().clear());
        EXHAUSTED.with(|e| e.borrow_mut().clear());
        let mut world = World::new(LinkModel::lossy(0.4), 11);
        world.add(TallySender {
            retx: Retransmitter::new(50, 16, RETRY_TAG_BASE),
        });
        world.add(RetryReceiver { seen: Vec::new() });
        world.run_until(1_000_000);
        let acked = ACKED.with(|a| a.borrow().clone());
        let exhausted = EXHAUSTED.with(|e| e.borrow().clone());
        assert_eq!(acked.len(), 20, "all 20 keys acknowledged: {acked:?}");
        assert!(
            exhausted.is_empty(),
            "budget of 16 never exhausted at 40% loss"
        );
        assert!(
            world.messages_lost() > 0,
            "the link actually dropped messages"
        );
    }

    #[test]
    fn retransmitter_gives_up_after_bounded_attempts() {
        use std::cell::RefCell;
        thread_local! {
            static GAVE_UP: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
        }
        struct DoomedSender {
            retx: Retransmitter<RetryMsg>,
        }
        impl Process<RetryMsg> for DoomedSender {
            fn on_start(&mut self, ctx: &mut Ctx<'_, RetryMsg>) {
                let msg = RetryMsg { key: 7, ack: false };
                self.retx.send(ctx, 1, 7, msg, 100);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, RetryMsg>, _: NodeIdx, _: RetryMsg) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, RetryMsg>, tag: u64) {
                if let Some(RetryEvent::Exhausted { key, to }) = self.retx.handle_timer(ctx, tag) {
                    assert_eq!(to, 1);
                    GAVE_UP.with(|g| g.borrow_mut().push(key));
                }
            }
        }
        GAVE_UP.with(|g| g.borrow_mut().clear());
        let mut world = World::new(LinkModel::lossy(1.0), 5); // nothing gets through
        world.add(DoomedSender {
            retx: Retransmitter::new(10, 4, RETRY_TAG_BASE),
        });
        world.add(RetryReceiver { seen: Vec::new() });
        world.run_until(10_000);
        assert_eq!(GAVE_UP.with(|g| g.borrow().clone()), vec![7]);
        // 4 attempts total: initial + 3 resends, then the exhausted timer.
        assert_eq!(world.messages_sent(), 4);
        assert_eq!(world.messages_lost(), 4);
    }

    #[test]
    fn retransmitter_timer_routing_ignores_foreign_and_spent_tags() {
        let mut world = World::new(LinkModel::lan(), 2);
        struct Router {
            retx: Retransmitter<u64>,
        }
        impl Process<u64> for Router {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                if ctx.me() == 0 {
                    self.retx.send(ctx, 1, 3, 99, 8);
                    ctx.set_timer(5, 1); // a tag below the base: ours, not the helper's
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeIdx, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, tag: u64) {
                if tag == 1 {
                    assert!(self.retx.handle_timer(ctx, tag).is_none(), "foreign tag");
                    // Ack before the helper's timer expires: its later
                    // expiry must be a spent no-op.
                    assert!(self.retx.ack(3));
                    assert_eq!(self.retx.in_flight(), 0);
                } else {
                    assert!(
                        self.retx.handle_timer(ctx, tag).is_none(),
                        "spent timer after ack"
                    );
                }
            }
        }
        world.add(Router {
            retx: Retransmitter::new(50, 3, RETRY_TAG_BASE),
        });
        world.add(Router {
            retx: Retransmitter::new(50, 3, RETRY_TAG_BASE),
        });
        world.run_until(10_000);
        // One data message sent; its spent retry timer fires as a no-op.
        assert_eq!(world.messages_sent(), 1);
    }

    #[test]
    fn run_until_deadline_stops_early() {
        let mut world = World::new(LinkModel::lan(), 4);
        struct Clock;
        impl Process<u64> for Clock {
            fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
                ctx.set_timer(10, 0);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, u64>, _: NodeIdx, _: u64) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, tag: u64) {
                ctx.set_timer(10, tag + 1); // re-arm forever
            }
        }
        world.add(Clock);
        let processed = world.run_until(100);
        assert_eq!(processed, 10); // timers at 10,20,...,100
        assert_eq!(world.now(), 100);
    }
}
