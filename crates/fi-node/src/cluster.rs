//! Cluster assembly: identical genesis engines, one proposer, N verifying
//! followers, a workload driver, and (optionally) a cold-start joiner,
//! wired into one `fi_net::World`.
//!
//! Every online-from-genesis node builds its own copy of the same genesis
//! engine (funding + sector registrations applied through the typed op
//! layer), so consensus equality across nodes is meaningful from round 1.
//! The cold-start joiner deliberately builds nothing: it syncs from the
//! proposer's durable snapshot mid-run.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::gas::GasSchedule;
use fi_core::engine::Engine;
use fi_core::params::ProtocolParams;
use fi_core::types::SectorId;
use fi_net::link::LinkModel;
use fi_net::sim::SimTime;
use fi_net::world::World;

use crate::client::{ClientDriver, ClientReport, WorkloadConfig};
use crate::mempool::Mempool;
use crate::node::{
    Follower, FollowerReport, FollowerStart, NodeMsg, Proposer, ProposerReport, ReplayMode,
};

/// Everything needed to assemble one simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Protocol parameters shared by every engine.
    pub params: ProtocolParams,
    /// Provider accounts and the sector capacities each registers at
    /// genesis.
    pub providers: Vec<(AccountId, Vec<u64>)>,
    /// The client account adding/reading/discarding files.
    pub client: AccountId,
    /// The link model every node pair shares.
    pub link: LinkModel,
    /// World seed (link jitter/loss draws and the workload rng).
    pub seed: u64,
    /// Blocks the proposer produces before going quiet.
    pub rounds: u64,
    /// Rounds between the proposer's checkpoint→snapshot→truncate runs.
    pub checkpoint_every: u64,
    /// Replay mode of each online-from-genesis follower.
    pub followers: Vec<ReplayMode>,
    /// When set, one extra follower cold-starts at this time and syncs
    /// from the proposer's snapshot.
    pub cold_join_at: Option<SimTime>,
    /// Workload shape for the client driver.
    pub workload: WorkloadConfig,
}

impl ClusterConfig {
    /// A small, fast default: 3 op-by-op followers, no joiner.
    pub fn small(seed: u64, rounds: u64) -> Self {
        ClusterConfig {
            params: ProtocolParams {
                k: 3,
                ..ProtocolParams::default()
            },
            providers: vec![
                (AccountId(700), vec![640, 640]),
                (AccountId(701), vec![1_280]),
                (AccountId(702), vec![640, 640, 640]),
            ],
            client: AccountId(900),
            link: LinkModel::lossy(0.1),
            seed,
            rounds,
            checkpoint_every: 25,
            followers: vec![ReplayMode::OpByOp; 3],
            cold_join_at: None,
            workload: WorkloadConfig::default(),
        }
    }
}

/// Shared result handles for every node of a built cluster (the world owns
/// the boxed processes; results surface through these).
pub struct ClusterReports {
    /// The proposer's per-round commitments and maintenance counters.
    pub proposer: Rc<RefCell<ProposerReport>>,
    /// One verification record per genesis follower, in config order.
    pub followers: Vec<Rc<RefCell<FollowerReport>>>,
    /// The cold-start joiner's record, when configured.
    pub joiner: Option<Rc<RefCell<FollowerReport>>>,
    /// The workload driver's submission counters.
    pub client: Rc<RefCell<ClientReport>>,
}

/// Builds the shared genesis: every provider funded and its sectors
/// registered, the client funded — all through the typed op layer so the
/// resulting engines are bit-identical across nodes. Returns the engine
/// and the sector→owner map the workload driver acts from.
///
/// # Panics
///
/// Panics on invalid parameters or a failed registration (genesis is
/// scripted; failure is a configuration bug).
pub fn genesis_engine(
    params: &ProtocolParams,
    providers: &[(AccountId, Vec<u64>)],
    client: AccountId,
) -> (Engine, HashMap<SectorId, AccountId>) {
    let mut engine = Engine::new(params.clone()).expect("valid parameters");
    engine.fund(client, TokenAmount(1_000_000_000));
    let mut sector_owner = HashMap::new();
    for (account, capacities) in providers {
        engine.fund(*account, TokenAmount(1_000_000_000_000));
        for &capacity in capacities {
            let sector = engine
                .sector_register(*account, capacity)
                .expect("genesis registration succeeds");
            sector_owner.insert(sector, *account);
        }
    }
    (engine, sector_owner)
}

/// Assembles the world: node 0 is the proposer, nodes `1..=F` the genesis
/// followers, node `F+1` the client driver, and (when configured) the last
/// node the cold-start joiner. Run it with `world.run_until(...)` —
/// [`ClusterConfig::rounds`] blocks take `rounds × block_interval` ticks
/// plus retransmit drain.
pub fn build_cluster(cfg: &ClusterConfig) -> (World<NodeMsg>, ClusterReports) {
    let mut world = World::new(cfg.link, cfg.seed);
    let (genesis, sector_owner) = genesis_engine(&cfg.params, &cfg.providers, cfg.client);

    let proposer_report = Rc::new(RefCell::new(ProposerReport::default()));
    let follower_reports: Vec<Rc<RefCell<FollowerReport>>> = cfg
        .followers
        .iter()
        .map(|_| Rc::new(RefCell::new(FollowerReport::default())))
        .collect();
    let client_report = Rc::new(RefCell::new(ClientReport::default()));

    // Node indices are assigned in add() order; the proposer must know its
    // followers' indices up front, so lay them out deterministically.
    let proposer_idx = 0;
    let follower_idxs: Vec<usize> = (1..=cfg.followers.len()).collect();
    let client_idx = cfg.followers.len() + 1;

    let mempool = Mempool::new(cfg.params.clone(), GasSchedule::default());
    // The client driver replays blocks too: it must receive them like any
    // follower (the joiner is added on demand via its JoinRequest).
    let mut broadcast_to = follower_idxs.clone();
    broadcast_to.push(client_idx);
    let proposer = Proposer::new(
        genesis.clone(),
        mempool,
        broadcast_to,
        cfg.rounds,
        cfg.checkpoint_every,
        Rc::clone(&proposer_report),
    );
    assert_eq!(world.add(proposer), proposer_idx);

    for (mode, report) in cfg.followers.iter().zip(&follower_reports) {
        let follower = Follower::new(
            FollowerStart::Genesis(Box::new(genesis.clone())),
            *mode,
            proposer_idx,
            Rc::clone(report),
        );
        world.add(follower);
    }

    let client = ClientDriver::new(
        genesis,
        proposer_idx,
        sector_owner,
        cfg.client,
        cfg.seed,
        cfg.workload.clone(),
        Rc::clone(&client_report),
    );
    assert_eq!(world.add(client), client_idx);

    let joiner = cfg.cold_join_at.map(|wake_at| {
        let report = Rc::new(RefCell::new(FollowerReport::default()));
        let follower = Follower::new(
            FollowerStart::ColdJoin { wake_at },
            ReplayMode::OpByOp,
            proposer_idx,
            Rc::clone(&report),
        );
        world.add(follower);
        report
    });

    (
        world,
        ClusterReports {
            proposer: proposer_report,
            followers: follower_reports,
            joiner,
            client: client_report,
        },
    )
}

/// Runs a built cluster to completion: `rounds` of production plus a
/// drain margin for in-flight retransmissions, returning the world for
/// inspection.
pub fn run_cluster(cfg: &ClusterConfig) -> (World<NodeMsg>, ClusterReports) {
    let (mut world, reports) = build_cluster(cfg);
    let horizon = (cfg.rounds + 50) * cfg.params.block_interval;
    world.run_until(horizon);
    (world, reports)
}
