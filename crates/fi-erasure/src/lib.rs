//! Erasure-coding substrate: GF(2^8) arithmetic and Reed–Solomon codes.
//!
//! Paper §VI-C ("Adjusting to Extremely Large Files"): a file larger than
//! `sizeLimit` is converted *"to a collection of segments by the erasure
//! code, such that each segment's size is upper bounded by sizeLimit. By this
//! operation, the file can still be recovered even if half of the segments
//! are lost. In practice, we can apply the common erasure code such as
//! Reed–Solomon code"*. Each segment is then stored as an individual file
//! with value `2·value/k`.
//!
//! The same machinery powers the Storj baseline model (`fi-baselines`),
//! which stores files as erasure-coded shards.
//!
//! This crate implements, from scratch:
//!
//! * [`gf256`] — the field GF(2^8) with the AES polynomial `x^8+x^4+x^3+x+1`;
//!   log/antilog tables plus a 256×256 product table, built once per process
//!   and shared (`OnceLock`), with a branch-free `u64`-wide `mul_acc` kernel;
//! * [`shard_set`] — a contiguous flat shard buffer (one allocation for all
//!   `total × shard_len` bytes) that the zero-copy fast path operates on;
//! * [`rs`] — a systematic Reed–Solomon encoder/decoder over GF(2^8) using a
//!   Vandermonde-derived generator matrix, supporting any `(data, parity)`
//!   with `data + parity <= 255`; `encode_into`/`reconstruct_into` work in
//!   place on a [`ShardSet`] and recompute only erased shards;
//! * [`mod@reference`] — a frozen copy of the seed scalar implementation, kept
//!   for differential tests and honest old-vs-new benchmarks (see
//!   DESIGN.md §5).
//!
//! # Example
//!
//! ```
//! use fi_erasure::rs::ReedSolomon;
//!
//! let rs = ReedSolomon::new(4, 2).unwrap();          // tolerate any 2 losses
//! let shards = rs.encode_bytes(b"hello erasure world!");
//! let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
//! received[0] = None;                                 // lose two shards
//! received[5] = None;
//! let recovered = rs.decode_bytes(&received, 20).unwrap();
//! assert_eq!(recovered, b"hello erasure world!");
//! ```

pub mod gf256;
pub mod reference;
pub mod rs;
pub mod shard_set;

pub use gf256::Gf256;
pub use rs::{ReedSolomon, RsError};
pub use shard_set::ShardSet;
