//! Parallel audit-commit consensus equivalence: a due `Auto_CheckProof`
//! bucket big enough to cross the batched-commit threshold is planned on
//! the worker pool and committed through per-shard write batches
//! (DESIGN.md §14) — and the result must be **bit-identical** to the
//! sequential canonical-order fold at every `(shards, ingest_threads)`
//! combination: same state root, same audit root, same chain head, same
//! consensus stats.
//!
//! Each scenario stresses a different corner of the disjointness rule:
//! the all-fast steady state, punishment bursts where many tasks touch
//! the same sector (and therefore must serialize), a mid-bucket
//! insolvency flip that invalidates pre-planned fast applies, and a
//! corruption cascade that forces sequential fallbacks with refresh rng
//! draws. The `audit_commit_batches` strategy counter pins down which
//! path actually ran.

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::{Engine, StateView};
use fi_core::params::ProtocolParams;
use fi_core::types::SectorState;
use fi_crypto::{sha256, DetRng};

const CLIENT: AccountId = AccountId(900);
const PROVIDER: AccountId = AccountId(700);

fn params(shards: usize, ingest_threads: usize) -> ProtocolParams {
    ProtocolParams {
        k: 2,
        delay_per_size: 6,
        shards,
        ingest_threads,
        ..ProtocolParams::default()
    }
}

/// Builds an engine with `n` live (confirmed, finalized) size-1 files
/// spread over `sectors` sectors. All files are added at the same
/// instant, so every subsequent `Auto_CheckProof` cycle pops as one
/// `n`-task bucket — past the batched-commit threshold for `n ≥ 64`.
fn engine_with_files(p: ProtocolParams, n: u64, sectors: usize) -> Engine {
    let min_value = p.min_value;
    let mut engine = Engine::new(p).expect("valid params");
    engine.fund(PROVIDER, TokenAmount(u128::MAX / 4));
    engine.fund(CLIENT, TokenAmount(u128::MAX / 4));
    for _ in 0..sectors {
        engine.sector_register(PROVIDER, 6400).expect("register");
    }
    for i in 0..n {
        let root = sha256(&i.to_be_bytes());
        let f = engine
            .file_add(CLIENT, 1, min_value, root)
            .expect("file add");
        for (idx, s) in engine.pending_confirms(f) {
            engine.file_confirm(PROVIDER, f, idx, s).expect("confirm");
        }
    }
    engine.advance_to(engine.now() + engine.params().transfer_window(1) + 1);
    assert_eq!(engine.file_ids().len() as u64, n, "all files live");
    engine
}

fn assert_bit_identical(a: &Engine, b: &Engine, what: &str) {
    assert_eq!(a.state_root(), b.state_root(), "{what}: state roots");
    assert_eq!(a.audit_root(), b.audit_root(), "{what}: audit roots");
    assert_eq!(
        a.chain().head_hash(),
        b.chain().head_hash(),
        "{what}: chain heads"
    );
    assert_eq!(
        a.stats().consensus(),
        b.stats().consensus(),
        "{what}: consensus stats"
    );
    assert_eq!(a.file_ids(), b.file_ids(), "{what}: file ids");
    assert_eq!(a.sector_ids(), b.sector_ids(), "{what}: sector ids");
    assert_eq!(
        a.ledger().total_supply(),
        b.ledger().total_supply(),
        "{what}: supply"
    );
    assert_eq!(
        a.pending_task_count(),
        b.pending_task_count(),
        "{what}: tasks"
    );
}

/// Runs one scenario at the sequential reference configuration and at
/// every parallel cell of the `(shards, ingest_threads) ∈ {1,8}×{1,4}`
/// matrix, asserts bit-identity throughout, and checks the batched
/// commit path engaged exactly on the sharded engines (every scenario
/// drives at least one ≥64-task `Auto_CheckProof` bucket). Returns the
/// reference engine for scenario-specific assertions.
fn run_matrix(build: impl Fn(usize, usize) -> Engine, what: &str) -> Engine {
    let reference = build(1, 1);
    assert_eq!(
        reference.stats().audit_commit_batches,
        0,
        "{what}: the 1-shard reference must use the sequential fold"
    );
    for (shards, threads) in [(1usize, 4usize), (8, 1), (8, 4)] {
        let engine = build(shards, threads);
        assert_bit_identical(
            &reference,
            &engine,
            &format!("{what} at {shards} shards / {threads} threads"),
        );
        assert_eq!(
            engine.stats().audit_commit_batches > 0,
            shards > 1,
            "{what}: batched commit engages exactly on sharded engines \
             ({shards} shards / {threads} threads)"
        );
    }
    reference
}

/// Steady state: every provider proves every cycle, so every plan is a
/// fast plan (rent transfer + gas burn, zero rng, no sector mutations)
/// and the whole bucket commits without a single sequential fallback.
#[test]
fn honest_steady_state_commits_batched_and_identically() {
    let reference = run_matrix(
        |shards, threads| {
            let mut e = engine_with_files(params(shards, threads), 120, 8);
            for _ in 0..3 {
                e.honest_providers_act();
                e.advance_to(e.now() + e.params().proof_cycle);
            }
            e
        },
        "steady state",
    );
    let stats = reference.stats();
    assert!(stats.proofs_audited >= 240, "audits ran: {stats:?}");
    assert_eq!(stats.punishments, 0, "honest run must not punish");
    assert_eq!(reference.file_ids().len(), 120, "no file may be lost");
}

/// Punishment burst on shared sectors: nobody proves, and the replicas
/// of 80 files crowd onto 4 sectors — so inside one due bucket many
/// `CheckProof` tasks punish the *same* sector. The first fast apply
/// that slashes a sector adds it to the mutated set; every later task
/// reading that sector must abandon its plan and serialize. Later
/// cycles cross the proof deadline and cascade into corruption.
#[test]
fn shared_sector_punishments_serialize_identically() {
    let reference = run_matrix(
        |shards, threads| {
            let mut e = engine_with_files(params(shards, threads), 80, 4);
            // No proofs at all: advance five cycles, crossing proof_due
            // (punish) and then proof_deadline (corrupt + losses).
            e.advance_to(e.now() + e.params().proof_cycle * 5);
            e
        },
        "shared-sector punishments",
    );
    let stats = reference.stats();
    // Pigeonhole: more punishments than sectors means at least one
    // sector was punished by two tasks of the same bucket.
    assert!(
        stats.punishments > reference.sector_ids().len() as u64 + 4,
        "punishments must pile onto shared sectors: {stats:?}"
    );
    assert!(
        stats.sectors_corrupted > 0 && stats.files_lost > 0,
        "the deadline cycle must cascade: {stats:?}"
    );
}

/// Mid-bucket insolvency flip: after one paid cycle the client is
/// drained down to 10½ files' worth of cycle cost. The plan phase —
/// reading the pre-bucket ledger — marks every task fast, but the live
/// balance recheck at apply time flips once ten fast applies have
/// drained the account: the remaining tasks must fall back to the
/// sequential executor, which discards the files as insolvent.
#[test]
fn mid_bucket_insolvency_flip_is_identical() {
    let reference = run_matrix(
        |shards, threads| {
            let mut e = engine_with_files(params(shards, threads), 80, 8);
            e.honest_providers_act();
            e.advance_to(e.now() + e.params().proof_cycle);
            let cp = e.file(e.file_ids()[0]).map(|d| d.cp).unwrap_or(2);
            let cost = e.params().cycle_cost(1, cp).0;
            let keep = cost * 10 + cost / 2;
            let balance = e.ledger().balance(CLIENT).0;
            e.burn_for_test(CLIENT, TokenAmount(balance - keep));
            e.honest_providers_act();
            e.advance_to(e.now() + e.params().proof_cycle);
            e
        },
        "insolvency flip",
    );
    let live = reference.file_ids().len();
    assert!(
        live < 80 && live > 0,
        "the flip must discard exactly the unaffordable tail, kept {live}"
    );
    assert_eq!(
        reference.ledger().balance(CLIENT).0 / reference.params().cycle_cost(1, 2).0,
        0,
        "the client account must be drained below one cycle cost"
    );
}

/// Corruption cascade with refresh draws: randomly injected sector
/// faults force sequential fallbacks (void_sector_content, refresh
/// scheduling, compensation) inside otherwise-batched buckets, across
/// several cycles of honest proving.
#[test]
fn corruption_cascade_is_identical() {
    for seed in [9u64, 31] {
        let reference = run_matrix(
            |shards, threads| {
                let mut e = engine_with_files(params(shards, threads), 80, 8);
                let mut rng = DetRng::from_seed_label(seed, "parallel-commit-cascade");
                let ids = e.sector_ids();
                for _ in 0..3 {
                    let s = ids[rng.below(ids.len() as u64) as usize];
                    if e.sector(s).map(|x| x.state) == Some(SectorState::Normal) {
                        if rng.below(2) == 0 {
                            e.fail_sector_silently(s);
                        } else {
                            e.corrupt_sector_now(s);
                        }
                    }
                }
                for _ in 0..5 {
                    e.honest_providers_act();
                    e.advance_to(e.now() + e.params().proof_cycle);
                }
                e
            },
            &format!("corruption cascade (seed {seed})"),
        );
        let stats = reference.stats();
        assert!(
            stats.sectors_corrupted > 0,
            "seed {seed}: faults must land: {stats:?}"
        );
        assert!(
            stats.proofs_audited > 0,
            "seed {seed}: honest replicas still audited: {stats:?}"
        );
    }
}
