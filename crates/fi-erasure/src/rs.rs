//! Systematic Reed–Solomon erasure codes over GF(2^8).
//!
//! Construction: start from a `(data+parity) × data` Vandermonde matrix
//! (rows are powers of distinct evaluation points, hence any `data` rows are
//! linearly independent), then right-multiply by the inverse of the top
//! square so the first `data` rows become the identity. Encoding is then
//! *systematic* — data shards pass through unchanged, parity rows are dense
//! linear combinations — and **any** `data` surviving shards suffice to
//! recover, exactly the "recover from any half of the segments" property the
//! paper uses in §VI-C.

use crate::gf256::Gf256;

/// Errors returned by [`ReedSolomon`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsError {
    /// `data == 0`, `parity == 0`, or `data + parity > 255`.
    BadParameters {
        /// Requested number of data shards.
        data: usize,
        /// Requested number of parity shards.
        parity: usize,
    },
    /// Fewer than `data` shards available for reconstruction.
    NotEnoughShards {
        /// How many shards were present.
        available: usize,
        /// How many are required.
        required: usize,
    },
    /// Shards have inconsistent lengths or the shard vector has wrong arity.
    ShapeMismatch,
}

impl std::fmt::Display for RsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RsError::BadParameters { data, parity } => {
                write!(f, "invalid reed-solomon parameters ({data} data, {parity} parity)")
            }
            RsError::NotEnoughShards { available, required } => {
                write!(f, "not enough shards: {available} available, {required} required")
            }
            RsError::ShapeMismatch => write!(f, "shard shape mismatch"),
        }
    }
}

impl std::error::Error for RsError {}

/// A dense matrix over GF(2^8).
#[derive(Debug, Clone, PartialEq, Eq)]
struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl Matrix {
    fn zero(rows: usize, cols: usize) -> Self {
        Matrix { rows, cols, data: vec![0; rows * cols] }
    }

    fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m.set(i, i, 1);
        }
        m
    }

    #[inline]
    fn get(&self, r: usize, c: usize) -> u8 {
        self.data[r * self.cols + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: u8) {
        self.data[r * self.cols + c] = v;
    }

    fn row(&self, r: usize) -> &[u8] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    fn mul(&self, gf: &Gf256, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows);
        let mut out = Matrix::zero(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0 {
                    continue;
                }
                for j in 0..other.cols {
                    let v = out.get(i, j) ^ gf.mul(a, other.get(k, j));
                    out.set(i, j, v);
                }
            }
        }
        out
    }

    /// Gauss–Jordan inversion. Returns `None` when singular.
    fn inverse(&self, gf: &Gf256) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols);
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);
        for col in 0..n {
            // Find pivot.
            let pivot = (col..n).find(|&r| a.get(r, col) != 0)?;
            if pivot != col {
                for j in 0..n {
                    let (x, y) = (a.get(col, j), a.get(pivot, j));
                    a.set(col, j, y);
                    a.set(pivot, j, x);
                    let (x, y) = (inv.get(col, j), inv.get(pivot, j));
                    inv.set(col, j, y);
                    inv.set(pivot, j, x);
                }
            }
            // Normalise pivot row.
            let p = a.get(col, col);
            let p_inv = gf.inv(p);
            for j in 0..n {
                a.set(col, j, gf.mul(a.get(col, j), p_inv));
                inv.set(col, j, gf.mul(inv.get(col, j), p_inv));
            }
            // Eliminate the column everywhere else.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a.get(r, col);
                if factor == 0 {
                    continue;
                }
                for j in 0..n {
                    let v = a.get(r, j) ^ gf.mul(factor, a.get(col, j));
                    a.set(r, j, v);
                    let v = inv.get(r, j) ^ gf.mul(factor, inv.get(col, j));
                    inv.set(r, j, v);
                }
            }
        }
        Some(inv)
    }
}

/// A systematic Reed–Solomon erasure code with `data` data shards and
/// `parity` parity shards.
///
/// Any `data` of the `data + parity` shards reconstruct the original.
///
/// # Example
///
/// ```
/// use fi_erasure::ReedSolomon;
///
/// let rs = ReedSolomon::new(3, 3).unwrap(); // paper §VI-C: survive half lost
/// let data_shards = vec![vec![1u8, 2], vec![3, 4], vec![5, 6]];
/// let all = rs.encode(&data_shards).unwrap();
/// assert_eq!(all.len(), 6);
/// // Drop all three data shards; recover from parity alone.
/// let mut got: Vec<Option<Vec<u8>>> = all.into_iter().map(Some).collect();
/// got[0] = None; got[1] = None; got[2] = None;
/// let recovered = rs.reconstruct(&got).unwrap();
/// assert_eq!(recovered[..3], data_shards[..]);
/// ```
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    data: usize,
    parity: usize,
    gf: Gf256,
    /// `(data+parity) × data` systematic encoding matrix.
    encode_matrix: Matrix,
}

impl ReedSolomon {
    /// Creates a code with the given shard counts.
    ///
    /// # Errors
    ///
    /// [`RsError::BadParameters`] when `data == 0`, `parity == 0`, or
    /// `data + parity > 255` (GF(2^8) supports at most 255 distinct rows).
    pub fn new(data: usize, parity: usize) -> Result<Self, RsError> {
        if data == 0 || parity == 0 || data + parity > 255 {
            return Err(RsError::BadParameters { data, parity });
        }
        let gf = Gf256::new();
        let total = data + parity;
        // Vandermonde rows: row i = [i^0, i^1, ..., i^(data-1)] for distinct
        // evaluation points i = 1..=total (skip 0 so no all-but-first-zero row
        // degeneracy; any `data` distinct points give an invertible minor).
        let mut vand = Matrix::zero(total, data);
        for (r, point) in (1..=total as u32).enumerate() {
            for c in 0..data {
                vand.set(r, c, gf.pow(point as u8, c as u32));
            }
        }
        // Normalise: top square -> identity.
        let mut top = Matrix::zero(data, data);
        for r in 0..data {
            for c in 0..data {
                top.set(r, c, vand.get(r, c));
            }
        }
        let top_inv = top
            .inverse(&gf)
            .expect("vandermonde top square is invertible");
        let encode_matrix = vand.mul(&gf, &top_inv);
        Ok(ReedSolomon { data, parity, gf, encode_matrix })
    }

    /// Number of data shards.
    pub fn data_shards(&self) -> usize {
        self.data
    }

    /// Number of parity shards.
    pub fn parity_shards(&self) -> usize {
        self.parity
    }

    /// Total shard count.
    pub fn total_shards(&self) -> usize {
        self.data + self.parity
    }

    /// Encodes `data` shards into `data + parity` shards (data first).
    ///
    /// # Errors
    ///
    /// [`RsError::ShapeMismatch`] if the number of input shards differs from
    /// `data_shards()` or the shards have unequal lengths.
    pub fn encode(&self, data_shards: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, RsError> {
        if data_shards.len() != self.data {
            return Err(RsError::ShapeMismatch);
        }
        let len = data_shards[0].len();
        if data_shards.iter().any(|s| s.len() != len) {
            return Err(RsError::ShapeMismatch);
        }
        let mut out: Vec<Vec<u8>> = data_shards.to_vec();
        for p in 0..self.parity {
            let row = self.encode_matrix.row(self.data + p).to_vec();
            let mut shard = vec![0u8; len];
            for (c, &coeff) in row.iter().enumerate() {
                self.gf.mul_acc(&mut shard, &data_shards[c], coeff);
            }
            out.push(shard);
        }
        Ok(out)
    }

    /// Reconstructs **all** shards from any `data` present shards.
    ///
    /// Input is one `Option<Vec<u8>>` per shard position (length
    /// `total_shards()`); `None` marks an erased shard.
    ///
    /// # Errors
    ///
    /// * [`RsError::ShapeMismatch`] — wrong arity or inconsistent lengths.
    /// * [`RsError::NotEnoughShards`] — fewer than `data_shards()` present.
    pub fn reconstruct(&self, shards: &[Option<Vec<u8>>]) -> Result<Vec<Vec<u8>>, RsError> {
        if shards.len() != self.total_shards() {
            return Err(RsError::ShapeMismatch);
        }
        let available: Vec<usize> = (0..shards.len()).filter(|&i| shards[i].is_some()).collect();
        if available.len() < self.data {
            return Err(RsError::NotEnoughShards {
                available: available.len(),
                required: self.data,
            });
        }
        let len = shards[available[0]].as_ref().unwrap().len();
        if available.iter().any(|&i| shards[i].as_ref().unwrap().len() != len) {
            return Err(RsError::ShapeMismatch);
        }

        // Fast path: all data shards present.
        let data_present = (0..self.data).all(|i| shards[i].is_some());
        let data_shards: Vec<Vec<u8>> = if data_present {
            (0..self.data)
                .map(|i| shards[i].as_ref().unwrap().clone())
                .collect()
        } else {
            // Take the first `data` available rows; the corresponding
            // sub-matrix of the encoding matrix is invertible by design.
            let chosen = &available[..self.data];
            let mut sub = Matrix::zero(self.data, self.data);
            for (r, &shard_idx) in chosen.iter().enumerate() {
                for c in 0..self.data {
                    sub.set(r, c, self.encode_matrix.get(shard_idx, c));
                }
            }
            let inv = sub.inverse(&self.gf).expect("any data rows are invertible");
            (0..self.data)
                .map(|d| {
                    let mut shard = vec![0u8; len];
                    for (r, &shard_idx) in chosen.iter().enumerate() {
                        let coeff = inv.get(d, r);
                        self.gf
                            .mul_acc(&mut shard, shards[shard_idx].as_ref().unwrap(), coeff);
                    }
                    shard
                })
                .collect()
        };

        self.encode(&data_shards)
    }

    /// Convenience: splits `payload` into `data` equal shards (zero-padded)
    /// and encodes. Shard size is `ceil(len / data)`.
    pub fn encode_bytes(&self, payload: &[u8]) -> Vec<Vec<u8>> {
        let shard_len = payload.len().div_ceil(self.data).max(1);
        let mut data_shards = vec![vec![0u8; shard_len]; self.data];
        for (i, &b) in payload.iter().enumerate() {
            data_shards[i / shard_len][i % shard_len] = b;
        }
        self.encode(&data_shards).expect("shape is valid by construction")
    }

    /// Convenience: inverse of [`ReedSolomon::encode_bytes`], truncating the
    /// zero padding to `original_len`.
    ///
    /// # Errors
    ///
    /// Propagates [`ReedSolomon::reconstruct`] errors.
    pub fn decode_bytes(
        &self,
        shards: &[Option<Vec<u8>>],
        original_len: usize,
    ) -> Result<Vec<u8>, RsError> {
        let all = self.reconstruct(shards)?;
        let mut out = Vec::with_capacity(original_len);
        'outer: for shard in &all[..self.data] {
            for &b in shard {
                if out.len() == original_len {
                    break 'outer;
                }
                out.push(b);
            }
        }
        if out.len() < original_len {
            return Err(RsError::ShapeMismatch);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 % 251) as u8).collect()
    }

    #[test]
    fn parameter_validation() {
        assert!(ReedSolomon::new(0, 1).is_err());
        assert!(ReedSolomon::new(1, 0).is_err());
        assert!(ReedSolomon::new(200, 56).is_err());
        assert!(ReedSolomon::new(200, 55).is_ok());
    }

    #[test]
    fn systematic_prefix() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let data: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 16]).collect();
        let all = rs.encode(&data).unwrap();
        assert_eq!(&all[..4], &data[..]);
    }

    #[test]
    fn recovers_from_every_loss_pattern_up_to_parity() {
        let rs = ReedSolomon::new(4, 3).unwrap();
        let payload = sample_payload(57);
        let encoded = rs.encode_bytes(&payload);
        let total = rs.total_shards();
        // All loss patterns of exactly `parity` erasures.
        for a in 0..total {
            for b in a + 1..total {
                for c in b + 1..total {
                    let mut got: Vec<Option<Vec<u8>>> =
                        encoded.iter().cloned().map(Some).collect();
                    got[a] = None;
                    got[b] = None;
                    got[c] = None;
                    let rec = rs.decode_bytes(&got, payload.len()).unwrap();
                    assert_eq!(rec, payload, "pattern ({a},{b},{c})");
                }
            }
        }
    }

    #[test]
    fn fails_beyond_parity() {
        let rs = ReedSolomon::new(4, 2).unwrap();
        let encoded = rs.encode_bytes(&sample_payload(20));
        let mut got: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        got[0] = None;
        got[1] = None;
        got[2] = None;
        assert_eq!(
            rs.reconstruct(&got),
            Err(RsError::NotEnoughShards { available: 3, required: 4 })
        );
    }

    #[test]
    fn half_segments_lost_recoverable() {
        // The paper's §VI-C configuration: recoverable when half the
        // segments are lost => data == parity.
        let rs = ReedSolomon::new(8, 8).unwrap();
        let payload = sample_payload(1000);
        let encoded = rs.encode_bytes(&payload);
        let mut got: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
        for i in 0..8 {
            got[i * 2] = None; // lose every other shard = exactly half
        }
        assert_eq!(rs.decode_bytes(&got, payload.len()).unwrap(), payload);
    }

    #[test]
    fn parity_shards_also_reconstructed() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        let encoded = rs.encode_bytes(&sample_payload(30));
        let mut got: Vec<Option<Vec<u8>>> = encoded.iter().cloned().map(Some).collect();
        got[3] = None; // lose one parity shard
        let rec = rs.reconstruct(&got).unwrap();
        assert_eq!(rec, encoded);
    }

    #[test]
    fn empty_and_tiny_payloads() {
        let rs = ReedSolomon::new(3, 2).unwrap();
        for n in [0usize, 1, 2, 3, 4] {
            let payload = sample_payload(n);
            let encoded = rs.encode_bytes(&payload);
            let got: Vec<Option<Vec<u8>>> = encoded.into_iter().map(Some).collect();
            assert_eq!(rs.decode_bytes(&got, n).unwrap(), payload, "n={n}");
        }
    }

    #[test]
    fn shape_mismatch_detected() {
        let rs = ReedSolomon::new(2, 1).unwrap();
        assert_eq!(
            rs.encode(&[vec![1, 2], vec![3]]),
            Err(RsError::ShapeMismatch)
        );
        assert_eq!(rs.encode(&[vec![1, 2]]), Err(RsError::ShapeMismatch));
        let bad = vec![Some(vec![1u8, 2]), Some(vec![3u8]), None];
        assert_eq!(rs.reconstruct(&bad), Err(RsError::ShapeMismatch));
    }

    #[test]
    fn error_display() {
        let e = RsError::NotEnoughShards { available: 1, required: 4 };
        assert!(e.to_string().contains("1 available"));
    }
}
