//! Cluster assembly: identical genesis engines, N beacon-rotated
//! validators, a workload driver, and (optionally) a cold-start watcher,
//! wired into one `fi_net::World`.
//!
//! Every online-from-genesis node builds its own copy of the same genesis
//! engine (funding + sector registrations applied through the typed op
//! layer), so consensus equality across nodes is meaningful from slot 1.
//! The cold-start watcher deliberately builds nothing: it syncs from a
//! validator's on-demand snapshot mid-run.
//!
//! Node layout is deterministic and part of the harness contract — fault
//! schedules in tests address nodes by it: validators occupy indices
//! `0..N-1` (in [`ProposerSchedule`] registration order), the client
//! driver is node `N`, and the watcher (when configured) node `N + 1`.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::Engine;
use fi_core::ops::Op;
use fi_core::params::ProtocolParams;
use fi_core::types::SectorId;
use fi_crypto::RandomBeacon;
use fi_net::link::LinkModel;
use fi_net::sim::SimTime;
use fi_net::world::World;

use crate::chain::ReplayMode;
use crate::client::{ClientDriver, ClientReport, WorkloadConfig};
use crate::node::{ConsensusConfig, NodeMsg, NodeStart, Validator, ValidatorReport};
use crate::schedule::ProposerSchedule;

/// Everything needed to assemble one simulated cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Protocol parameters shared by every engine.
    pub params: ProtocolParams,
    /// Provider accounts and the sector capacities each registers at
    /// genesis.
    pub providers: Vec<(AccountId, Vec<u64>)>,
    /// The client account adding/reading/discarding files.
    pub client: AccountId,
    /// The link model every node pair shares (per-link overrides go
    /// through [`World::set_link_between`] on the built world).
    pub link: LinkModel,
    /// World seed: link draws, the workload rng, **and** the proposer
    /// beacon — one seed determines the whole run.
    pub seed: u64,
    /// Slots the cluster produces before validators go quiet (anti-entropy
    /// continues through the drain margin).
    pub slots: u64,
    /// Extra wait per fallback rank before it fills a slot the scheduled
    /// leader left empty.
    pub skip_timeout: SimTime,
    /// Ticks between anti-entropy status exchanges.
    pub sync_every: SimTime,
    /// Fallback ranks per slot (clamped to the validator count).
    pub max_ranks: usize,
    /// Replay mode of each genesis validator — the vector's length is the
    /// validator count.
    pub validator_modes: Vec<ReplayMode>,
    /// Keep full op logs on head engines (for replay-equivalence tests).
    pub record_op_log: bool,
    /// When set, a watcher node cold-starts at this time and syncs from a
    /// validator's snapshot.
    pub cold_join_at: Option<SimTime>,
    /// Workload shape for the client driver.
    pub workload: WorkloadConfig,
    /// Consensus-side `(due slot, op)` injections, handed to every
    /// validator and included once by whichever node leads first (the §V
    /// fault scripts — `FailSector`, `CorruptSector`, `ForceDiscard` —
    /// enter the chain through these).
    pub injections: Vec<(u64, Op)>,
}

impl ClusterConfig {
    /// A small, fast default: 3 validators on mixed replay modes, lossy
    /// links, no watcher.
    pub fn small(seed: u64, slots: u64) -> Self {
        let params = ProtocolParams {
            k: 3,
            ..ProtocolParams::default()
        };
        let interval = params.block_interval;
        ClusterConfig {
            params,
            providers: vec![
                (AccountId(700), vec![640, 640]),
                (AccountId(701), vec![1_280]),
                (AccountId(702), vec![640, 640, 640]),
            ],
            client: AccountId(900),
            link: LinkModel::lossy(0.1),
            seed,
            slots,
            skip_timeout: (interval / 3).max(2),
            sync_every: (interval / 2).max(2),
            max_ranks: 3,
            validator_modes: vec![ReplayMode::OpByOp, ReplayMode::Batch, ReplayMode::OpByOp],
            record_op_log: false,
            cold_join_at: None,
            workload: WorkloadConfig::default(),
            injections: Vec::new(),
        }
    }

    /// The deterministic proposer schedule this configuration induces.
    pub fn schedule(&self) -> ProposerSchedule {
        ProposerSchedule::new(
            RandomBeacon::new(self.seed),
            (0..self.validator_modes.len()).collect(),
            self.max_ranks,
        )
    }

    /// Node index of the client driver (validators fill `0..client`).
    pub fn client_node(&self) -> usize {
        self.validator_modes.len()
    }

    /// Node index of the cold-start watcher, when configured.
    pub fn watcher_node(&self) -> Option<usize> {
        self.cold_join_at.map(|_| self.validator_modes.len() + 1)
    }
}

/// Shared result handles for every node of a built cluster (the world owns
/// the boxed processes; results surface through these).
pub struct ClusterReports {
    /// One record per genesis validator, in node-index order.
    pub validators: Vec<Rc<RefCell<ValidatorReport>>>,
    /// The workload driver's submission counters.
    pub client: Rc<RefCell<ClientReport>>,
    /// The cold-start watcher's record, when configured.
    pub watcher: Option<Rc<RefCell<ValidatorReport>>>,
}

/// Builds the shared genesis: every provider funded and its sectors
/// registered, the client funded — all through the typed op layer so the
/// resulting engines are bit-identical across nodes. Returns the engine
/// and the sector→owner map the workload driver acts from.
///
/// # Panics
///
/// Panics on invalid parameters or a failed registration (genesis is
/// scripted; failure is a configuration bug).
pub fn genesis_engine(
    params: &ProtocolParams,
    providers: &[(AccountId, Vec<u64>)],
    client: AccountId,
) -> (Engine, HashMap<SectorId, AccountId>) {
    let mut engine = Engine::new(params.clone()).expect("valid parameters");
    engine.fund(client, TokenAmount(1_000_000_000));
    let mut sector_owner = HashMap::new();
    for (account, capacities) in providers {
        engine.fund(*account, TokenAmount(1_000_000_000_000));
        for &capacity in capacities {
            let sector = engine
                .sector_register(*account, capacity)
                .expect("genesis registration succeeds");
            sector_owner.insert(sector, *account);
        }
    }
    (engine, sector_owner)
}

/// Assembles the world in the layout documented at the module top:
/// validators `0..N-1`, client `N`, watcher `N + 1`. Schedule faults on
/// the returned [`World`] before running it.
///
/// # Panics
///
/// Panics when `validator_modes` is empty.
pub fn build_cluster(cfg: &ClusterConfig) -> (World<NodeMsg>, ClusterReports) {
    assert!(
        !cfg.validator_modes.is_empty(),
        "a cluster needs validators"
    );
    let mut world = World::new(cfg.link, cfg.seed);
    let (genesis, sector_owner) = genesis_engine(&cfg.params, &cfg.providers, cfg.client);
    let schedule = cfg.schedule();
    let consensus = ConsensusConfig {
        block_interval: cfg.params.block_interval,
        skip_timeout: cfg.skip_timeout.max(2),
        sync_every: cfg.sync_every.max(2),
        slots_total: cfg.slots,
        record_op_log: cfg.record_op_log,
        join_retry: 20,
    };

    let validator_count = cfg.validator_modes.len();
    let client_idx = cfg.client_node();

    let validator_reports: Vec<Rc<RefCell<ValidatorReport>>> = (0..validator_count)
        .map(|_| Rc::new(RefCell::new(ValidatorReport::default())))
        .collect();
    for (me, (mode, report)) in cfg
        .validator_modes
        .iter()
        .zip(&validator_reports)
        .enumerate()
    {
        let peers: Vec<usize> = (0..validator_count).filter(|&p| p != me).collect();
        // Proposals reach every other validator and the client's replica;
        // status exchanges stay validator-to-validator.
        let mut broadcast = peers.clone();
        broadcast.push(client_idx);
        let validator = Validator::new(
            me,
            NodeStart::Genesis(Box::new(genesis.clone())),
            schedule.clone(),
            *mode,
            consensus.clone(),
            broadcast,
            peers,
            cfg.injections.clone(),
            Rc::clone(report),
        );
        assert_eq!(world.add(validator), me);
    }

    let client_report = Rc::new(RefCell::new(ClientReport::default()));
    let client = ClientDriver::new(
        genesis,
        schedule.clone(),
        sector_owner,
        cfg.client,
        cfg.seed,
        cfg.sync_every.max(2),
        cfg.workload.clone(),
        Rc::clone(&client_report),
    );
    assert_eq!(world.add(client), client_idx);

    let watcher = cfg.cold_join_at.map(|wake_at| {
        let report = Rc::new(RefCell::new(ValidatorReport::default()));
        let watcher = Validator::new(
            client_idx + 1,
            NodeStart::ColdJoin { wake_at },
            schedule.clone(),
            ReplayMode::OpByOp,
            consensus.clone(),
            Vec::new(),
            (0..validator_count).collect(),
            Vec::new(),
            Rc::clone(&report),
        );
        assert_eq!(world.add(watcher), client_idx + 1);
        report
    });

    (
        world,
        ClusterReports {
            validators: validator_reports,
            client: client_report,
            watcher,
        },
    )
}

/// Runs a built cluster to completion: `slots` of production plus a drain
/// margin for skip timeouts, retransmissions, and post-fault anti-entropy
/// reconvergence, returning the world for inspection.
pub fn run_cluster(cfg: &ClusterConfig) -> (World<NodeMsg>, ClusterReports) {
    let (mut world, reports) = build_cluster(cfg);
    world.run_until(cluster_horizon(cfg));
    (world, reports)
}

/// The virtual-time horizon [`run_cluster`] drains to.
pub fn cluster_horizon(cfg: &ClusterConfig) -> SimTime {
    (cfg.slots + 40) * cfg.params.block_interval
}
