//! Dynamic Replication (DRep): Capacity-Replica accounting per sector.
//!
//! Paper §III-D and Fig. 2: a sector is registered *full of Capacity
//! Replicas* (CRs — sealings of zeros). As files arrive, CRs are discarded
//! to make room; as files leave, CRs are **regenerated** (cheaply, from
//! nothing, because their raw data is zeros and their commitments were
//! verified at registration). The invariant maintained is:
//!
//! > "The sector is requested to contain as many CRs as possible while
//! > storing files. Therefore, the unsealed space of a sector is smaller
//! > than the size of a CR."
//!
//! Two levels are provided:
//!
//! * [`CrAccounting`] — O(1) bookkeeping used by the protocol engine for
//!   every sector (no crypto executed);
//! * [`MaterializedSector`] — a sector with real sealed CRs and file
//!   replicas, used by integration tests and the Fig. 2 lifecycle example
//!   to demonstrate that every byte of claimed space is provable.

use std::collections::HashMap;

use fi_crypto::Hash256;
use fi_porep::{CapacityReplica, SealedReplica};

/// O(1) Capacity-Replica bookkeeping for one sector.
///
/// # Example
///
/// ```
/// use fi_core::drep::CrAccounting;
/// let mut acct = CrAccounting::new(600, 100); // capacity 600, CR size 100
/// assert_eq!(acct.cr_count(), 6);             // Fig. 2(a)
/// acct.add_file(250);
/// assert_eq!(acct.cr_count(), 3);             // 350 free -> 3 CRs + 50 unsealed
/// acct.remove_file(250);
/// assert_eq!(acct.cr_count(), 6);             // Fig. 2(c): CRs regenerated
/// assert!(acct.unsealed() < 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrAccounting {
    capacity: u64,
    cr_size: u64,
    file_bytes: u64,
    /// Cumulative CRs regenerated (Fig. 2(c) events) — a cost metric for
    /// the DRep-vs-naive ablation.
    regenerated: u64,
    /// Cumulative CRs discarded to admit files.
    discarded: u64,
}

impl CrAccounting {
    /// A freshly registered sector: filled with CRs.
    ///
    /// # Panics
    ///
    /// Panics if `cr_size == 0` or `cr_size > capacity`.
    pub fn new(capacity: u64, cr_size: u64) -> Self {
        assert!(cr_size > 0 && cr_size <= capacity, "invalid CR size");
        CrAccounting {
            capacity,
            cr_size,
            file_bytes: 0,
            regenerated: 0,
            discarded: 0,
        }
    }

    /// Current number of whole CRs held.
    pub fn cr_count(&self) -> u64 {
        (self.capacity - self.file_bytes) / self.cr_size
    }

    /// Unsealed (neither file nor CR) space; always `< cr_size`.
    pub fn unsealed(&self) -> u64 {
        (self.capacity - self.file_bytes) % self.cr_size
    }

    /// Bytes occupied by file replicas.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// Free capacity from the allocator's point of view.
    pub fn free(&self) -> u64 {
        self.capacity - self.file_bytes
    }

    /// Total CRs regenerated over this sector's life.
    pub fn total_regenerated(&self) -> u64 {
        self.regenerated
    }

    /// Total CRs discarded over this sector's life.
    pub fn total_discarded(&self) -> u64 {
        self.discarded
    }

    /// Admits a file of `size`, discarding as few CRs as needed. Returns
    /// the number of CRs discarded.
    ///
    /// # Panics
    ///
    /// Panics if `size` exceeds the free capacity — the allocator must
    /// check `free()` first (the engine does; Fig. 4's `while` loop).
    pub fn add_file(&mut self, size: u64) -> u64 {
        assert!(size <= self.free(), "sector overfull");
        let before = self.cr_count();
        self.file_bytes += size;
        let dropped = before - self.cr_count();
        self.discarded += dropped;
        dropped
    }

    /// Releases a file of `size`, regenerating CRs into the freed space.
    /// Returns the number of CRs regenerated.
    ///
    /// # Panics
    ///
    /// Panics if `size` exceeds the current file bytes.
    pub fn remove_file(&mut self, size: u64) -> u64 {
        assert!(size <= self.file_bytes, "removing more than stored");
        let before = self.cr_count();
        self.file_bytes -= size;
        let regen = self.cr_count() - before;
        self.regenerated += regen;
        regen
    }

    /// The DRep invariant (§III-D): unsealed space strictly below one CR.
    pub fn invariant_holds(&self) -> bool {
        self.unsealed() < self.cr_size
    }

    /// The raw accounting fields for snapshots:
    /// `(capacity, cr_size, file_bytes, regenerated, discarded)`.
    pub fn snapshot_parts(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.capacity,
            self.cr_size,
            self.file_bytes,
            self.regenerated,
            self.discarded,
        )
    }

    /// Rebuilds accounting from [`CrAccounting::snapshot_parts`] output.
    ///
    /// # Errors
    ///
    /// Returns a description when the fields violate the constructor
    /// invariants (`0 < cr_size ≤ capacity`, `file_bytes ≤ capacity`).
    pub fn from_parts(parts: (u64, u64, u64, u64, u64)) -> Result<Self, &'static str> {
        let (capacity, cr_size, file_bytes, regenerated, discarded) = parts;
        if cr_size == 0 || cr_size > capacity {
            return Err("CR size must be positive and at most the capacity");
        }
        if file_bytes > capacity {
            return Err("stored file bytes exceed the sector capacity");
        }
        Ok(CrAccounting {
            capacity,
            cr_size,
            file_bytes,
            regenerated,
            discarded,
        })
    }
}

/// A sector with *materialized* sealed content: real CRs and real file
/// replicas, able to answer PoSt challenges for every committed root.
///
/// Used at small scale (tests, examples); the engine keeps only
/// [`CrAccounting`] per sector.
#[derive(Debug)]
pub struct MaterializedSector {
    /// Tag deriving CR replica ids (unique per sector).
    sector_tag: Hash256,
    accounting: CrAccounting,
    /// Live CRs by slot.
    crs: HashMap<u32, CapacityReplica>,
    /// Next never-used CR slot.
    next_slot: u32,
    /// Stored file replicas keyed by an opaque handle.
    files: HashMap<u64, SealedReplica>,
    next_handle: u64,
}

impl MaterializedSector {
    /// Registers the sector: capacity fully covered by fresh CRs.
    ///
    /// # Panics
    ///
    /// Panics if `cr_size` is zero or exceeds `capacity`.
    pub fn register(sector_tag: Hash256, capacity: u64, cr_size: u64) -> Self {
        let accounting = CrAccounting::new(capacity, cr_size);
        let mut crs = HashMap::new();
        for slot in 0..accounting.cr_count() as u32 {
            crs.insert(
                slot,
                CapacityReplica::generate(&sector_tag, slot, cr_size as usize),
            );
        }
        let next_slot = accounting.cr_count() as u32;
        MaterializedSector {
            sector_tag,
            accounting,
            crs,
            next_slot,
            files: HashMap::new(),
            next_handle: 0,
        }
    }

    /// The bookkeeping view.
    pub fn accounting(&self) -> &CrAccounting {
        &self.accounting
    }

    /// Commitments of all live CRs (registered on chain at setup; §III-D).
    pub fn cr_commitments(&self) -> Vec<Hash256> {
        let mut slots: Vec<_> = self.crs.keys().copied().collect();
        slots.sort_unstable();
        slots.iter().map(|s| self.crs[s].comm_r()).collect()
    }

    /// Stores a sealed file replica, discarding CRs as needed. Returns an
    /// opaque handle for later removal.
    ///
    /// # Panics
    ///
    /// Panics if the replica does not fit in the free space.
    pub fn store_file(&mut self, replica: SealedReplica) -> u64 {
        let size = replica.original_len() as u64;
        let dropped = self.accounting.add_file(size);
        // Discard the highest-numbered CRs first (Fig. 2(b)).
        for _ in 0..dropped {
            let &max_slot = self.crs.keys().max().expect("CRs available to drop");
            self.crs.remove(&max_slot);
        }
        let handle = self.next_handle;
        self.next_handle += 1;
        self.files.insert(handle, replica);
        handle
    }

    /// Removes a file replica by handle, regenerating CRs into the freed
    /// space (Fig. 2(c)). Returns the replica.
    ///
    /// # Panics
    ///
    /// Panics if the handle is unknown.
    pub fn remove_file(&mut self, handle: u64) -> SealedReplica {
        let replica = self.files.remove(&handle).expect("unknown file handle");
        let regen = self.accounting.remove_file(replica.original_len() as u64);
        for _ in 0..regen {
            // Regeneration reuses fresh slots; commitments are deterministic
            // per (sector_tag, slot) so re-verification is unnecessary for
            // previously seen slots and cheap for new ones.
            let slot = self.next_slot;
            self.next_slot += 1;
            self.crs.insert(
                slot,
                CapacityReplica::generate(&self.sector_tag, slot, self.accounting.cr_size as usize),
            );
        }
        replica
    }

    /// A stored file replica by handle.
    pub fn file(&self, handle: u64) -> Option<&SealedReplica> {
        self.files.get(&handle)
    }

    /// All live CRs.
    pub fn crs(&self) -> impl Iterator<Item = &CapacityReplica> {
        self.crs.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fi_crypto::sha256;
    use fi_porep::post::{derive_challenges, WindowPost};
    use fi_porep::seal::ReplicaId;

    #[test]
    fn fig2_lifecycle() {
        // Fig. 2: six CRs -> files displace CRs -> removal regenerates CR3.
        let mut acct = CrAccounting::new(600, 100);
        assert_eq!(acct.cr_count(), 6);
        assert_eq!(acct.unsealed(), 0);

        // (b): files totalling 370 leave 230 free = 2 CRs + 30 unsealed.
        acct.add_file(200);
        acct.add_file(170);
        assert_eq!(acct.cr_count(), 2);
        assert_eq!(acct.unsealed(), 30);
        assert!(acct.invariant_holds());

        // (c): dropping the 170 file frees 400 = 4 CRs + 0 unsealed.
        acct.remove_file(170);
        assert_eq!(acct.cr_count(), 4);
        assert_eq!(acct.total_regenerated(), 2);
        assert!(acct.invariant_holds());
    }

    #[test]
    fn invariant_under_random_churn() {
        let mut acct = CrAccounting::new(10_000, 64);
        let mut stored: Vec<u64> = Vec::new();
        let mut rng = fi_crypto::DetRng::from_seed_label(31, "churn");
        for _ in 0..2000 {
            if rng.bernoulli(0.6) {
                let size = 1 + rng.below(300);
                if size <= acct.free() {
                    acct.add_file(size);
                    stored.push(size);
                }
            } else if !stored.is_empty() {
                let idx = rng.index(stored.len());
                let size = stored.swap_remove(idx);
                acct.remove_file(size);
            }
            assert!(acct.invariant_holds());
            assert_eq!(
                acct.file_bytes(),
                stored.iter().sum::<u64>(),
                "accounting drift"
            );
        }
    }

    #[test]
    #[should_panic(expected = "sector overfull")]
    fn overfull_rejected() {
        let mut acct = CrAccounting::new(100, 10);
        acct.add_file(101);
    }

    #[test]
    fn materialized_sector_serves_posts_for_all_content() {
        let tag = sha256(b"mat-sector");
        let mut sector = MaterializedSector::register(tag, 640, 64);
        assert_eq!(sector.cr_commitments().len(), 10);

        // Store a file replica.
        let data = vec![9u8; 100];
        let rid = ReplicaId::derive(&sha256(b"f"), &tag, 0);
        let replica = SealedReplica::seal(&data, rid);
        let handle = sector.store_file(replica);
        assert_eq!(sector.accounting().cr_count(), 8); // 540 free -> 8 CRs
        assert!(sector.accounting().invariant_holds());

        // Every live CR answers challenges.
        let beacon = sha256(b"b1");
        for cr in sector.crs() {
            let ch = derive_challenges(&beacon, &cr.comm_r(), 2, cr.replica().chunk_count());
            let post = WindowPost::respond(cr.replica(), &ch);
            assert!(post.verify(&cr.comm_r(), &ch));
        }
        // And so does the file replica.
        let file = sector.file(handle).unwrap();
        let ch = derive_challenges(&beacon, &file.comm_r(), 2, file.chunk_count());
        assert!(WindowPost::respond(file, &ch).verify(&file.comm_r(), &ch));

        // Removing the file regenerates CRs deterministically.
        let removed = sector.remove_file(handle);
        assert_eq!(removed.unseal(), data);
        assert_eq!(sector.accounting().cr_count(), 10);
    }

    #[test]
    fn regenerated_crs_do_not_collide_with_live_ones() {
        let tag = sha256(b"regen-sector");
        let mut sector = MaterializedSector::register(tag, 300, 100);
        let rid = ReplicaId::derive(&sha256(b"g"), &tag, 0);
        let h1 = sector.store_file(SealedReplica::seal(&[1u8; 150], rid));
        sector.remove_file(h1);
        let roots = sector.cr_commitments();
        let unique: std::collections::HashSet<_> = roots.iter().collect();
        assert_eq!(unique.len(), roots.len(), "all CR commitments distinct");
    }
}
