//! Discrete-event network simulator.
//!
//! FileInsurer's protocol has hard timing constraints — transfer windows
//! (`DelayPerSize × size`), proof cycles, due/deadline windows — and its
//! liveness arguments (e.g. §III-D: a successor provider can fetch the raw
//! file elsewhere when the predecessor stalls) are *network* properties.
//! This crate provides the testbed those arguments are exercised on:
//!
//! * [`sim`] — a deterministic event queue with virtual time (stable FIFO
//!   order among simultaneous events);
//! * [`link`] — latency/bandwidth/loss link models with deterministic
//!   jitter;
//! * [`world`] — a process framework: nodes implement [`world::Process`],
//!   exchange typed messages through the link model, and set timers.
//!
//! The FileInsurer-specific actors (providers, clients driving a
//! `fi-core::Engine`) live in `fi-sim::harness`; this crate is protocol
//! agnostic.
//!
//! # Example: two nodes ping-pong
//!
//! ```
//! use fi_net::world::{Process, Ctx, World};
//! use fi_net::link::LinkModel;
//!
//! struct Pinger { got: u32 }
//! impl Process<u32> for Pinger {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
//!         if ctx.me() == 0 { ctx.send(1, 0, 8); } // ping node 1, 8 bytes
//!     }
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, from: usize, msg: u32) {
//!         self.got += 1;
//!         if msg < 3 { ctx.send(from, msg + 1, 8); }
//!     }
//! }
//!
//! let mut world = World::new(LinkModel::lan(), 7);
//! world.add(Pinger { got: 0 });
//! world.add(Pinger { got: 0 });
//! world.run_until(1_000);
//! assert!(world.now() > 0);
//! ```

pub mod link;
pub mod sim;
pub mod world;

pub use link::LinkModel;
pub use sim::Simulator;
pub use world::{Ctx, Process, Retransmitter, RetryEvent, World};
