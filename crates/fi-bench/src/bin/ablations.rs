//! Design-choice ablations from DESIGN.md §5: refresh pacing and
//! value-level subnets.

use fi_sim::ablation::{render_pacing, subnet_replicas};

fn main() {
    println!(
        "{}",
        fi_bench::banner(
            "Ablations — refresh pacing and value-level subnets",
            "FileInsurer (ICDCS'22), Fig. 7 (SampleExp) and §VI-D"
        )
    );
    println!("refresh pacing (2000 files, mean period 200 ticks, transfer 10 ticks):\n");
    println!("{}", render_pacing(2_000, 0xAB1A));

    println!("value-level subnets (5000 files, Zipf-like values, k=10, 3 levels):\n");
    let out = subnet_replicas(5_000, 10, 3, 0xAB1B);
    println!("  replicas without subnets: {}", out.replicas_flat);
    println!("  replicas with subnets:    {}", out.replicas_subnets);
    println!(
        "  saving: {:.1}x",
        out.replicas_flat as f64 / out.replicas_subnets as f64
    );
}
