//! The Galois field GF(2^8) with the AES reduction polynomial.
//!
//! Elements are bytes; addition is XOR; multiplication is polynomial
//! multiplication modulo `x^8 + x^4 + x^3 + x + 1` (0x11B). Scalar
//! multiplication and division go through log/antilog tables with generator
//! `0x03` (the standard construction); the bulk [`Gf256::mul_acc`] kernel
//! instead streams through a precomputed 256×256 product table so the inner
//! loop is a branch-free single lookup per byte, processed in `u64`-wide
//! chunks.
//!
//! All tables are built once per process and shared via [`OnceLock`]:
//! `Gf256` itself is a copyable handle, so every `ReedSolomon` instance (and
//! there can be thousands — one per segmented file) references the same
//! 64 KiB product table instead of carrying a private copy.

use std::sync::OnceLock;

/// The shared, lazily-built field tables.
struct Tables {
    /// `exp[i] = g^i` for generator g = 0x03; doubled length avoids a mod.
    exp: [u8; 512],
    /// `log[x]` for x != 0; `log[0]` is unused.
    log: [u16; 256],
    /// Flat 256×256 product table: `mul[(a << 8) | b] = a·b`. Row `a` is the
    /// 256-byte multiples-of-`a` lookup streamed by [`Gf256::mul_acc`]; one
    /// row fits comfortably in L1.
    mul: Box<[u8; 65536]>,
    /// Split low/high-nibble product tables: for each coefficient `c`,
    /// bytes `0..16` hold `c·i` and bytes `16..32` hold `c·(i << 4)`
    /// (i = 0..15). By GF(2) linearity `c·b = c·(b & 0x0F) ^ c·(b >> 4 << 4)`,
    /// which is exactly the shape the x86 `pshufb` 16-lane shuffle consumes.
    nib: Box<[[u8; 32]; 256]>,
}

static TABLES: OnceLock<Tables> = OnceLock::new();

fn tables() -> &'static Tables {
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x = 1u8;
        for (i, e) in exp.iter_mut().enumerate().take(255) {
            *e = x;
            log[x as usize] = i as u16;
            x = slow_mul(x, 0x03);
        }
        debug_assert_eq!(x, 1, "generator order must be 255");
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        let mut mul = vec![0u8; 65536].into_boxed_slice();
        for a in 1..256usize {
            let log_a = log[a] as usize;
            for b in 1..256usize {
                mul[(a << 8) | b] = exp[log_a + log[b] as usize];
            }
        }
        let mut nib = vec![[0u8; 32]; 256].into_boxed_slice();
        for c in 0..256usize {
            for i in 0..16usize {
                nib[c][i] = mul[(c << 8) | i];
                nib[c][16 + i] = mul[(c << 8) | (i << 4)];
            }
        }
        let mul: Box<[u8; 65536]> = mul.try_into().expect("table is 65536 bytes");
        let nib: Box<[[u8; 32]; 256]> = nib.try_into().expect("table is 256 rows");
        Tables { exp, log, mul, nib }
    })
}

/// Handle to the process-wide GF(2^8) tables.
///
/// Construction is free after the first call (the tables are built once and
/// shared), and the handle is `Copy`, so it can be embedded anywhere without
/// cost. All arithmetic on field elements is table lookups.
///
/// # Example
///
/// ```
/// use fi_erasure::Gf256;
/// let gf = Gf256::new();
/// let a = 0x57;
/// let b = 0x83;
/// let prod = gf.mul(a, b);
/// assert_eq!(prod, 0xc1); // AES reference value
/// assert_eq!(gf.div(prod, b), a);
/// ```
#[derive(Clone, Copy)]
pub struct Gf256 {
    t: &'static Tables,
}

impl std::fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Gf256(shared tables)")
    }
}

impl Default for Gf256 {
    fn default() -> Self {
        Self::new()
    }
}

/// Carry-less multiply modulo 0x11B, used only to build the tables.
fn slow_mul(mut a: u8, mut b: u8) -> u8 {
    let mut acc = 0u8;
    while b != 0 {
        if b & 1 != 0 {
            acc ^= a;
        }
        let hi = a & 0x80 != 0;
        a <<= 1;
        if hi {
            a ^= 0x1B; // reduce by x^8 + x^4 + x^3 + x + 1
        }
        b >>= 1;
    }
    acc
}

impl Gf256 {
    /// Returns a handle to the shared field tables (built on first use).
    pub fn new() -> Self {
        Gf256 { t: tables() }
    }

    /// Field addition (= subtraction = XOR).
    #[inline(always)]
    pub fn add(&self, a: u8, b: u8) -> u8 {
        a ^ b
    }

    /// Field multiplication — one lookup in the product table.
    #[inline(always)]
    pub fn mul(&self, a: u8, b: u8) -> u8 {
        self.t.mul[((a as usize) << 8) | b as usize]
    }

    /// Field division.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline(always)]
    pub fn div(&self, a: u8, b: u8) -> u8 {
        assert!(b != 0, "division by zero in GF(256)");
        if a == 0 {
            0
        } else {
            self.t.exp[255 + self.t.log[a as usize] as usize - self.t.log[b as usize] as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if `a == 0`.
    #[inline(always)]
    pub fn inv(&self, a: u8) -> u8 {
        assert!(a != 0, "zero has no inverse in GF(256)");
        self.t.exp[255 - self.t.log[a as usize] as usize]
    }

    /// `a^n` by table arithmetic.
    pub fn pow(&self, a: u8, n: u32) -> u8 {
        if n == 0 {
            return 1;
        }
        if a == 0 {
            return 0;
        }
        let e = (self.t.log[a as usize] as u64 * n as u64) % 255;
        self.t.exp[e as usize]
    }

    /// The 256-byte multiples-of-`coeff` row of the product table.
    #[inline(always)]
    fn row(&self, coeff: u8) -> &'static [u8; 256] {
        let start = (coeff as usize) << 8;
        self.t.mul[start..start + 256]
            .try_into()
            .expect("row is 256 bytes")
    }

    /// In-place `dst ^= coeff * src` over byte slices — the inner loop of
    /// Reed–Solomon encoding and reconstruction.
    ///
    /// On x86-64 with AVX2 the bulk of the stream goes through the split
    /// low/high-nibble tables via `pshufb` (32 products per shuffle pair);
    /// elsewhere, and for tails, the loop walks `u64`-wide chunks doing
    /// eight branch-free lookups in the coefficient's 256-byte
    /// product-table row per word. `coeff == 0` is a no-op and `coeff == 1`
    /// degenerates to a word-wide XOR. All paths are pinned byte-identical
    /// to the scalar reference by `tests/differential.rs`.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn mul_acc(&self, dst: &mut [u8], src: &[u8], coeff: u8) {
        assert_eq!(dst.len(), src.len(), "length mismatch");
        if coeff == 0 {
            return;
        }
        if coeff == 1 {
            xor_slice(dst, src);
            return;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            let head = dst.len() - dst.len() % 32;
            // SAFETY: AVX2 support was just verified at runtime, and the
            // slices passed are exact 32-byte multiples of equal length.
            unsafe {
                mul_acc_avx2(&mut dst[..head], &src[..head], &self.t.nib[coeff as usize]);
            }
            let row = self.row(coeff);
            for (db, sb) in dst[head..].iter_mut().zip(&src[head..]) {
                *db ^= row[*sb as usize];
            }
            return;
        }
        self.mul_acc_wide(dst, src, coeff);
    }

    /// Portable `u64`-wide fallback for [`Gf256::mul_acc`] (`coeff > 1`).
    fn mul_acc_wide(&self, dst: &mut [u8], src: &[u8], coeff: u8) {
        let row = self.row(coeff);
        let mut d = dst.chunks_exact_mut(8);
        let mut s = src.chunks_exact(8);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let w = u64::from_le_bytes(dc.try_into().expect("chunk is 8 bytes"));
            let sv = u64::from_le_bytes(sc.try_into().expect("chunk is 8 bytes"));
            let m = (row[(sv & 0xff) as usize] as u64)
                | (row[((sv >> 8) & 0xff) as usize] as u64) << 8
                | (row[((sv >> 16) & 0xff) as usize] as u64) << 16
                | (row[((sv >> 24) & 0xff) as usize] as u64) << 24
                | (row[((sv >> 32) & 0xff) as usize] as u64) << 32
                | (row[((sv >> 40) & 0xff) as usize] as u64) << 40
                | (row[((sv >> 48) & 0xff) as usize] as u64) << 48
                | (row[(sv >> 56) as usize] as u64) << 56;
            dc.copy_from_slice(&(w ^ m).to_le_bytes());
        }
        for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
            *db ^= row[*sb as usize];
        }
    }
}

/// AVX2 kernel: `dst ^= c·src` over exact 32-byte multiples, using the
/// coefficient's split nibble tables (`nib[0..16]` = `c·i`, `nib[16..32]` =
/// `c·(i<<4)`) — two `pshufb` shuffles and three XORs per 32 bytes.
///
/// # Safety
///
/// Caller must ensure AVX2 is available and `dst.len() == src.len()` with
/// both a multiple of 32.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mul_acc_avx2(dst: &mut [u8], src: &[u8], nib: &[u8; 32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(dst.len() % 32, 0);
    debug_assert_eq!(dst.len(), src.len());
    unsafe {
        let lo_tbl = _mm256_broadcastsi128_si256(_mm_loadu_si128(nib.as_ptr() as *const __m128i));
        let hi_tbl =
            _mm256_broadcastsi128_si256(_mm_loadu_si128(nib.as_ptr().add(16) as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        let mut i = 0;
        while i < dst.len() {
            let s = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let lo = _mm256_and_si256(s, mask);
            let hi = _mm256_and_si256(_mm256_srli_epi64(s, 4), mask);
            let prod = _mm256_xor_si256(
                _mm256_shuffle_epi8(lo_tbl, lo),
                _mm256_shuffle_epi8(hi_tbl, hi),
            );
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_xor_si256(d, prod),
            );
            i += 32;
        }
    }
}

/// `dst ^= src`, word-wide.
fn xor_slice(dst: &mut [u8], src: &[u8]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (dc, sc) in (&mut d).zip(&mut s) {
        let w = u64::from_ne_bytes(dc.try_into().expect("chunk is 8 bytes"))
            ^ u64::from_ne_bytes(sc.try_into().expect("chunk is 8 bytes"));
        dc.copy_from_slice(&w.to_ne_bytes());
    }
    for (db, sb) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *db ^= sb;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_reference_product() {
        let gf = Gf256::new();
        assert_eq!(gf.mul(0x57, 0x83), 0xc1);
        assert_eq!(gf.mul(0x57, 0x13), 0xfe);
    }

    #[test]
    fn product_table_matches_slow_mul_exhaustively() {
        let gf = Gf256::new();
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(gf.mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn field_axioms_exhaustive_spot() {
        let gf = Gf256::new();
        // Identity, zero, commutativity & associativity on a grid.
        for a in (0u16..256).step_by(7) {
            let a = a as u8;
            assert_eq!(gf.mul(a, 1), a);
            assert_eq!(gf.mul(a, 0), 0);
            for b in (0u16..256).step_by(11) {
                let b = b as u8;
                assert_eq!(gf.mul(a, b), gf.mul(b, a));
                for c in (0u16..256).step_by(29) {
                    let c = c as u8;
                    assert_eq!(gf.mul(gf.mul(a, b), c), gf.mul(a, gf.mul(b, c)));
                    // Distributivity.
                    assert_eq!(gf.mul(a, b ^ c), gf.mul(a, b) ^ gf.mul(a, c));
                }
            }
        }
    }

    #[test]
    fn every_nonzero_element_invertible() {
        let gf = Gf256::new();
        for a in 1..=255u8 {
            let inv = gf.inv(a);
            assert_eq!(gf.mul(a, inv), 1, "a={a}");
            assert_eq!(gf.div(1, a), inv);
            assert_eq!(gf.div(a, a), 1);
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = Gf256::new();
        for a in [0u8, 1, 2, 3, 0x53, 0xFF] {
            let mut acc = 1u8;
            for n in 0..20u32 {
                assert_eq!(gf.pow(a, n), acc, "a={a} n={n}");
                acc = gf.mul(acc, a);
            }
        }
        assert_eq!(gf.pow(0, 0), 1); // convention 0^0 = 1
    }

    #[test]
    fn mul_acc_matches_scalar_loop() {
        let gf = Gf256::new();
        // Lengths straddling the u64 chunking: empty, sub-word, word
        // multiples, and word multiples ± 1.
        for len in [0usize, 1, 3, 7, 8, 9, 16, 63, 64, 65, 256, 1000] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            for coeff in [0u8, 1, 2, 0x1D, 0x80, 0xFF] {
                let mut dst = vec![0xAAu8; len];
                let mut expect = dst.clone();
                gf.mul_acc(&mut dst, &src, coeff);
                for (e, s) in expect.iter_mut().zip(&src) {
                    *e ^= gf.mul(coeff, *s);
                }
                assert_eq!(dst, expect, "len={len} coeff={coeff}");
            }
        }
    }

    #[test]
    fn wide_fallback_matches_dispatching_mul_acc() {
        // On AVX2 hosts `mul_acc` takes the pshufb path; pin the portable
        // fallback against it so both kernels stay covered everywhere.
        let gf = Gf256::new();
        for len in [0usize, 1, 31, 32, 33, 64, 100, 1000] {
            let src: Vec<u8> = (0..len).map(|i| (i * 73 % 256) as u8).collect();
            for coeff in [2u8, 0x1D, 0x80, 0xFF] {
                let mut a = vec![0x5Au8; len];
                let mut b = a.clone();
                gf.mul_acc(&mut a, &src, coeff);
                gf.mul_acc_wide(&mut b, &src, coeff);
                assert_eq!(a, b, "len={len} coeff={coeff}");
            }
        }
    }

    #[test]
    fn nibble_tables_recombine_to_products() {
        let gf = Gf256::new();
        for c in 0..=255u8 {
            let nib = &gf.t.nib[c as usize];
            for b in 0..=255u8 {
                let recombined = nib[(b & 0x0F) as usize] ^ nib[16 + (b >> 4) as usize];
                assert_eq!(recombined, gf.mul(c, b), "c={c} b={b}");
            }
        }
    }

    #[test]
    fn handles_share_one_table() {
        let a = Gf256::new();
        let b = Gf256::new();
        assert!(std::ptr::eq(a.t, b.t), "tables must be process-wide");
    }
}
