//! Theorem 1 experiment: how much raw file data the network can carry.
//!
//! Theorem 1: the total raw size storable is
//! `min( Ns·minCapacity / (2·r1·k), Ns·minCapacity / r2 )` — the first
//! term is the **capacity restriction** (every file stores `k·value`
//! replicas and total replica size may use at most half the capacity), the
//! second the **value restriction** (total value ≤ Nm_v·minValue).
//!
//! The experiment draws a workload from a size/value distribution, fills
//! the network file by file until either restriction trips, and compares
//! the stored raw size with the formula.

use fi_analysis::theorems::{theorem1_max_total_size, workload_r1, workload_r2};
use fi_crypto::DetRng;

use crate::report::{sci, TextTable};

/// A workload generator for the scalability experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Every file: size 1, value `minValue`.
    Homogeneous,
    /// Sizes exponential(4), values uniform in {1,2,3} × minValue.
    Mixed,
    /// Sizes uniform in the interval 1..8, all values `minValue` (size-heavy).
    SizeHeavy,
    /// Sizes 1, values uniform {1..10} × minValue (value-heavy).
    ValueHeavy,
}

impl Workload {
    /// All workloads.
    pub const ALL: [Workload; 4] = [
        Workload::Homogeneous,
        Workload::Mixed,
        Workload::SizeHeavy,
        Workload::ValueHeavy,
    ];

    /// Label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Homogeneous => "homogeneous",
            Workload::Mixed => "mixed",
            Workload::SizeHeavy => "size-heavy",
            Workload::ValueHeavy => "value-heavy",
        }
    }

    /// Draws one `(size, value)` pair (minValue = 1 units).
    pub fn sample(&self, rng: &mut DetRng) -> (f64, f64) {
        match self {
            Workload::Homogeneous => (1.0, 1.0),
            Workload::Mixed => (rng.sample_exp(4.0).max(0.01), (1 + rng.below(3)) as f64),
            Workload::SizeHeavy => (1.0 + 7.0 * rng.f64(), 1.0),
            Workload::ValueHeavy => (1.0, (1 + rng.below(10)) as f64),
        }
    }
}

/// One scalability row.
#[derive(Debug, Clone)]
pub struct ScalabilityRow {
    /// Workload label.
    pub workload: &'static str,
    /// Workload constant r1 (eq. 1).
    pub r1: f64,
    /// Workload constant r2 (eq. 2).
    pub r2: f64,
    /// Theorem 1 prediction for total storable raw size.
    pub predicted: f64,
    /// Raw size actually stored before a restriction tripped.
    pub measured: f64,
    /// Which restriction bound first ("capacity" or "value").
    pub binding: &'static str,
}

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScalabilityConfig {
    /// Sector count.
    pub ns: u64,
    /// `minCapacity` (size units per sector).
    pub min_capacity: u64,
    /// Replicas per `minValue` of value.
    pub k: u32,
    /// `capPara`.
    pub cap_para: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for ScalabilityConfig {
    fn default() -> Self {
        ScalabilityConfig {
            ns: 1_000,
            min_capacity: 64,
            k: 10,
            cap_para: 2,
            seed: 0x5CA1E,
        }
    }
}

/// Fills the network under `workload` until a restriction trips.
pub fn run_one(workload: Workload, config: &ScalabilityConfig) -> ScalabilityRow {
    let mut rng = DetRng::from_seed_label(config.seed, workload.label());
    let total_capacity = (config.ns * config.min_capacity) as f64;
    let max_value = (config.cap_para * config.ns) as f64; // Nm_v·minValue
    let mut stored_size = 0.0f64;
    let mut replica_size = 0.0f64;
    let mut stored_value = 0.0f64;
    let mut sizes = Vec::new();
    let mut values = Vec::new();
    let binding;
    loop {
        let (size, value) = workload.sample(&mut rng);
        let cp = config.k as f64 * value;
        if replica_size + size * cp > total_capacity / 2.0 {
            binding = "capacity";
            break;
        }
        if stored_value + value > max_value {
            binding = "value";
            break;
        }
        replica_size += size * cp;
        stored_value += value;
        stored_size += size;
        sizes.push(size);
        values.push(value);
    }
    let r1 = workload_r1(&sizes, &values, 1.0);
    let r2 = workload_r2(
        &sizes,
        &values,
        1.0,
        config.min_capacity as f64,
        config.cap_para as f64,
    );
    let predicted = theorem1_max_total_size(
        config.ns as f64,
        config.min_capacity as f64,
        config.k as f64,
        r1,
        r2,
    );
    ScalabilityRow {
        workload: workload.label(),
        r1,
        r2,
        predicted,
        measured: stored_size,
        binding,
    }
}

/// Runs all workloads.
pub fn run_all(config: &ScalabilityConfig) -> Vec<ScalabilityRow> {
    Workload::ALL.iter().map(|w| run_one(*w, config)).collect()
}

/// Renders rows.
pub fn render(rows: &[ScalabilityRow]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "r1",
        "r2",
        "predicted max size",
        "measured stored size",
        "measured/predicted",
        "binding restriction",
    ]);
    for r in rows {
        table.row(vec![
            r.workload.to_string(),
            format!("{:.3}", r.r1),
            format!("{:.4}", r.r2),
            sci(r.predicted),
            sci(r.measured),
            format!("{:.3}", r.measured / r.predicted),
            r.binding.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_matches_formula_closely() {
        let row = run_one(Workload::Homogeneous, &ScalabilityConfig::default());
        // r1 = 1, so capacity term = Ns·minCap/(2k) = 64_000/20 = 3200;
        // value term = Ns·minCap/r2 with r2 = 64/2 = 32 ⇒ 2000. Value binds.
        assert_eq!(row.binding, "value");
        assert!((row.r1 - 1.0).abs() < 1e-9);
        let ratio = row.measured / row.predicted;
        assert!((0.98..=1.02).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn measured_never_exceeds_prediction_materially() {
        for row in run_all(&ScalabilityConfig::default()) {
            let ratio = row.measured / row.predicted;
            assert!(
                ratio < 1.05,
                "{}: stored {} vs predicted {}",
                row.workload,
                row.measured,
                row.predicted
            );
            assert!(
                ratio > 0.5,
                "{}: ratio {ratio} suspiciously low",
                row.workload
            );
        }
    }

    #[test]
    fn capacity_binds_when_value_cap_is_loose() {
        let config = ScalabilityConfig {
            cap_para: 1_000_000,
            ..ScalabilityConfig::default()
        };
        let row = run_one(Workload::Homogeneous, &config);
        assert_eq!(row.binding, "capacity");
    }
}
