//! The unified node role: beacon-rotated proposer, verifying replica, and
//! anti-entropy peer in one process.
//!
//! PR 5's fixed proposer/follower split is gone. Every [`Validator`] runs
//! the same code:
//!
//! * **rotation** — the leader for a slot is position 0 of
//!   [`ProposerSchedule::order`]; fallback rank `r` arms its proposal
//!   timer `r` skip-timeouts later and only speaks if the chain has not
//!   filled the slot yet. A crashed or partitioned leader therefore costs
//!   one timeout, not liveness (DESIGN.md §12);
//! * **fork-choice** — every received block goes through
//!   [`ChainTracker::insert`]: verify-then-prefer, schedule-priority
//!   tie-breaks, equivocation conviction. When conviction produces new
//!   [`EquivocationEvidence`](crate::chain::EquivocationEvidence), the
//!   convicting node gossips the block pair so every peer reaches the
//!   same verdict;
//! * **mempool** — admitted submissions are forwarded once to the other
//!   validators, so whichever of them leads an upcoming slot can include
//!   the transaction ([`Mempool::observe_committed`] reconciles every
//!   pool with whatever branch wins);
//! * **anti-entropy** — a periodic [`NodeMsg::Status`] exchange pushes
//!   best-chain blocks to lagging peers, which is what re-converges nodes
//!   after crashes, partitions, and lost broadcasts;
//! * **cold join** — a node started with [`NodeStart::ColdJoin`] syncs a
//!   snapshot + checkpoint from a validator
//!   ([`Engine::snapshot_restore`] + [`Engine::replay_from`]) and then
//!   behaves like any other replica anchored at the sync point.
//!
//! A node outside the validator set (the schedule never ranks it) is a
//! **watcher**: same process, it just never proposes — the cluster uses
//! one as the cold joiner and the workload driver embeds the same tracker.

use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

use fi_chain::gas::GasSchedule;
use fi_core::engine::{Checkpoint, Engine, StateView};
use fi_core::ops::{Op, OpRecord};
use fi_crypto::Hash256;
use fi_net::sim::SimTime;
use fi_net::world::{Ctx, NodeIdx, Process, Retransmitter, RetryEvent};

use crate::chain::{ChainTracker, InsertOutcome, ReplayMode, SealedBlock};
use crate::mempool::{Mempool, Tx};
use crate::schedule::ProposerSchedule;

/// Timer tag: periodic anti-entropy status exchange.
pub const TAG_SYNC: u64 = 1;
/// Timer tag: a cold-start node's wake-up.
pub const TAG_WAKE: u64 = 2;
/// Timer tag: a joining node re-sends its unanswered `JoinRequest`.
pub const TAG_JOIN_RETRY: u64 = 3;
/// First timer tag of the per-slot proposal alarms: slot `s` fires tag
/// `TAG_SLOT_BASE + s`.
pub const TAG_SLOT_BASE: u64 = 1 << 16;
/// First timer tag owned by a node's [`Retransmitter`]; all protocol tags
/// stay below it.
pub const RETX_TAG_BASE: u64 = 1 << 48;

/// Blocks pushed per anti-entropy exchange (the next exchange continues).
pub(crate) const SYNC_BATCH: usize = 16;

/// Consecutive orphaned receipts after which a cold joiner concludes its
/// synced anchor fell off the canonical chain and re-joins from scratch
/// (a snapshot is served at the *current* head, which a later reorg can
/// abandon — genesis nodes never wedge this way, their anchor is
/// genesis).
const STUCK_ORPHANS: u32 = 32;

/// Every message of the node protocol.
#[derive(Debug, Clone)]
pub enum NodeMsg {
    /// Client → validator: submit a transaction. `key` is the client's
    /// retransmit key, echoed in the ack.
    SubmitTx {
        /// Sender-chosen retransmit key.
        key: u64,
        /// The transaction.
        tx: Tx,
    },
    /// Validator → client: the submission was received (admitted *or*
    /// rejected — the ack only stops the client's retransmit timer).
    TxAck {
        /// The submission's key.
        key: u64,
    },
    /// Validator → validator: an admitted submission, forwarded once so
    /// upcoming leaders hold it too. Never acked, never re-forwarded.
    ForwardTx {
        /// The transaction.
        tx: Tx,
    },
    /// A sealed block. `key != 0` is a retransmitted proposal broadcast
    /// expecting a [`NodeMsg::BlockAck`]; `key == 0` is single-shot
    /// gossip/anti-entropy.
    Block {
        /// Retransmit key, 0 for unacked pushes.
        key: u64,
        /// The block.
        block: SealedBlock,
    },
    /// Block received (possibly a duplicate).
    BlockAck {
        /// The acknowledged key.
        key: u64,
    },
    /// Anti-entropy: my best chain is `height` ending at block `head`.
    Status {
        /// Sender's head height.
        height: u64,
        /// Sender's head block hash.
        head: Hash256,
    },
    /// Push me your best-chain blocks above the highest locator entry we
    /// share (the requester's divergence point from your perspective).
    BlockRequest {
        /// The requester's best-chain locator, newest first — dense near
        /// its head, exponentially sparser toward the anchor.
        locator: Vec<Hash256>,
    },
    /// Cold-start node → validator: send me your state.
    JoinRequest,
    /// Validator → joiner: durable snapshot bytes, the checkpoint they
    /// commit to, a (possibly empty) op-log suffix, and the block-tree
    /// anchor coordinates of the synced head.
    SnapshotReply {
        /// `Engine::snapshot_save` bytes at the checkpoint.
        snapshot: Vec<u8>,
        /// The checkpoint the snapshot was taken at.
        checkpoint: Checkpoint,
        /// Ops applied after the checkpoint.
        suffix: Vec<OpRecord>,
        /// Hash of the head block the state corresponds to.
        head: Hash256,
        /// Height of that head.
        height: u64,
        /// Slot of that head.
        slot: u64,
    },
}

/// Node-local consensus timing (shared by every node of a cluster; not
/// part of [`fi_core::params::ProtocolParams`] because it never touches
/// state — only when nodes speak).
#[derive(Debug, Clone)]
pub struct ConsensusConfig {
    /// Virtual ticks per slot; slot `s` opens at `s × block_interval`
    /// and its block's `AdvanceTo` barrier targets exactly that time.
    pub block_interval: SimTime,
    /// Extra wait per fallback rank before it proposes into a slot the
    /// scheduled leader left empty.
    pub skip_timeout: SimTime,
    /// Ticks between anti-entropy status exchanges.
    pub sync_every: SimTime,
    /// Slots after which validators stop proposing (sync continues).
    pub slots_total: u64,
    /// Keep the full op log on the head engine (disables the join-serving
    /// checkpoint truncation side effect mattering — used by the replay
    /// test).
    pub record_op_log: bool,
    /// Ticks between join-request retries while syncing.
    pub join_retry: SimTime,
}

impl ConsensusConfig {
    /// Timing defaults matched to [`ClusterConfig::small`]
    /// (interval 30, one-third skip timeout, sync twice per slot).
    ///
    /// [`ClusterConfig::small`]: crate::cluster::ClusterConfig::small
    pub fn with_interval(block_interval: SimTime, slots_total: u64) -> Self {
        ConsensusConfig {
            block_interval,
            skip_timeout: (block_interval / 3).max(2),
            sync_every: (block_interval / 2).max(2),
            slots_total,
            record_op_log: false,
            join_retry: 20,
        }
    }
}

/// How a node comes to life.
pub enum NodeStart {
    /// Online from genesis with its own copy of the genesis engine.
    Genesis(Box<Engine>),
    /// Offline until `wake_at`, then syncs from a validator's snapshot.
    ColdJoin {
        /// Virtual time at which the node boots and requests state.
        wake_at: SimTime,
    },
}

/// What a node did, readable after a run (the world owns the boxed
/// processes, so results surface through shared handles).
#[derive(Debug, Default)]
pub struct ValidatorReport {
    /// Blocks this node sealed as a slot leader or fallback.
    pub blocks_proposed: u64,
    /// Head adoption log: `(time, height, head block hash)` every time
    /// fork-choice moved this node's head — the raw series the
    /// recovery-latency metrics are computed from.
    pub heads: Vec<(SimTime, u64, Hash256)>,
    /// Head switches that abandoned previously-adopted blocks.
    pub reorgs: u64,
    /// Equivocation convictions this node recorded.
    pub equivocations_seen: u64,
    /// Blocks banned because replay contradicted their claimed roots.
    pub verify_failures: u64,
    /// Proposal broadcasts whose retransmit budget ran out unacked.
    pub blocks_given_up: u64,
    /// Join requests answered with a snapshot.
    pub joins_served: u64,
    /// Snapshots taken (on-demand, serving joins).
    pub snapshots_taken: u64,
    /// Crash/restart cycles survived.
    pub restarts: u64,
    /// Consensus-side injections this node included in its own proposals
    /// (a losing sibling's inclusions count too; cluster-wide the sum is
    /// therefore ≥ the injection list length once all are committed).
    pub injections_included: u64,
    /// For a cold joiner: the height its snapshot sync covered.
    pub joined_at_height: Option<u64>,
    /// Final head height.
    pub final_height: u64,
    /// Final head slot.
    pub final_slot: u64,
    /// Final head block hash.
    pub final_head: Option<Hash256>,
    /// `(height, hash)` of every block on the final adopted chain above
    /// the node's anchor, oldest first — the canonical spine
    /// [`fi_sim::robustness::heights_to_reconvergence`] measures against.
    pub final_chain: Vec<(u64, Hash256)>,
    /// Final engine state root.
    pub final_state_root: Option<Hash256>,
    /// Live files in the final engine state (the §V scenarios assert the
    /// workload + fault injections actually shaped state).
    pub final_files: u64,
    /// Receipt root of the final sealed engine block.
    pub final_receipt_root: Option<Hash256>,
    /// Ingest segments the head engine staged through the parallel
    /// pipeline. Execution-strategy counter: replaying followers may
    /// report different values than the proposer without any consensus
    /// divergence (see `EngineStats::consensus`).
    pub batches_staged_parallel: u64,
    /// Staged ingest segments whose ledger assumptions failed
    /// commit-time revalidation and re-executed sequentially on the
    /// head engine. Execution-strategy counter.
    pub batches_fell_back_sequential: u64,
    /// Due audit buckets the head engine committed through the batched
    /// per-shard write path instead of the sequential fold.
    /// Execution-strategy counter.
    pub audit_commit_batches: u64,
    /// Full op log of the head engine (only when
    /// [`ConsensusConfig::record_op_log`]).
    pub final_op_log: Vec<OpRecord>,
    /// The node's mempool counters (updated on every head change).
    pub final_mempool: Option<crate::mempool::MempoolStats>,
}

/// The unified node process. See the module docs.
pub struct Validator {
    me: NodeIdx,
    schedule: ProposerSchedule,
    mode: ReplayMode,
    cfg: ConsensusConfig,
    /// Absent until a cold joiner has synced.
    tracker: Option<ChainTracker>,
    mempool: Option<Mempool>,
    /// Peers proposals are broadcast to (with retransmit + ack).
    broadcast: Vec<NodeIdx>,
    /// Peers the periodic status exchange rotates over.
    sync_targets: Vec<NodeIdx>,
    /// Consensus-side op injections: `(slot, op)` — included by whichever
    /// node leads the first slot `>= slot` (deduped through the chain).
    injections: Vec<(u64, Op)>,
    retx: Retransmitter<NodeMsg>,
    next_key: u64,
    proposed_slots: HashSet<u64>,
    sync_cursor: usize,
    join_cursor: usize,
    evidence_gossiped: usize,
    /// Last time a `BlockRequest` went out — at most one per
    /// `sync_every`, or orphaned push batches would each trigger a
    /// request that triggers a bigger push batch (a message explosion).
    last_block_request: SimTime,
    /// Consecutive orphaned receipts (see [`STUCK_ORPHANS`]).
    orphan_streak: u32,
    cold_joiner: bool,
    /// Whether the periodic `TAG_SYNC` chain is armed (it survives a
    /// tracker reset but not a crash).
    sync_armed: bool,
    /// Last head recorded in the report (dedup for the adoption log).
    last_head: Option<Hash256>,
    /// Height through which the mempool has observed committed ops.
    observed_height: u64,
    seen_reorgs: u64,
    start: Option<NodeStart>,
    report: Rc<RefCell<ValidatorReport>>,
}

impl Validator {
    /// A node `me` over `schedule`. `broadcast` receives its sealed
    /// proposals (retransmitted until acked); `sync_targets` are the
    /// peers its anti-entropy rotates over (and, for a cold joiner, the
    /// validators it requests a snapshot from).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: NodeIdx,
        start: NodeStart,
        schedule: ProposerSchedule,
        mode: ReplayMode,
        cfg: ConsensusConfig,
        broadcast: Vec<NodeIdx>,
        sync_targets: Vec<NodeIdx>,
        injections: Vec<(u64, Op)>,
        report: Rc<RefCell<ValidatorReport>>,
    ) -> Self {
        let (tracker, mempool) = match &start {
            NodeStart::Genesis(engine) => (
                Some(ChainTracker::new(
                    (**engine).clone(),
                    schedule.clone(),
                    mode,
                )),
                Some(Mempool::new(
                    engine.params().clone(),
                    GasSchedule::default(),
                )),
            ),
            NodeStart::ColdJoin { .. } => (None, None),
        };
        let cold_joiner = matches!(&start, NodeStart::ColdJoin { .. });
        let retry = cfg.skip_timeout.max(2);
        Validator {
            me,
            schedule,
            mode,
            cfg,
            tracker,
            mempool,
            broadcast,
            sync_targets,
            injections,
            retx: Retransmitter::new(retry, 24, RETX_TAG_BASE),
            next_key: 1,
            proposed_slots: HashSet::new(),
            sync_cursor: 0,
            join_cursor: 0,
            evidence_gossiped: 0,
            last_block_request: 0,
            orphan_streak: 0,
            cold_joiner,
            sync_armed: false,
            last_head: None,
            observed_height: 0,
            seen_reorgs: 0,
            start: Some(start),
            report,
        }
    }

    /// The node's verified chain view (absent until a cold joiner has
    /// synced).
    pub fn tracker(&self) -> Option<&ChainTracker> {
        self.tracker.as_ref()
    }

    /// Arms the proposal alarm for every future slot where the schedule
    /// ranks this node: slot `s` at rank `r` fires at
    /// `s × interval + r × skip_timeout`.
    fn arm_slot_timers(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        let now = ctx.now();
        for slot in 1..=self.cfg.slots_total {
            let Some(rank) = self.schedule.rank_of(slot, self.me) else {
                continue;
            };
            let at = slot * self.cfg.block_interval + rank as u64 * self.cfg.skip_timeout;
            if at > now {
                ctx.set_timer(at - now, TAG_SLOT_BASE + slot);
            }
        }
    }

    /// Slot alarm: propose iff the chain has not filled the slot and this
    /// node has not already sealed it on an abandoned branch (sealing it
    /// again would be equivocation).
    fn maybe_propose(&mut self, ctx: &mut Ctx<'_, NodeMsg>, slot: u64) {
        let Some(tracker) = self.tracker.as_mut() else {
            return;
        };
        if self.proposed_slots.contains(&slot) || tracker.head_slot() >= slot {
            return;
        }
        let Some(rank) = self.schedule.rank_of(slot, self.me) else {
            return;
        };
        let mempool = self.mempool.as_mut().expect("tracker implies mempool");
        let mut ops: Vec<Op> = Vec::new();
        // Due consensus-side injections, deduped through the adopted
        // chain (a rotating peer may have injected them already).
        let mut injected = 0;
        for (due_slot, op) in &self.injections {
            if *due_slot <= slot && !tracker.op_committed(&op.digest()) {
                ops.push(op.clone());
                injected += 1;
            }
        }
        self.report.borrow_mut().injections_included += injected;
        let (txs, _gas) = mempool.select_block();
        ops.extend(txs.into_iter().map(|tx| tx.op));
        ops.push(Op::AdvanceTo {
            target: slot * self.cfg.block_interval,
        });
        let block = tracker.seal_block(slot, rank as u32, self.me, ops);
        self.proposed_slots.insert(slot);
        self.report.borrow_mut().blocks_proposed += 1;
        self.after_head_change(ctx);
        let bytes = block.wire_bytes();
        for &peer in &self.broadcast.clone() {
            let key = self.next_key;
            self.next_key += 1;
            self.retx.send(
                ctx,
                peer,
                key,
                NodeMsg::Block {
                    key,
                    block: block.clone(),
                },
                bytes,
            );
        }
    }

    /// Reconciles the mempool and the report after fork-choice possibly
    /// moved the head. Idempotent: does nothing when the head is
    /// unchanged since the last call.
    fn after_head_change(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        let Some(tracker) = self.tracker.as_ref() else {
            return;
        };
        if self.last_head == Some(tracker.head()) {
            return;
        }
        // Feed every newly-adopted block to the mempool; after a reorg,
        // re-walk the whole branch (observe_committed is idempotent).
        let from = if tracker.reorgs() != self.seen_reorgs {
            self.seen_reorgs = tracker.reorgs();
            0
        } else {
            self.observed_height.min(tracker.head_height())
        };
        let adopted = tracker.blocks_above(from, usize::MAX);
        if let Some(mempool) = self.mempool.as_mut() {
            for block in &adopted {
                mempool.observe_committed(&block.ops, block.height);
            }
        }
        self.observed_height = tracker.head_height();
        self.last_head = Some(tracker.head());
        let mut report = self.report.borrow_mut();
        report
            .heads
            .push((ctx.now(), tracker.head_height(), tracker.head()));
        report.reorgs = tracker.reorgs();
        report.verify_failures = tracker.verify_failures();
        report.final_height = tracker.head_height();
        report.final_slot = tracker.head_slot();
        report.final_head = Some(tracker.head());
        report.final_chain = tracker.chain_ids();
        report.final_state_root = Some(tracker.engine().state_root());
        report.final_files = tracker.engine().file_ids().len() as u64;
        report.final_receipt_root = tracker
            .engine()
            .chain()
            .blocks()
            .last()
            .map(|b| b.receipt_root);
        let stats = tracker.engine().stats();
        report.batches_staged_parallel = stats.batches_staged_parallel;
        report.batches_fell_back_sequential = stats.batches_fell_back_sequential;
        report.audit_commit_batches = stats.audit_commit_batches;
        if self.cfg.record_op_log {
            report.final_op_log = tracker.engine().op_log().to_vec();
        }
        if let Some(mempool) = self.mempool.as_ref() {
            report.final_mempool = Some(mempool.stats().clone());
        }
    }

    /// Gossips any newly-recorded equivocation evidence: both conflicting
    /// blocks, single-shot, to every broadcast peer — each peer's own
    /// tracker reaches the same conviction from the pair.
    fn gossip_evidence(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        let Some(tracker) = self.tracker.as_ref() else {
            return;
        };
        let fresh: Vec<(SealedBlock, SealedBlock)> = tracker.evidence()[self.evidence_gossiped..]
            .iter()
            .map(|ev| (ev.first.clone(), ev.second.clone()))
            .collect();
        self.evidence_gossiped += fresh.len();
        for (first, second) in fresh {
            for &peer in &self.broadcast {
                ctx.send(
                    peer,
                    NodeMsg::Block {
                        key: 0,
                        block: first.clone(),
                    },
                    first.wire_bytes(),
                );
                ctx.send(
                    peer,
                    NodeMsg::Block {
                        key: 0,
                        block: second.clone(),
                    },
                    second.wire_bytes(),
                );
            }
        }
    }

    /// One anti-entropy tick: tell the next peer (round-robin) where this
    /// node's head is.
    fn sync_tick(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        let Some(tracker) = self.tracker.as_ref() else {
            return;
        };
        if self.sync_targets.is_empty() {
            return;
        }
        let peer = self.sync_targets[self.sync_cursor % self.sync_targets.len()];
        self.sync_cursor += 1;
        ctx.send(
            peer,
            NodeMsg::Status {
                height: tracker.head_height(),
                head: tracker.head(),
            },
            40,
        );
    }

    /// Pushes up to [`SYNC_BATCH`] best-chain blocks above `above` to
    /// `peer`, single-shot (the next status exchange continues).
    fn push_blocks(&mut self, ctx: &mut Ctx<'_, NodeMsg>, peer: NodeIdx, above: u64) {
        let Some(tracker) = self.tracker.as_ref() else {
            return;
        };
        for block in tracker.blocks_above(above, SYNC_BATCH) {
            let bytes = block.wire_bytes();
            ctx.send(peer, NodeMsg::Block { key: 0, block }, bytes);
        }
    }

    /// Asks `peer` for the blocks this node is missing — rate-limited to
    /// one request per `sync_every`, since every request can trigger a
    /// [`SYNC_BATCH`]-sized push.
    ///
    /// The request carries a best-chain locator instead of a bare height:
    /// after a partition heals, the canonical chain diverges *below* this
    /// node's head, so "blocks above my head" would orphan forever. The
    /// peer finds the highest shared locator entry and serves from there,
    /// so one round trip always lands just above the common ancestor and
    /// the orphan pool reconnects everything.
    fn request_blocks(&mut self, ctx: &mut Ctx<'_, NodeMsg>, peer: NodeIdx) {
        let now = ctx.now();
        if now < self.last_block_request + self.cfg.sync_every {
            return;
        }
        self.last_block_request = now;
        let Some(tracker) = self.tracker.as_ref() else {
            return;
        };
        let locator = tracker.locator();
        let bytes = 24 + 32 * locator.len() as u64;
        ctx.send(peer, NodeMsg::BlockRequest { locator }, bytes);
    }

    /// Drops the synced state and starts the join protocol over — the
    /// escape hatch for a cold joiner whose snapshot anchor was reorged
    /// off the canonical chain.
    fn rejoin(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        self.tracker = None;
        self.mempool = None;
        self.orphan_streak = 0;
        self.last_head = None;
        self.observed_height = 0;
        self.seen_reorgs = 0;
        ctx.set_timer(1, TAG_JOIN_RETRY);
    }

    fn on_block(
        &mut self,
        ctx: &mut Ctx<'_, NodeMsg>,
        from: NodeIdx,
        key: u64,
        block: SealedBlock,
    ) {
        if key != 0 {
            ctx.send(from, NodeMsg::BlockAck { key }, 24);
        }
        let Some(tracker) = self.tracker.as_mut() else {
            return; // still syncing; anti-entropy will redeliver
        };
        let outcome = tracker.insert(block);
        match outcome {
            InsertOutcome::Attached { head_changed, .. } => {
                self.orphan_streak = 0;
                if head_changed {
                    self.after_head_change(ctx);
                }
            }
            InsertOutcome::Orphaned { .. } => {
                self.orphan_streak += 1;
                if self.cold_joiner && self.orphan_streak > STUCK_ORPHANS {
                    self.rejoin(ctx);
                    return;
                }
                self.request_blocks(ctx, from);
            }
            InsertOutcome::Equivocation { .. } => {
                self.report.borrow_mut().equivocations_seen += 1;
                // Conviction may have reorged the head away from the
                // equivocator's blocks.
                self.after_head_change(ctx);
                self.gossip_evidence(ctx);
            }
            InsertOutcome::AlreadyKnown | InsertOutcome::Rejected(_) => {
                self.orphan_streak = 0;
            }
        }
    }

    fn serve_join(&mut self, ctx: &mut Ctx<'_, NodeMsg>, from: NodeIdx) {
        let Some(tracker) = self.tracker.as_mut() else {
            return;
        };
        let (snapshot, checkpoint) = tracker.snapshot_head();
        let head = tracker.head();
        let height = tracker.head_height();
        let slot = tracker.head_slot();
        let bytes = snapshot.len() as u64 + 128;
        ctx.send(
            from,
            NodeMsg::SnapshotReply {
                snapshot,
                checkpoint,
                suffix: Vec::new(),
                head,
                height,
                slot,
            },
            bytes,
        );
        let mut report = self.report.borrow_mut();
        report.joins_served += 1;
        report.snapshots_taken += 1;
        drop(report);
        // Future proposals flow to the joiner like to any peer.
        if !self.broadcast.contains(&from) {
            self.broadcast.push(from);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn complete_join(
        &mut self,
        ctx: &mut Ctx<'_, NodeMsg>,
        snapshot: Vec<u8>,
        checkpoint: Checkpoint,
        suffix: Vec<OpRecord>,
        head: Hash256,
        height: u64,
        slot: u64,
    ) {
        if self.tracker.is_some() {
            return; // duplicate reply
        }
        let restored = Engine::snapshot_restore(&snapshot).expect("validator snapshot restores");
        let engine = Engine::replay_from(&restored, &checkpoint, &suffix)
            .expect("suffix replays onto the snapshot");
        self.mempool = Some(Mempool::new(
            engine.params().clone(),
            GasSchedule::default(),
        ));
        self.tracker = Some(ChainTracker::from_sync(
            engine,
            self.schedule.clone(),
            self.mode,
            head,
            height,
            slot,
        ));
        self.observed_height = height;
        self.report.borrow_mut().joined_at_height = Some(height);
        self.after_head_change(ctx);
        if !self.sync_armed {
            self.sync_armed = true;
            ctx.set_timer(self.cfg.sync_every, TAG_SYNC);
        }
        self.arm_slot_timers(ctx);
    }
}

impl Process<NodeMsg> for Validator {
    fn on_start(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        match self.start.take().expect("started once") {
            NodeStart::Genesis(_) => {
                // Tracker and mempool were built in `new`.
                self.arm_slot_timers(ctx);
                self.sync_armed = true;
                ctx.set_timer(self.cfg.sync_every, TAG_SYNC);
            }
            NodeStart::ColdJoin { wake_at } => {
                ctx.set_timer(wake_at.max(1), TAG_WAKE);
            }
        }
    }

    fn on_restart(&mut self, ctx: &mut Ctx<'_, NodeMsg>) {
        // State survived the crash; every timer did not. In-flight
        // retransmissions are abandoned (their acks would be stale) and
        // all future alarms re-armed.
        self.retx.abandon_all();
        self.report.borrow_mut().restarts += 1;
        if self.tracker.is_some() {
            self.arm_slot_timers(ctx);
            self.sync_armed = true;
            ctx.set_timer(self.cfg.sync_every, TAG_SYNC);
        } else {
            self.sync_armed = false;
            ctx.set_timer(1, TAG_JOIN_RETRY);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, NodeMsg>, from: NodeIdx, msg: NodeMsg) {
        match msg {
            NodeMsg::SubmitTx { key, tx } => {
                ctx.send(from, NodeMsg::TxAck { key }, 24);
                let Some(tracker) = self.tracker.as_ref() else {
                    return;
                };
                let Some(mempool) = self.mempool.as_mut() else {
                    return;
                };
                if mempool.admit(tx.clone(), tracker.engine().ledger()).is_ok() {
                    // Forward once so upcoming leaders hold it too.
                    let bytes = tx.wire_bytes();
                    for &peer in &self.sync_targets {
                        ctx.send(peer, NodeMsg::ForwardTx { tx: tx.clone() }, bytes);
                    }
                }
            }
            NodeMsg::ForwardTx { tx } => {
                if let (Some(tracker), Some(mempool)) =
                    (self.tracker.as_ref(), self.mempool.as_mut())
                {
                    let _ = mempool.admit(tx, tracker.engine().ledger());
                }
            }
            NodeMsg::Block { key, block } => self.on_block(ctx, from, key, block),
            NodeMsg::BlockAck { key } => {
                self.retx.ack(key);
            }
            NodeMsg::Status { height, head } => {
                let Some(tracker) = self.tracker.as_ref() else {
                    return;
                };
                let (my_height, my_head) = (tracker.head_height(), tracker.head());
                if height < my_height {
                    self.push_blocks(ctx, from, height);
                } else if height > my_height {
                    // Invite a push.
                    ctx.send(
                        from,
                        NodeMsg::Status {
                            height: my_height,
                            head: my_head,
                        },
                        40,
                    );
                } else if head != my_head && my_height > 0 {
                    // Same height, different branch: show them ours;
                    // fork-choice on both ends settles the winner.
                    self.push_blocks(ctx, from, my_height.saturating_sub(1));
                }
            }
            NodeMsg::BlockRequest { locator } => {
                let above = self
                    .tracker
                    .as_ref()
                    .map_or(0, |tracker| tracker.fork_point(&locator));
                self.push_blocks(ctx, from, above);
            }
            NodeMsg::JoinRequest => self.serve_join(ctx, from),
            NodeMsg::SnapshotReply {
                snapshot,
                checkpoint,
                suffix,
                head,
                height,
                slot,
            } => self.complete_join(ctx, snapshot, checkpoint, suffix, head, height, slot),
            NodeMsg::TxAck { .. } => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, NodeMsg>, tag: u64) {
        if tag == TAG_SYNC {
            self.sync_tick(ctx);
            ctx.set_timer(self.cfg.sync_every, TAG_SYNC);
            return;
        }
        if tag == TAG_WAKE || tag == TAG_JOIN_RETRY {
            if self.tracker.is_none() {
                // Request (or re-request) state until a snapshot lands;
                // the request itself can be lost, so keep a plain retry
                // timer, rotating over the validators.
                if !self.sync_targets.is_empty() {
                    let target = self.sync_targets[self.join_cursor % self.sync_targets.len()];
                    self.join_cursor += 1;
                    ctx.send(target, NodeMsg::JoinRequest, 24);
                }
                ctx.set_timer(self.cfg.join_retry, TAG_JOIN_RETRY);
            }
            return;
        }
        if (TAG_SLOT_BASE..RETX_TAG_BASE).contains(&tag) {
            self.maybe_propose(ctx, tag - TAG_SLOT_BASE);
            return;
        }
        if let Some(RetryEvent::Exhausted { .. }) = self.retx.handle_timer(ctx, tag) {
            self.report.borrow_mut().blocks_given_up += 1;
        }
    }
}
