//! Theorem 1 experiment: how much raw file data the network can carry.
//!
//! Theorem 1: the total raw size storable is
//! `min( Ns·minCapacity / (2·r1·k), Ns·minCapacity / r2 )` — the first
//! term is the **capacity restriction** (every file stores `k·value`
//! replicas and total replica size may use at most half the capacity), the
//! second the **value restriction** (total value ≤ Nm_v·minValue).
//!
//! The experiment draws a workload from a size/value distribution, fills
//! the network file by file until either restriction trips, and compares
//! the stored raw size with the formula.
//!
//! Two variants: [`run_one`] fills against the formulas analytically, and
//! [`run_engine_fill`] drives a real [`fi_core::Engine`] through the typed
//! op layer (`Engine::apply` with `File_Add` transactions) until the
//! allocator reports `NoCapacity` — the end-to-end check that the engine's
//! capacity behaviour matches what Theorem 1 assumes.

use fi_analysis::theorems::{theorem1_max_total_size, workload_r1, workload_r2};
use fi_chain::account::{AccountId, TokenAmount};
use fi_core::engine::{Engine, EngineError};
use fi_core::ops::{Op, Receipt};
use fi_core::params::ProtocolParams;
use fi_crypto::{sha256, DetRng};

use crate::report::{sci, TextTable};

/// A workload generator for the scalability experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Every file: size 1, value `minValue`.
    Homogeneous,
    /// Sizes exponential(4), values uniform in {1,2,3} × minValue.
    Mixed,
    /// Sizes uniform in the interval 1..8, all values `minValue` (size-heavy).
    SizeHeavy,
    /// Sizes 1, values uniform {1..10} × minValue (value-heavy).
    ValueHeavy,
}

impl Workload {
    /// All workloads.
    pub const ALL: [Workload; 4] = [
        Workload::Homogeneous,
        Workload::Mixed,
        Workload::SizeHeavy,
        Workload::ValueHeavy,
    ];

    /// Label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::Homogeneous => "homogeneous",
            Workload::Mixed => "mixed",
            Workload::SizeHeavy => "size-heavy",
            Workload::ValueHeavy => "value-heavy",
        }
    }

    /// Draws one `(size, value)` pair (minValue = 1 units).
    pub fn sample(&self, rng: &mut DetRng) -> (f64, f64) {
        match self {
            Workload::Homogeneous => (1.0, 1.0),
            Workload::Mixed => (rng.sample_exp(4.0).max(0.01), (1 + rng.below(3)) as f64),
            Workload::SizeHeavy => (1.0 + 7.0 * rng.f64(), 1.0),
            Workload::ValueHeavy => (1.0, (1 + rng.below(10)) as f64),
        }
    }
}

/// One scalability row.
#[derive(Debug, Clone)]
pub struct ScalabilityRow {
    /// Workload label.
    pub workload: &'static str,
    /// Workload constant r1 (eq. 1).
    pub r1: f64,
    /// Workload constant r2 (eq. 2).
    pub r2: f64,
    /// Theorem 1 prediction for total storable raw size.
    pub predicted: f64,
    /// Raw size actually stored before a restriction tripped.
    pub measured: f64,
    /// Which restriction bound first ("capacity" or "value").
    pub binding: &'static str,
}

/// Experiment parameters.
#[derive(Debug, Clone, Copy)]
pub struct ScalabilityConfig {
    /// Sector count.
    pub ns: u64,
    /// `minCapacity` (size units per sector).
    pub min_capacity: u64,
    /// Replicas per `minValue` of value.
    pub k: u32,
    /// `capPara`.
    pub cap_para: u64,
    /// Seed.
    pub seed: u64,
    /// Engine shard count for [`run_engine_fill`] — consensus results are
    /// shard-count-invariant, so this only changes how the engine
    /// partitions state and parallelizes audits.
    pub shards: usize,
}

impl Default for ScalabilityConfig {
    fn default() -> Self {
        ScalabilityConfig {
            ns: 1_000,
            min_capacity: 64,
            k: 10,
            cap_para: 2,
            seed: 0x5CA1E,
            shards: 1,
        }
    }
}

/// Fills the network under `workload` until a restriction trips.
pub fn run_one(workload: Workload, config: &ScalabilityConfig) -> ScalabilityRow {
    let mut rng = DetRng::from_seed_label(config.seed, workload.label());
    let total_capacity = (config.ns * config.min_capacity) as f64;
    let max_value = (config.cap_para * config.ns) as f64; // Nm_v·minValue
    let mut stored_size = 0.0f64;
    let mut replica_size = 0.0f64;
    let mut stored_value = 0.0f64;
    let mut sizes = Vec::new();
    let mut values = Vec::new();
    let binding;
    loop {
        let (size, value) = workload.sample(&mut rng);
        let cp = config.k as f64 * value;
        if replica_size + size * cp > total_capacity / 2.0 {
            binding = "capacity";
            break;
        }
        if stored_value + value > max_value {
            binding = "value";
            break;
        }
        replica_size += size * cp;
        stored_value += value;
        stored_size += size;
        sizes.push(size);
        values.push(value);
    }
    let r1 = workload_r1(&sizes, &values, 1.0);
    let r2 = workload_r2(
        &sizes,
        &values,
        1.0,
        config.min_capacity as f64,
        config.cap_para as f64,
    );
    let predicted = theorem1_max_total_size(
        config.ns as f64,
        config.min_capacity as f64,
        config.k as f64,
        r1,
        r2,
    );
    ScalabilityRow {
        workload: workload.label(),
        r1,
        r2,
        predicted,
        measured: stored_size,
        binding,
    }
}

/// Runs all workloads.
pub fn run_all(config: &ScalabilityConfig) -> Vec<ScalabilityRow> {
    Workload::ALL.iter().map(|w| run_one(*w, config)).collect()
}

/// Result of the engine-backed capacity fill ([`run_engine_fill`]).
#[derive(Debug, Clone)]
pub struct EngineFillRow {
    /// Files the engine accepted before the first `NoCapacity`.
    pub files_stored: u64,
    /// Total replica size the engine reserved.
    pub replica_size: u64,
    /// Total raw capacity registered.
    pub total_capacity: u64,
    /// `replica_size / total_capacity` at the first rejection.
    pub utilization: f64,
    /// Theorem 1's prediction for storable raw size under this homogeneous
    /// workload (with its factor-2 refresh headroom).
    pub theorem1_predicted: f64,
}

/// Fills a real engine with homogeneous `minValue` files of size 1 through
/// the typed op layer until `File_Add` returns `NoCapacity`, then reports
/// how full the network got.
///
/// Theorem 1 budgets only half the raw capacity for replicas (the other
/// half is headroom so `Auto_Refresh` keeps finding space); the engine
/// itself accepts files until sampling can no longer find room, so the
/// measured utilization must land well above the theorem's conservative
/// bound and below 1.
///
/// # Panics
///
/// Panics if parameters are invalid or funding/registration ops fail.
pub fn run_engine_fill(config: &ScalabilityConfig) -> EngineFillRow {
    let params = ProtocolParams {
        k: config.k,
        min_capacity: config.min_capacity,
        cap_para: config.cap_para,
        seed: config.seed,
        shards: config.shards,
        ..ProtocolParams::default()
    };
    let min_value = params.min_value;
    let mut engine = Engine::new(params).expect("valid parameters");
    let provider = AccountId(10_000);
    let client = AccountId(10_001);
    engine
        .apply(Op::Fund {
            account: provider,
            amount: TokenAmount(u128::MAX / 4),
        })
        .expect("fund provider");
    engine
        .apply(Op::Fund {
            account: client,
            amount: TokenAmount(u128::MAX / 4),
        })
        .expect("fund client");
    for _ in 0..config.ns {
        engine
            .apply(Op::SectorRegister {
                owner: provider,
                capacity: config.min_capacity,
            })
            .expect("register sector");
    }
    let total_capacity = config.ns * config.min_capacity;

    let mut files_stored = 0u64;
    loop {
        let root = sha256(&files_stored.to_be_bytes());
        match engine.apply(Op::FileAdd {
            client,
            size: 1,
            value: min_value,
            merkle_root: root,
        }) {
            Ok(Receipt::FileAdded { .. }) => files_stored += 1,
            Ok(other) => unreachable!("FileAdd yields FileAdded, got {other:?}"),
            Err(EngineError::NoCapacity) => break,
            Err(e) => panic!("unexpected File_Add failure: {e}"),
        }
    }
    let replica_size = files_stored * config.k as u64; // size 1 × cp replicas
    let predicted = theorem1_max_total_size(
        config.ns as f64,
        config.min_capacity as f64,
        config.k as f64,
        1.0, // homogeneous workload: r1 = 1
        config.min_capacity as f64 / config.cap_para as f64,
    );
    EngineFillRow {
        files_stored,
        replica_size,
        total_capacity,
        utilization: replica_size as f64 / total_capacity as f64,
        theorem1_predicted: predicted,
    }
}

/// Renders rows.
pub fn render(rows: &[ScalabilityRow]) -> String {
    let mut table = TextTable::new(vec![
        "workload",
        "r1",
        "r2",
        "predicted max size",
        "measured stored size",
        "measured/predicted",
        "binding restriction",
    ]);
    for r in rows {
        table.row(vec![
            r.workload.to_string(),
            format!("{:.3}", r.r1),
            format!("{:.4}", r.r2),
            sci(r.predicted),
            sci(r.measured),
            format!("{:.3}", r.measured / r.predicted),
            r.binding.to_string(),
        ]);
    }
    table.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homogeneous_matches_formula_closely() {
        let row = run_one(Workload::Homogeneous, &ScalabilityConfig::default());
        // r1 = 1, so capacity term = Ns·minCap/(2k) = 64_000/20 = 3200;
        // value term = Ns·minCap/r2 with r2 = 64/2 = 32 ⇒ 2000. Value binds.
        assert_eq!(row.binding, "value");
        assert!((row.r1 - 1.0).abs() < 1e-9);
        let ratio = row.measured / row.predicted;
        assert!((0.98..=1.02).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn measured_never_exceeds_prediction_materially() {
        for row in run_all(&ScalabilityConfig::default()) {
            let ratio = row.measured / row.predicted;
            assert!(
                ratio < 1.05,
                "{}: stored {} vs predicted {}",
                row.workload,
                row.measured,
                row.predicted
            );
            assert!(
                ratio > 0.5,
                "{}: ratio {ratio} suspiciously low",
                row.workload
            );
        }
    }

    #[test]
    fn capacity_binds_when_value_cap_is_loose() {
        let config = ScalabilityConfig {
            cap_para: 1_000_000,
            ..ScalabilityConfig::default()
        };
        let row = run_one(Workload::Homogeneous, &config);
        assert_eq!(row.binding, "capacity");
    }

    /// The engine-backed fill is shard-count-invariant: the same network
    /// accepts the same files and reaches the same utilization whether the
    /// engine runs 1 shard or 8.
    #[test]
    fn engine_fill_is_shard_count_invariant() {
        let base = ScalabilityConfig {
            ns: 40,
            min_capacity: 64,
            k: 4,
            cap_para: 2,
            seed: 0xF112,
            shards: 1,
        };
        let unsharded = run_engine_fill(&base);
        for shards in [4usize, 8] {
            let row = run_engine_fill(&ScalabilityConfig { shards, ..base });
            assert_eq!(row.files_stored, unsharded.files_stored);
            assert_eq!(row.replica_size, unsharded.replica_size);
        }
    }

    #[test]
    fn engine_fill_through_op_layer_beats_theorem_bound() {
        // Small network: 40 sectors × 64 units, k = 4 replicas per file.
        let config = ScalabilityConfig {
            ns: 40,
            min_capacity: 64,
            k: 4,
            cap_para: 2,
            seed: 0xF111,
            shards: 1,
        };
        let row = run_engine_fill(&config);
        assert!(row.files_stored > 0);
        // The engine packs past Theorem 1's conservative half-capacity
        // budget but can never exceed raw capacity.
        assert!(
            row.utilization > 0.5 && row.utilization <= 1.0,
            "utilization {}",
            row.utilization
        );
        assert!(
            row.files_stored as f64
                >= row
                    .theorem1_predicted
                    .min(row.total_capacity as f64 / (2.0 * config.k as f64)),
            "stored {} vs predicted {}",
            row.files_stored,
            row.theorem1_predicted
        );
    }
}
