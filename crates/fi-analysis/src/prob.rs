//! Probability helpers used by the robustness analysis: KL divergence,
//! Chernoff tail bounds, and Stirling-based log-binomials.
//!
//! These mirror the quantities appearing in the proofs of Theorems 2–4
//! (Appendices B–D of the paper) so experiments can plot measured tails
//! against the exact analytic expressions rather than re-derived
//! approximations.

/// Binary KL divergence `D(x‖p) = x·ln(x/p) + (1−x)·ln((1−x)/(1−p))`.
///
/// Conventions: terms with `x == 0` or `x == 1` contribute their limit
/// (`0·ln0 = 0`). Returns `+∞` when the support mismatches (`p ∈ {0,1}` but
/// `x` differs).
pub fn kl_divergence(x: f64, p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&p));
    let term = |num: f64, den: f64| -> f64 {
        if num == 0.0 {
            0.0
        } else if den == 0.0 {
            f64::INFINITY
        } else {
            num * (num / den).ln()
        }
    };
    term(x, p) + term(1.0 - x, 1.0 - p)
}

/// Chernoff–Hoeffding upper tail for a Binomial(n, p):
/// `Pr[X ≥ xn] ≤ exp(−n·D(x‖p))` for `x ≥ p`.
pub fn chernoff_upper_tail(n: f64, p: f64, x: f64) -> f64 {
    if x <= p {
        return 1.0;
    }
    (-n * kl_divergence(x, p)).exp().min(1.0)
}

/// Lemma 2 of the paper: for `0 < p ≤ 1/5` and `5p ≤ x ≤ 1`,
/// `D(x‖p) ≥ (x/2)·ln(x/p)`. Exposed for the verification test below and
/// for the robustness experiment's analytic overlay.
pub fn lemma2_lower_bound(x: f64, p: f64) -> f64 {
    0.5 * x * (x / p).ln()
}

/// Natural log of the binomial coefficient `C(n, k)` via `ln Γ`.
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// Natural log of `n!` (exact summation below 256, Stirling series above).
pub fn ln_factorial(n: u64) -> f64 {
    if n < 256 {
        (2..=n).map(|i| (i as f64).ln()).sum()
    } else {
        let n = n as f64;
        // Stirling with the 1/(12n) correction — relative error < 1e-10 here.
        n * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI * n).ln() + 1.0 / (12.0 * n)
    }
}

/// The Stirling upper bound on `ln C(Ns, λNs)` used in Theorem 3's proof:
/// `ln C(Ns,λNs) ≤ ln(e/2π) − Ns·ln(λ^λ(1−λ)^(1−λ))` (up to the √ factor
/// the paper drops).
pub fn ln_binomial_stirling_bound(n_s: f64, lambda: f64) -> f64 {
    let entropy = -(lambda * lambda.ln() + (1.0 - lambda) * (1.0 - lambda).ln());
    (std::f64::consts::E / (2.0 * std::f64::consts::PI)).ln() + n_s * entropy
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_basic_properties() {
        assert_eq!(kl_divergence(0.3, 0.3), 0.0);
        assert!(kl_divergence(0.6, 0.3) > 0.0);
        assert!(kl_divergence(0.1, 0.3) > 0.0);
        assert_eq!(kl_divergence(0.0, 0.0), 0.0);
        assert_eq!(kl_divergence(1.0, 1.0), 0.0);
        assert_eq!(kl_divergence(0.5, 0.0), f64::INFINITY);
    }

    #[test]
    fn lemma2_holds_on_grid() {
        // Verify the paper's Lemma 2 numerically over its stated domain.
        let mut p = 0.002;
        while p <= 0.2 {
            let mut x = 5.0 * p;
            while x <= 1.0 {
                let kl = kl_divergence(x, p);
                let lb = lemma2_lower_bound(x, p);
                assert!(
                    kl >= lb - 1e-12,
                    "lemma 2 violated at x={x}, p={p}: {kl} < {lb}"
                );
                x += 0.013;
            }
            p += 0.004;
        }
    }

    #[test]
    fn chernoff_tail_sane() {
        // Binomial(1000, 0.5): Pr[X >= 600] is about 1.4e-10 analytically;
        // the Chernoff bound must be above the truth but far below 1.
        let b = chernoff_upper_tail(1000.0, 0.5, 0.6);
        assert!(b > 1e-10 && b < 1e-3, "bound {b}");
        assert_eq!(chernoff_upper_tail(100.0, 0.5, 0.4), 1.0);
    }

    #[test]
    fn chernoff_dominates_monte_carlo_binomial() {
        // Empirical Binomial(200, 0.3) tail frequencies must sit below the
        // Chernoff bound (up to 3σ sampling noise).
        let mut rng = fi_crypto::DetRng::from_seed_label(17, "chernoff-mc");
        let (n, p, trials) = (200u32, 0.3f64, 20_000u32);
        let mut counts = vec![0u32; (n + 1) as usize];
        for _ in 0..trials {
            let successes = (0..n).filter(|_| rng.bernoulli(p)).count();
            counts[successes] += 1;
        }
        for threshold in [70u32, 80, 90, 100] {
            let tail: u32 = counts[threshold as usize..].iter().sum();
            let freq = tail as f64 / trials as f64;
            let bound = chernoff_upper_tail(n as f64, p, threshold as f64 / n as f64);
            let sigma = (bound.max(1.0 / trials as f64) / trials as f64).sqrt();
            assert!(
                freq <= bound + 3.0 * sigma,
                "threshold {threshold}: freq {freq} > bound {bound}"
            );
        }
    }

    #[test]
    fn ln_factorial_exact_vs_stirling_continuity() {
        // The switchover at 256 must be smooth to ~1e-9 relative.
        let exact: f64 = (2..=255u64).map(|i| (i as f64).ln()).sum();
        let next = exact + 256f64.ln();
        assert!((ln_factorial(256) - next).abs() / next < 1e-9);
    }

    #[test]
    fn ln_binomial_small_values() {
        assert!((ln_binomial(5, 2) - (10f64).ln()).abs() < 1e-12);
        assert!((ln_binomial(10, 0) - 0.0).abs() < 1e-12);
        assert_eq!(ln_binomial(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn stirling_bound_dominates_truth() {
        for (n, lam) in [(1000u64, 0.5f64), (2000, 0.25), (5000, 0.1)] {
            let truth = ln_binomial(n, (lam * n as f64) as u64);
            let bound = ln_binomial_stirling_bound(n as f64, lam);
            assert!(bound >= truth, "n={n} λ={lam}: {bound} < {truth}");
            // And not absurdly loose (within the dropped √n factor).
            assert!(bound - truth < 0.5 * (n as f64).ln() + 2.0);
        }
    }
}
