//! Core data structures of FileInsurer (paper Fig. 1): sectors, file
//! descriptors, allocation entries, and the typed protocol event log.

use fi_chain::account::{AccountId, TokenAmount};
use fi_chain::tasks::Time;
use fi_crypto::Hash256;

/// Identifies a stored file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file#{}", self.0)
    }
}

/// Identifies a registered sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SectorId(pub u64);

impl std::fmt::Display for SectorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sector#{}", self.0)
    }
}

/// Sector lifecycle state (Fig. 1: `normal` | `disable`, plus the terminal
/// corruption state from Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SectorState {
    /// Accepting new files.
    Normal,
    /// No longer accepts files; drains as refreshes move content away
    /// (`Sector_Disable`, §III-C.2).
    Disabled,
    /// Any bit lost — deposit confiscated, all replicas void (§III-B.1).
    Corrupted,
}

/// A registered sector (Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sector {
    /// The provider who owns the sector.
    pub owner: AccountId,
    /// Unique id.
    pub id: SectorId,
    /// Total capacity in size units (multiple of `minCapacity`).
    pub capacity: u64,
    /// Remaining free capacity (reservations included).
    pub free_cap: u64,
    /// Lifecycle state.
    pub state: SectorState,
    /// Deposit currently pledged (decreases with punishments).
    pub deposit: TokenAmount,
    /// Number of replicas currently stored or reserved here.
    pub replica_count: u32,
    /// Physically failed (test/adversary injection): the owner can no
    /// longer produce storage proofs from this sector.
    pub physically_failed: bool,
}

impl Sector {
    /// Used capacity (capacity − freeCap).
    pub fn used(&self) -> u64 {
        self.capacity - self.free_cap
    }
}

/// File lifecycle state (Fig. 1: `normal` | `discard`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileState {
    /// Pending `Auto_CheckAlloc` — replicas are being placed.
    Allocating,
    /// Stored and continuously proven.
    Normal,
    /// Marked for removal at the next `Auto_CheckProof`.
    Discarded,
}

/// A file descriptor (Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileDescriptor {
    /// Unique id.
    pub id: FileId,
    /// The client who pays for and owns the file.
    pub owner: AccountId,
    /// Size in size units.
    pub size: u64,
    /// Declared value (drives replica count and compensation; §IV-B).
    pub value: TokenAmount,
    /// Merkle root of the content.
    pub merkle_root: Hash256,
    /// `f.cp`: number of replicas (`k · value / minValue`).
    pub cp: u32,
    /// Proof cycles until the next location refresh (`cntdown`,
    /// exponentially distributed with mean `AvgRefresh`).
    pub cntdown: i64,
    /// Lifecycle state.
    pub state: FileState,
}

/// Allocation entry state (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocState {
    /// Being (re)allocated: `next` set, waiting for the provider's confirm.
    Alloc,
    /// Confirmed by the `next` sector, not yet finalised by the check task.
    Confirm,
    /// Stored in `prev`, proving regularly.
    Normal,
    /// The holding sector is corrupted.
    Corrupted,
}

/// One entry of the allocation table: the placement of replica `index` of a
/// file (Fig. 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocEntry {
    /// Sector currently storing the replica (`prev`).
    pub prev: Option<SectorId>,
    /// Sector the replica is moving to (`next`).
    pub next: Option<SectorId>,
    /// Time of the last accepted storage proof (`last`; `None` = never).
    pub last: Option<Time>,
    /// Entry state.
    pub state: AllocState,
}

impl AllocEntry {
    /// A fresh entry targeting `next` (the `File_Add` / `Auto_Refresh`
    /// initial state).
    pub fn allocating(next: SectorId) -> Self {
        AllocEntry {
            prev: None,
            next: Some(next),
            last: None,
            state: AllocState::Alloc,
        }
    }
}

/// Why a file was removed from the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemovalReason {
    /// Client asked for discard (`File_Discard`).
    ClientDiscard,
    /// Client could not pay the next cycle (Fig. 8).
    InsufficientFunds,
    /// Upload failed: not all sectors confirmed by `Auto_CheckAlloc`.
    UploadFailed,
    /// All replicas destroyed — compensated (Fig. 8).
    Lost,
}

/// Typed protocol events; mirrored into the chain event log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolEvent {
    /// A sector was registered with a pledged deposit.
    SectorRegistered {
        /// New sector.
        sector: SectorId,
        /// Owner account.
        owner: AccountId,
        /// Pledged deposit.
        deposit: TokenAmount,
    },
    /// A sector was disabled and is draining.
    SectorDisabled {
        /// The sector.
        sector: SectorId,
    },
    /// A drained sector left the network; deposit returned.
    SectorRemoved {
        /// The sector.
        sector: SectorId,
        /// Deposit refunded to the owner.
        refunded: TokenAmount,
    },
    /// A sector was marked corrupted; deposit confiscated (Fig. 8).
    SectorCorrupted {
        /// The sector.
        sector: SectorId,
        /// Confiscated deposit moved to the compensation pool.
        confiscated: TokenAmount,
    },
    /// A provider was punished for a late proof or failed transfer.
    ProviderPunished {
        /// Punished sector.
        sector: SectorId,
        /// Amount moved from its deposit to the compensation pool.
        amount: TokenAmount,
    },
    /// A file-add request was accepted; replicas are being placed.
    FileAdded {
        /// The file.
        file: FileId,
        /// Number of replicas being placed.
        cp: u32,
    },
    /// `Auto_CheckAlloc` confirmed full placement.
    FileStored {
        /// The file.
        file: FileId,
    },
    /// A file left the network.
    FileRemoved {
        /// The file.
        file: FileId,
        /// Why.
        reason: RemovalReason,
    },
    /// All replicas of a file were destroyed; the owner was compensated
    /// from confiscated deposits (§IV-B).
    FileLost {
        /// The file.
        file: FileId,
        /// Declared value.
        value: TokenAmount,
        /// Amount actually paid (equals `value` unless the pool ran dry).
        compensated: TokenAmount,
    },
    /// A replica is being moved between sectors (`Auto_Refresh`).
    ReplicaSwap {
        /// The file.
        file: FileId,
        /// Replica index.
        index: u32,
        /// Source sector (`None` for initial placement).
        from: Option<SectorId>,
        /// Destination sector.
        to: SectorId,
    },
    /// `Auto_Refresh` hit a collision (target lacked space) and re-armed.
    RefreshCollision {
        /// The file.
        file: FileId,
        /// Replica index.
        index: u32,
    },
    /// Rent was distributed to providers for a period (§IV-A.2).
    RentDistributed {
        /// Total paid out this period.
        total: TokenAmount,
    },
}

impl ProtocolEvent {
    /// Short tag for the chain log.
    pub fn kind(&self) -> &'static str {
        match self {
            ProtocolEvent::SectorRegistered { .. } => "sector.registered",
            ProtocolEvent::SectorDisabled { .. } => "sector.disabled",
            ProtocolEvent::SectorRemoved { .. } => "sector.removed",
            ProtocolEvent::SectorCorrupted { .. } => "sector.corrupted",
            ProtocolEvent::ProviderPunished { .. } => "provider.punished",
            ProtocolEvent::FileAdded { .. } => "file.added",
            ProtocolEvent::FileStored { .. } => "file.stored",
            ProtocolEvent::FileRemoved { .. } => "file.removed",
            ProtocolEvent::FileLost { .. } => "file.lost",
            ProtocolEvent::ReplicaSwap { .. } => "replica.swap",
            ProtocolEvent::RefreshCollision { .. } => "refresh.collision",
            ProtocolEvent::RentDistributed { .. } => "rent.distributed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sector_used_accounting() {
        let s = Sector {
            owner: AccountId(20),
            id: SectorId(1),
            capacity: 100,
            free_cap: 60,
            state: SectorState::Normal,
            deposit: TokenAmount(10),
            replica_count: 2,
            physically_failed: false,
        };
        assert_eq!(s.used(), 40);
    }

    #[test]
    fn alloc_entry_initial_state() {
        let e = AllocEntry::allocating(SectorId(3));
        assert_eq!(e.state, AllocState::Alloc);
        assert_eq!(e.next, Some(SectorId(3)));
        assert_eq!(e.prev, None);
        assert_eq!(e.last, None);
    }

    #[test]
    fn event_kinds_unique() {
        let events = [
            ProtocolEvent::FileStored { file: FileId(1) }.kind(),
            ProtocolEvent::FileAdded {
                file: FileId(1),
                cp: 1,
            }
            .kind(),
            ProtocolEvent::SectorDisabled {
                sector: SectorId(1),
            }
            .kind(),
            ProtocolEvent::RentDistributed {
                total: TokenAmount(1),
            }
            .kind(),
        ];
        let set: std::collections::HashSet<_> = events.iter().collect();
        assert_eq!(set.len(), events.len());
    }

    #[test]
    fn display_impls() {
        assert_eq!(FileId(7).to_string(), "file#7");
        assert_eq!(SectorId(9).to_string(), "sector#9");
    }
}
