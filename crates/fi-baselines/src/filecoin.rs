//! Filecoin baseline model.
//!
//! The aspects that matter for the Table IV comparison (§II-B):
//!
//! * **Deal-based placement.** Clients negotiate storage deals with miners
//!   they choose — in practice heavily skewed toward a few large, cheap,
//!   well-known miners. We model miner choice as Zipf-weighted rather than
//!   capacity-proportional: popular miners accumulate correlated deals.
//!   This is exactly the correlation that breaks provable robustness: an
//!   adversary corrupting the popular miners kills disproportionate value.
//! * **Static placement.** Deals pin a file to its miners for the deal
//!   lifetime — no refresh — so the correlation persists (contrast
//!   FileInsurer's `Auto_Refresh`).
//! * **Burned deposits.** Miners pledge collateral, but on fault it is
//!   *burned*, not paid to the client (§II-B.2: "that deposit is burnt
//!   other than used for compensating the file loss"). Clients recover at
//!   most unspent storage fees; we model a small constant recovered
//!   fraction.
//! * **PoRep/PoSt**: Sybil attacks are prevented (same machinery
//!   FileInsurer reuses).

use fi_crypto::DetRng;

use crate::common::{FileSpec, NetworkSpec, Placement};
use crate::{Compensation, DsnModel};

/// Filecoin at placement granularity.
#[derive(Debug, Clone)]
pub struct FilecoinModel {
    /// Replicas (deals) per file.
    deals_per_file: u32,
    /// Zipf exponent for miner popularity (0 = uniform choice).
    zipf_s: f64,
    /// Fraction of lost value recovered via fee refunds.
    refund_fraction: f64,
}

impl FilecoinModel {
    /// Creates the model with `deals_per_file` replicas per file and the
    /// default popularity skew.
    pub fn new(deals_per_file: u32) -> Self {
        assert!(deals_per_file > 0);
        FilecoinModel {
            deals_per_file,
            zipf_s: 1.0,
            refund_fraction: 0.05,
        }
    }

    /// Overrides the popularity skew (0.0 = uniform miner choice).
    pub fn with_zipf(mut self, s: f64) -> Self {
        self.zipf_s = s;
        self
    }
}

impl DsnModel for FilecoinModel {
    fn name(&self) -> &'static str {
        "Filecoin"
    }

    fn place(&self, net: &NetworkSpec, files: &[FileSpec], rng: &mut DetRng) -> Placement {
        // Popularity weights: miner i gets weight 1/(i+1)^s (node order
        // stands in for market rank).
        let weights: Vec<f64> = (0..net.nodes.len())
            .map(|i| 1.0 / ((i + 1) as f64).powf(self.zipf_s))
            .collect();
        let mut prefix: Vec<f64> = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for w in &weights {
            acc += w;
            prefix.push(acc);
        }
        let total = acc;
        let pick = |rng: &mut DetRng| -> usize {
            let t = rng.f64() * total;
            prefix.partition_point(|&p| p <= t).min(weights.len() - 1)
        };
        let locations = files
            .iter()
            .map(|_| {
                (0..self.deals_per_file)
                    .map(|_| pick(rng))
                    .collect::<Vec<_>>()
            })
            .collect();
        Placement {
            locations,
            survivors_needed: vec![1; files.len()],
        }
    }

    fn sybil_vulnerable(&self) -> bool {
        false // PoRep + WindowPoSt
    }

    fn provable_robustness(&self) -> bool {
        false // client-chosen, correlated, static placement
    }

    fn compensation(&self) -> Compensation {
        Compensation::Limited {
            recovered_fraction: self.refund_fraction,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::{corrupt_nodes, evaluate_loss, AdversaryStrategy};
    use crate::fileinsurer::FileInsurerModel;

    #[test]
    fn popular_miners_attract_correlated_deals() {
        let m = FilecoinModel::new(5);
        let net = NetworkSpec::uniform(100, 64);
        let files: Vec<FileSpec> = (0..500)
            .map(|_| FileSpec {
                size: 1,
                value: 1.0,
            })
            .collect();
        let mut rng = DetRng::from_seed_label(71, "fc");
        let placement = m.place(&net, &files, &mut rng);
        // Count load on the top-10 miners vs the bottom-10.
        let mut load = vec![0usize; 100];
        for locs in &placement.locations {
            for &n in locs {
                load[n] += 1;
            }
        }
        let top: usize = load[..10].iter().sum();
        let bottom: usize = load[90..].iter().sum();
        assert!(top > bottom * 5, "zipf skew: top={top} bottom={bottom}");
    }

    #[test]
    fn correlated_placement_loses_more_than_fileinsurer() {
        // The comparison behind Table IV's "Provable Robustness" row: under
        // a greedy adversary with the same replica budget, Filecoin's
        // correlated placement loses far more value.
        let net = NetworkSpec::uniform(200, 64);
        let files: Vec<FileSpec> = (0..1000)
            .map(|_| FileSpec {
                size: 1,
                value: 1.0,
            })
            .collect();
        let k = 5;
        let fi = FileInsurerModel::new(k, 0.0046);
        let fc = FilecoinModel::new(k);
        let mut rng = DetRng::from_seed_label(72, "cmp");
        let p_fi = fi.place(&net, &files, &mut rng);
        let p_fc = fc.place(&net, &files, &mut rng);
        let lambda = 0.3;
        let mut rng_a = DetRng::from_seed_label(73, "a");
        let mut rng_b = DetRng::from_seed_label(73, "b");
        let c_fi = corrupt_nodes(
            &net,
            &p_fi,
            &files,
            lambda,
            AdversaryStrategy::GreedyKill,
            false,
            &mut rng_a,
        );
        let c_fc = corrupt_nodes(
            &net,
            &p_fc,
            &files,
            lambda,
            AdversaryStrategy::GreedyKill,
            false,
            &mut rng_b,
        );
        let loss_fi = evaluate_loss(&net, &p_fi, &files, &c_fi);
        let loss_fc = evaluate_loss(&net, &p_fc, &files, &c_fc);
        assert!(
            loss_fc.lost_value > loss_fi.lost_value,
            "filecoin {} vs fileinsurer {}",
            loss_fc.lost_value,
            loss_fi.lost_value
        );
    }

    #[test]
    fn refund_is_partial() {
        let m = FilecoinModel::new(3);
        let refunded = m.compensate(100.0, 1_000_000.0);
        assert!(refunded > 0.0 && refunded < 10.0);
    }
}
