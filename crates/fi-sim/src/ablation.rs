//! Design-choice ablations (DESIGN.md §5).
//!
//! 1. **Refresh pacing** — the paper samples the per-file refresh countdown
//!    from `Exp(AvgRefresh)` (Fig. 7). Why not a deterministic period? The
//!    exponential keeps refresh *times unpredictable and desynchronised*;
//!    a fixed period makes all files refresh in lockstep, producing
//!    synchronized transfer bursts. The ablation measures the peak number
//!    of concurrent transfers under both policies at equal mean pacing.
//!
//! 2. **Value-level subnets (§VI-D)** — replica-count cost of storing a
//!    value-heterogeneous workload with and without subnet routing.

use fi_crypto::DetRng;

use crate::report::TextTable;

/// Outcome of the refresh-pacing ablation.
#[derive(Debug, Clone)]
pub struct PacingOutcome {
    /// Mean transfers in flight per tick.
    pub mean_in_flight: f64,
    /// Peak transfers in flight (burstiness — the quantity that hurts).
    pub peak_in_flight: u64,
}

/// Simulates `files` files refreshing with mean period `mean_period` over
/// `horizon` ticks, each transfer occupying `transfer_time` ticks.
/// `exponential` selects the paper's pacing; `false` uses a fixed period
/// (files start in phase, as they do after a mass onboarding).
pub fn refresh_pacing(
    files: usize,
    mean_period: f64,
    transfer_time: u64,
    horizon: u64,
    exponential: bool,
    seed: u64,
) -> PacingOutcome {
    let mut rng = DetRng::from_seed_label(seed, "pacing");
    // Next refresh time per file.
    let mut next: Vec<u64> = (0..files)
        .map(|_| {
            if exponential {
                rng.sample_exp(mean_period) as u64
            } else {
                mean_period as u64 // lockstep: everyone at t = period
            }
        })
        .collect();
    let mut in_flight_until: Vec<u64> = vec![0; files];
    let mut total_in_flight: u64 = 0;
    let mut peak: u64 = 0;
    for t in 0..horizon {
        let mut current = 0u64;
        for i in 0..files {
            if next[i] == t {
                in_flight_until[i] = t + transfer_time;
                next[i] = t + if exponential {
                    rng.sample_exp(mean_period).max(1.0) as u64
                } else {
                    mean_period as u64
                };
            }
            if in_flight_until[i] > t {
                current += 1;
            }
        }
        total_in_flight += current;
        peak = peak.max(current);
    }
    PacingOutcome {
        mean_in_flight: total_in_flight as f64 / horizon as f64,
        peak_in_flight: peak,
    }
}

/// Renders the pacing ablation.
pub fn render_pacing(files: usize, seed: u64) -> String {
    let mut table = TextTable::new(vec![
        "policy",
        "mean transfers in flight",
        "peak transfers in flight",
    ]);
    let exp = refresh_pacing(files, 200.0, 10, 2_000, true, seed);
    let fixed = refresh_pacing(files, 200.0, 10, 2_000, false, seed);
    table.row(vec![
        "Exp(AvgRefresh) (paper)".into(),
        format!("{:.1}", exp.mean_in_flight),
        exp.peak_in_flight.to_string(),
    ]);
    table.row(vec![
        "fixed period".into(),
        format!("{:.1}", fixed.mean_in_flight),
        fixed.peak_in_flight.to_string(),
    ]);
    table.render()
}

/// Outcome of the subnet ablation: replicas needed for a workload.
#[derive(Debug, Clone)]
pub struct SubnetOutcome {
    /// Total replicas without subnets (`k·value/minValue` each).
    pub replicas_flat: u64,
    /// Total replicas with §VI-D level routing.
    pub replicas_subnets: u64,
}

/// Computes replica counts for a Zipf-value workload with and without
/// value-level subnets (`levels` levels, factor 10).
pub fn subnet_replicas(files: usize, k: u32, levels: u32, seed: u64) -> SubnetOutcome {
    let mut rng = DetRng::from_seed_label(seed, "subnet-workload");
    let mut flat = 0u64;
    let mut routed = 0u64;
    for _ in 0..files {
        // Zipf-ish value in minValue units: 10^(levels·u²) truncated.
        let exponent = (levels as f64) * rng.f64() * rng.f64();
        let value_units = 10f64.powf(exponent).round().max(1.0) as u64;
        flat += k as u64 * value_units;
        // Route to the highest level with minValue_level ≤ value.
        let level = (value_units as f64)
            .log10()
            .floor()
            .min((levels - 1) as f64) as u32;
        let level_unit = 10u64.pow(level);
        routed += k as u64 * value_units.div_ceil(level_unit);
    }
    SubnetOutcome {
        replicas_flat: flat,
        replicas_subnets: routed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_pacing_kills_bursts() {
        let exp = refresh_pacing(2_000, 200.0, 10, 2_000, true, 9);
        let fixed = refresh_pacing(2_000, 200.0, 10, 2_000, false, 9);
        // Same mean load…
        assert!(
            (exp.mean_in_flight - fixed.mean_in_flight).abs() < 0.5 * fixed.mean_in_flight.max(1.0),
            "means {} vs {}",
            exp.mean_in_flight,
            fixed.mean_in_flight
        );
        // …but lockstep pacing bursts the whole fleet at once.
        assert_eq!(fixed.peak_in_flight, 2_000);
        assert!(exp.peak_in_flight < 400, "exp peak {}", exp.peak_in_flight);
    }

    #[test]
    fn subnets_cut_replica_cost() {
        let out = subnet_replicas(5_000, 10, 3, 10);
        assert!(
            out.replicas_subnets * 3 < out.replicas_flat,
            "subnets {} vs flat {}",
            out.replicas_subnets,
            out.replicas_flat
        );
        // And never below k per file.
        assert!(out.replicas_subnets >= 5_000 * 10);
    }

    #[test]
    fn render_pacing_has_both_rows() {
        let text = render_pacing(500, 11);
        assert!(text.contains("Exp(AvgRefresh)"));
        assert!(text.contains("fixed period"));
    }
}
