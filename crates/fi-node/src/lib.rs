//! The networked node layer: mempool → proposer → `apply_batch`, with
//! follower replay over `fi-net`.
//!
//! PR 4 proved `Engine::apply_batch` bit-identical to op-by-op `apply` on
//! synthetic batches; this crate closes the loop the paper's §III-D and §V
//! claims actually live on — *network* block production:
//!
//! * [`mempool`] — deterministic admission (nonce, duplicate, funds,
//!   capacity) and fee-ordered, gas-bounded block selection
//!   ([`fi_core::params::ProtocolParams::block_gas_limit`] /
//!   `block_ops_limit`, priced by the [`fi_chain::gas`] schedule);
//! * [`node`] — the [`node::Proposer`] process seals one block per
//!   [`fi_core::params::ProtocolParams::block_interval`] through
//!   `Engine::apply_batch` and broadcasts it with bounded retransmit
//!   ([`fi_net::Retransmitter`]); [`node::Follower`]s replay and verify
//!   `state_root` / head hash / receipt root per height, buffer reordered
//!   blocks, dedup retransmits, and can cold-start mid-run from the
//!   proposer's durable snapshot plus op-log suffix;
//! * [`client`] — a chain-watching workload driver deriving realistic
//!   adds/confirms/proves/gets/discards from its replayed view, via the
//!   same sweep views `fi_sim::harness` scenarios use;
//! * [`cluster`] — assembly of all of the above into one deterministic
//!   [`fi_net::World`].
//!
//! Consensus safety in one sentence: a block is nothing but an ordered op
//! list, the engine is a deterministic function of applied ops, and PR 3/4
//! made that function invariant across shard counts, ingest threads and
//! both replay paths — so followers that replay the proposer's op
//! sequence reproduce its roots bit-for-bit, network chaos and all
//! (asserted per height by `tests/node_pipeline.rs`; DESIGN.md §11).

pub mod client;
pub mod cluster;
pub mod mempool;
pub mod node;

pub use client::{ClientDriver, ClientReport, WorkloadConfig};
pub use cluster::{build_cluster, genesis_engine, run_cluster, ClusterConfig, ClusterReports};
pub use mempool::{AdmitError, Mempool, MempoolStats, Tx};
pub use node::{
    Follower, FollowerReport, FollowerStart, NodeMsg, Proposer, ProposerReport, ReplayMode,
    SealedBlock,
};
