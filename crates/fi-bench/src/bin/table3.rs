//! Regenerates Table III: maximum capacity usage of sectors.

use fi_sim::table3::{render, run_table3};
use fi_sim::Scale;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = Scale::from_args(&args);
    println!(
        "{}",
        fi_bench::banner(
            "Table III — maximum capacity usage of sectors",
            "FileInsurer (ICDCS'22), Table III / §V-B.2"
        )
    );
    if scale == Scale::Default {
        println!("scaled mode: Ncp capped at 1e6, 20 realloc rounds, 10x refresh multiplier\n");
    }
    let results = run_table3(scale);
    println!("{}", render(&results));
    println!("paper reference values (top block, [1] column): 0.525 0.571 0.538 0.591 0.540 0.589 0.541 0.591");
    println!("expected shape: values in [0.50, 0.65]; larger Ns at fixed Ncp => larger max usage.");
}
