//! The crate-wide error hierarchy.
//!
//! The engine's subsystems keep their own precise error enums — request
//! handling ([`EngineError`]), snapshot decoding ([`SnapshotError`]),
//! parameter validation ([`ParamError`]), and the content-addressed state
//! store ([`StoreError`]) — and the APIs that can fail across more than
//! one of those layers (delta snapshots, pinned state reads, state
//! proofs) return this umbrella [`Error`]. `From` impls make `?`
//! conversion seamless in both directions of the layering.

use crate::engine::{EngineError, SnapshotError};
use crate::params::ParamError;
use fi_store::StoreError;

/// Any error the `fi-core` public API can produce.
///
/// Marked `#[non_exhaustive]`: subsystems added later (e.g. a network
/// sync layer) get their own variant without a breaking release, so
/// downstream `match`es must carry a wildcard arm.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A protocol request was rejected by the engine.
    Engine(EngineError),
    /// A snapshot (full or delta) failed to decode or validate.
    Snapshot(SnapshotError),
    /// Parameter or argument validation failed.
    Param(ParamError),
    /// The content-addressed blockstore failed, or stored/proven state
    /// bytes were corrupt.
    Store(StoreError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Engine(e) => write!(f, "engine: {e}"),
            Error::Snapshot(e) => write!(f, "snapshot: {e}"),
            Error::Param(e) => write!(f, "params: {e}"),
            Error::Store(e) => write!(f, "store: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Engine(e) => Some(e),
            Error::Snapshot(e) => Some(e),
            Error::Param(e) => Some(e),
            Error::Store(e) => Some(e),
        }
    }
}

impl From<EngineError> for Error {
    fn from(e: EngineError) -> Self {
        Error::Engine(e)
    }
}

impl From<SnapshotError> for Error {
    fn from(e: SnapshotError) -> Self {
        Error::Snapshot(e)
    }
}

impl From<ParamError> for Error {
    fn from(e: ParamError) -> Self {
        Error::Param(e)
    }
}

impl From<StoreError> for Error {
    fn from(e: StoreError) -> Self {
        Error::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = EngineError::InsufficientFunds.into();
        assert_eq!(e, Error::Engine(EngineError::InsufficientFunds));
        let e: Error = SnapshotError::Truncated.into();
        assert!(e.to_string().starts_with("snapshot:"));
        let e: Error = StoreError::Corrupt("x").into();
        assert!(e.to_string().contains("x"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
