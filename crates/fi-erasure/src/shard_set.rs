//! A contiguous, flat shard buffer.
//!
//! The seed erasure API moved `Vec<Vec<u8>>` everywhere: one heap allocation
//! per shard, cloned on encode, cloned again on reconstruct. [`ShardSet`]
//! replaces that with **one** allocation of `shards × shard_len` bytes laid
//! out row-major, so
//!
//! * encode writes parity in place with zero copies of the data shards,
//! * reconstruct recomputes only the erased rows,
//! * consumers (segment commitments, hashing, network transfer) can read
//!   each shard as a borrowed slice of the flat buffer — or the whole buffer
//!   at once.

/// A fixed-shape set of equal-length shards in one contiguous allocation.
///
/// Row `i` (shard `i`) occupies bytes `i*shard_len .. (i+1)*shard_len` of
/// the flat buffer. Data shards conventionally come first, parity after,
/// matching [`crate::ReedSolomon`]'s systematic layout.
///
/// # Example
///
/// ```
/// use fi_erasure::ShardSet;
///
/// let mut set = ShardSet::new(3, 4);
/// set.shard_mut(1).copy_from_slice(b"abcd");
/// assert_eq!(set.shard(1), b"abcd");
/// assert_eq!(set.flat().len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSet {
    shards: usize,
    shard_len: usize,
    buf: Vec<u8>,
}

impl ShardSet {
    /// A zero-filled set of `shards` shards of `shard_len` bytes each.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(shards: usize, shard_len: usize) -> Self {
        assert!(shards > 0, "a shard set needs at least one shard");
        ShardSet {
            shards,
            shard_len,
            buf: vec![0u8; shards * shard_len],
        }
    }

    /// Wraps an existing flat buffer (`shards` rows of equal length).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `buf.len()` is not a multiple of `shards`.
    pub fn from_flat(buf: Vec<u8>, shards: usize) -> Self {
        assert!(shards > 0, "a shard set needs at least one shard");
        assert_eq!(
            buf.len() % shards,
            0,
            "flat buffer must divide into equal shards"
        );
        ShardSet {
            shards,
            shard_len: buf.len() / shards,
            buf,
        }
    }

    /// Lays `payload` out over the first `data_shards` rows of a new
    /// `total_shards`-row set, zero-padding the tail. The shard length is
    /// `ceil(payload.len() / data_shards)` (min 1), matching
    /// [`crate::ReedSolomon::encode_bytes`].
    ///
    /// Unlike the seed path, this is a bulk `copy_from_slice` — no per-byte
    /// division/modulo addressing.
    ///
    /// # Panics
    ///
    /// Panics if `data_shards == 0` or `total_shards < data_shards`.
    pub fn from_payload(payload: &[u8], data_shards: usize, total_shards: usize) -> Self {
        assert!(data_shards > 0, "need at least one data shard");
        assert!(
            total_shards >= data_shards,
            "total must include the data shards"
        );
        let shard_len = payload.len().div_ceil(data_shards).max(1);
        let mut set = ShardSet::new(total_shards, shard_len);
        set.buf[..payload.len()].copy_from_slice(payload);
        set
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// Length of every shard.
    pub fn shard_len(&self) -> usize {
        self.shard_len
    }

    /// Shard `i` as a borrowed slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn shard(&self, i: usize) -> &[u8] {
        assert!(i < self.shards, "shard index {i} out of {}", self.shards);
        &self.buf[i * self.shard_len..(i + 1) * self.shard_len]
    }

    /// Shard `i` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn shard_mut(&mut self, i: usize) -> &mut [u8] {
        assert!(i < self.shards, "shard index {i} out of {}", self.shards);
        &mut self.buf[i * self.shard_len..(i + 1) * self.shard_len]
    }

    /// The whole buffer, row-major.
    pub fn flat(&self) -> &[u8] {
        &self.buf
    }

    /// The whole buffer, mutably.
    pub fn flat_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }

    /// Consumes the set, returning the flat buffer.
    pub fn into_flat(self) -> Vec<u8> {
        self.buf
    }

    /// Iterates the shards as borrowed slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u8]> {
        (0..self.shards).map(move |i| self.shard(i))
    }

    /// Copies the shards out into the seed `Vec<Vec<u8>>` shape (for
    /// interop with the owning API; the fast paths never call this).
    pub fn to_vecs(&self) -> Vec<Vec<u8>> {
        (0..self.shards).map(|i| self.shard(i).to_vec()).collect()
    }

    /// Borrows shard `target` mutably and shard `source` immutably at the
    /// same time, passing both to `f` — the aliasing-safe primitive that
    /// lets reconstruction accumulate into one row while streaming others.
    ///
    /// # Panics
    ///
    /// Panics if `target == source` or either index is out of bounds.
    pub fn with_rows<R>(
        &mut self,
        target: usize,
        source: usize,
        f: impl FnOnce(&mut [u8], &[u8]) -> R,
    ) -> R {
        assert!(
            target < self.shards && source < self.shards,
            "row out of bounds"
        );
        assert_ne!(target, source, "target and source rows must differ");
        let len = self.shard_len;
        if target < source {
            let (head, tail) = self.buf.split_at_mut(source * len);
            f(&mut head[target * len..(target + 1) * len], &tail[..len])
        } else {
            let (head, tail) = self.buf.split_at_mut(target * len);
            f(&mut tail[..len], &head[source * len..(source + 1) * len])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_and_accessors() {
        let mut set = ShardSet::new(4, 3);
        for i in 0..4 {
            set.shard_mut(i).fill(i as u8);
        }
        assert_eq!(set.flat(), &[0, 0, 0, 1, 1, 1, 2, 2, 2, 3, 3, 3]);
        assert_eq!(set.shard(2), &[2, 2, 2]);
        let rows: Vec<&[u8]> = set.iter().collect();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[3], &[3, 3, 3]);
        assert_eq!(set.to_vecs()[1], vec![1, 1, 1]);
    }

    #[test]
    fn from_payload_pads_and_places() {
        let set = ShardSet::from_payload(b"abcdefg", 3, 5);
        assert_eq!(set.shard_len(), 3); // ceil(7/3)
        assert_eq!(set.shard_count(), 5);
        assert_eq!(set.shard(0), b"abc");
        assert_eq!(set.shard(1), b"def");
        assert_eq!(set.shard(2), &[b'g', 0, 0]);
        assert_eq!(set.shard(3), &[0, 0, 0]);
    }

    #[test]
    fn empty_payload_gets_min_length_one() {
        let set = ShardSet::from_payload(b"", 3, 6);
        assert_eq!(set.shard_len(), 1);
        assert_eq!(set.flat(), &[0u8; 6]);
    }

    #[test]
    fn with_rows_borrows_disjoint_pairs_both_directions() {
        let mut set = ShardSet::new(3, 2);
        set.shard_mut(0).copy_from_slice(&[1, 2]);
        set.shard_mut(2).copy_from_slice(&[10, 20]);
        set.with_rows(1, 0, |dst, src| dst.copy_from_slice(src));
        assert_eq!(set.shard(1), &[1, 2]);
        set.with_rows(1, 2, |dst, src| {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= s;
            }
        });
        assert_eq!(set.shard(1), &[11, 22]);
    }

    #[test]
    #[should_panic(expected = "target and source rows must differ")]
    fn with_rows_rejects_aliasing() {
        let mut set = ShardSet::new(2, 1);
        set.with_rows(1, 1, |_, _| ());
    }

    #[test]
    fn from_flat_round_trips() {
        let set = ShardSet::from_flat(vec![9u8; 8], 2);
        assert_eq!(set.shard_len(), 4);
        assert_eq!(set.clone().into_flat(), vec![9u8; 8]);
    }
}
