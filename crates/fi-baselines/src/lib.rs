//! Executable baseline models of the DSN protocols FileInsurer is compared
//! against in Table IV: **Filecoin**, **Storj**, **Sia**, **Arweave** —
//! plus a lightweight placement-level model of FileInsurer itself.
//!
//! Each model answers the same three questions through one trait,
//! [`DsnModel`]:
//!
//! 1. **Placement** — where do a workload's file replicas/shards land, and
//!    how many survivors does each file need (`1` for replication,
//!    `data_shards` for erasure coding)?
//! 2. **Sybil structure** — which logical storage nodes are secretly the
//!    same physical entity? (Sia lacks a proof-of-replication, so a Sybil
//!    entity can back many logical nodes with one disk; the PoRep-based
//!    designs cannot.)
//! 3. **Money** — what deposits exist and how much of a loss is
//!    compensated? (FileInsurer: full compensation from confiscated
//!    deposits; Filecoin: deposits are *burned*, clients get at most a fee
//!    refund; Storj/Sia/Arweave: no loss compensation.)
//!
//! A shared adversary ([`common::corrupt_nodes`]) corrupts nodes totalling
//! `λ` of capacity under several strategies (random, capacity-weighted,
//! greedy file-killer), and [`common::evaluate_loss`] computes the lost
//! value. `fi-sim`'s `table4` experiment runs all five models through
//! identical workloads and prints the measured comparison table.

pub mod arweave;
pub mod common;
pub mod filecoin;
pub mod fileinsurer;
pub mod sia;
pub mod storj;

pub use common::{
    corrupt_nodes, evaluate_loss, AdversaryStrategy, FileSpec, LossReport, NetworkSpec, Placement,
};

use fi_crypto::DetRng;

/// Compensation behaviour of a protocol, for the Table IV "Compensation
/// for File Loss" column.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Compensation {
    /// Lost files are fully paid out from confiscated deposits.
    Full {
        /// Deposit pledged per unit of stored value (the deposit ratio).
        deposit_ratio: f64,
    },
    /// Only a limited refund (fraction of the *fee*, not the value).
    Limited {
        /// Fraction of lost value recovered in expectation.
        recovered_fraction: f64,
    },
    /// No compensation at all.
    None,
}

/// A DSN protocol model.
pub trait DsnModel {
    /// Protocol name as it appears in Table IV.
    fn name(&self) -> &'static str;

    /// Places a workload onto the network; deterministic given `rng`.
    fn place(&self, net: &NetworkSpec, files: &[FileSpec], rng: &mut DetRng) -> Placement;

    /// Whether one physical entity can back multiple logical nodes without
    /// detection (Table IV "Preventing Sybil Attacks" = `!sybil_vulnerable`).
    fn sybil_vulnerable(&self) -> bool;

    /// Whether the protocol's loss under a capacity-`λ` adversary carries a
    /// proven bound (Table IV "Provable Robustness").
    fn provable_robustness(&self) -> bool;

    /// Compensation behaviour (Table IV "Compensation for File Loss").
    fn compensation(&self) -> Compensation;

    /// Amount paid back to clients when `lost_value` of files is lost and
    /// `corrupted_capacity_value` worth of deposits was confiscated.
    fn compensate(&self, lost_value: f64, confiscated_deposits: f64) -> f64 {
        match self.compensation() {
            Compensation::Full { .. } => lost_value.min(confiscated_deposits),
            Compensation::Limited { recovered_fraction } => lost_value * recovered_fraction,
            Compensation::None => 0.0,
        }
    }
}

/// All five models with the paper's parameters (`k` replicas per file for
/// the replication-based designs, `(k/2, k)` erasure coding for Storj).
pub fn all_models(k: u32) -> Vec<Box<dyn DsnModel>> {
    vec![
        Box::new(fileinsurer::FileInsurerModel::new(k, 0.0046)),
        Box::new(filecoin::FilecoinModel::new(k)),
        Box::new(arweave::ArweaveModel::new(k)),
        Box::new(storj::StorjModel::new((k / 2).max(1), k.max(2))),
        Box::new(sia::SiaModel::new(k, 4)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_have_unique_names() {
        let models = all_models(8);
        let names: Vec<_> = models.iter().map(|m| m.name()).collect();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn table_iv_property_flags() {
        // The qualitative rows of Table IV.
        let models = all_models(8);
        for m in &models {
            match m.name() {
                "FileInsurer" => {
                    assert!(!m.sybil_vulnerable());
                    assert!(m.provable_robustness());
                    assert!(matches!(m.compensation(), Compensation::Full { .. }));
                }
                "Filecoin" => {
                    assert!(!m.sybil_vulnerable());
                    assert!(!m.provable_robustness());
                    assert!(matches!(m.compensation(), Compensation::Limited { .. }));
                }
                "Arweave" | "Storj" => {
                    assert!(!m.sybil_vulnerable());
                    assert!(!m.provable_robustness());
                    assert!(matches!(m.compensation(), Compensation::None));
                }
                "Sia" => {
                    assert!(m.sybil_vulnerable());
                    assert!(!m.provable_robustness());
                    assert!(matches!(m.compensation(), Compensation::None));
                }
                other => panic!("unexpected model {other}"),
            }
        }
    }

    #[test]
    fn compensate_respects_pool() {
        let fi = fileinsurer::FileInsurerModel::new(8, 0.0046);
        assert_eq!(fi.compensate(100.0, 1000.0), 100.0);
        assert_eq!(fi.compensate(100.0, 40.0), 40.0);
        let storj = storj::StorjModel::new(4, 8);
        assert_eq!(storj.compensate(100.0, 1000.0), 0.0);
    }
}
