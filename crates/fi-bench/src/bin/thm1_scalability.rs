//! Verifies Theorem 1: capacity scalability of FileInsurer.

use fi_sim::scalability::{render, run_all, ScalabilityConfig};

fn main() {
    println!(
        "{}",
        fi_bench::banner(
            "Theorem 1 — capacity scalability",
            "FileInsurer (ICDCS'22), Theorem 1 / §V-B.1"
        )
    );
    let config = ScalabilityConfig::default();
    println!(
        "Ns={} sectors x minCapacity={}, k={}, capPara={}\n",
        config.ns, config.min_capacity, config.k, config.cap_para
    );
    let rows = run_all(&config);
    println!("{}", render(&rows));
    println!("expected shape: measured/predicted ~ 1.0; binding restriction switches");
    println!("between 'capacity' and 'value' with the workload's r1/r2 balance.");
}
