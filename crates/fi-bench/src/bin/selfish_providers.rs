//! §VI-E experiment: refreshing defeats selfish storage providers.

use fi_sim::selfish::render_comparison;

fn main() {
    println!(
        "{}",
        fi_bench::banner(
            "Selfish storage providers vs the refresh mechanism",
            "FileInsurer (ICDCS'22), §VI-E"
        )
    );
    println!("20000 files, 500 sectors, k=3 replicas, 50 refresh epochs\n");
    println!("{}", render_comparison(20_000, 500, 3, 50, 0x5E1F));
    println!("expected shape: with static placement, alpha^k of files are *permanently*");
    println!("controlled by selfish providers; with refresh, permanent capture vanishes");
    println!("while the transient per-epoch capture stays at the memoryless alpha^k.");
}
