//! Protocol parameters (Table I and §IV of the paper) and derived formulas.

use fi_chain::account::TokenAmount;
use fi_chain::tasks::{SchedulerKind, Time};

/// All tunable constants of a FileInsurer deployment.
///
/// Field names follow the paper's notation (Table I / Table II) translated
/// to snake_case. Sizes are abstract units (think megabytes); time is
/// abstract ticks; money is [`TokenAmount`] base units.
///
/// # Example
///
/// ```
/// use fi_core::params::ProtocolParams;
/// let p = ProtocolParams::default();
/// assert_eq!(p.backup_count(p.min_value).unwrap(), p.k);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolParams {
    /// `minCapacity`: smallest sector size; sector capacities must be
    /// integer multiples of this.
    pub min_capacity: u64,
    /// `minValue`: smallest file value; file values must be integer
    /// multiples of this.
    pub min_value: TokenAmount,
    /// `k`: replicas stored for a file of value `minValue`.
    pub k: u32,
    /// `capPara = Nm_v / Ns`: designed value-capacity ratio.
    pub cap_para: u64,
    /// `γ_deposit` in parts-per-million (e.g. 4600 = 0.46%).
    pub gamma_deposit_ppm: u64,
    /// `ProofCycle`: interval between storage-proof checks.
    pub proof_cycle: Time,
    /// `ProofDue`: proofs older than this incur punishment.
    pub proof_due: Time,
    /// `ProofDeadline`: proofs older than this corrupt the sector.
    pub proof_deadline: Time,
    /// `AvgRefresh`: mean number of proof cycles between location
    /// refreshes of a file (exponentially distributed).
    pub avg_refresh: f64,
    /// `DelayPerSize`: allowed transfer time per size unit.
    pub delay_per_size: Time,
    /// Storage rent per size unit per replica per proof cycle.
    pub unit_rent: TokenAmount,
    /// Traffic fee per size unit transferred (§IV-A.1).
    pub traffic_fee_per_size: TokenAmount,
    /// Prepaid gas per file per proof cycle (§IV-A.3).
    pub gas_prepay_per_cycle: TokenAmount,
    /// Rent-distribution period, in proof cycles (§IV-A.2).
    pub rent_period_cycles: u32,
    /// `sizeLimit`: files larger than this must be erasure-segmented
    /// (§VI-C).
    pub size_limit: u64,
    /// Punishment for a late (but not deadline-exceeding) proof, in ppm of
    /// the sector's deposit.
    pub punish_ppm: u64,
    /// Maximum re-samples when a chosen sector lacks space in `File_Add`
    /// ("almost never happens" — Fig. 4).
    pub collision_retry_limit: u32,
    /// §VI-B: on sector registration, swap a Poisson-distributed number of
    /// existing backups into the new sector to preserve the i.i.d.
    /// allocation distribution.
    pub poisson_rebalance: bool,
    /// Master seed for all protocol randomness (beacon genesis).
    pub seed: u64,
    /// Consensus block interval in time ticks.
    pub block_interval: Time,
    /// Pending-list implementation for `Auto_*` tasks. The epoch-bucketed
    /// wheel is the default; the BTreeMap variant is kept for like-for-like
    /// benchmarking and differential tests — consensus execution is
    /// identical either way.
    pub scheduler: SchedulerKind,
    /// Engine shard count: per-file state (descriptors, allocation entries,
    /// task wheel) is partitioned by `FileId % shards`, and the read-only
    /// verify phase of `Auto_CheckProof` fans out across shards. Consensus
    /// results are bit-identical for every shard count (see DESIGN.md §9),
    /// so this is a deployment/performance knob, not a consensus parameter.
    ///
    /// Defaults to `1`, or to the `FI_TEST_SHARDS` environment variable when
    /// set (the CI matrix runs the whole test suite at 1 and 8 shards).
    pub shards: usize,
    /// Modeled Merkle path length of one storage-proof verification: the
    /// number of path nodes `Auto_CheckProof`'s verify phase walks per
    /// audited replica (the simulated WindowPoSt verification cost, the
    /// parallelizable part of an audit).
    pub audit_path_len: u32,
    /// Worker threads for the pipelined batch-ingest path
    /// ([`crate::engine::Engine::apply_batch`]): shard-local ops in a batch
    /// are staged concurrently by up to this many scoped threads before the
    /// sequential commit phase merges them back in submission order.
    /// Consensus results are bit-identical at every thread count (see
    /// DESIGN.md §10), so — like [`ProtocolParams::shards`] — this is a
    /// deployment/performance knob, not a consensus parameter.
    ///
    /// Defaults to `1`, or to the `FI_TEST_INGEST_THREADS` environment
    /// variable when set (the CI matrix runs the whole suite at 1 and 4
    /// ingest threads crossed with 1 and 8 shards).
    pub ingest_threads: usize,
    /// Maximum transactions a node's mempool holds; submissions beyond the
    /// cap are rejected at admission. Node-local backpressure, not a
    /// consensus parameter — two nodes with different caps still agree on
    /// every sealed block they replay.
    pub mempool_cap: usize,
    /// Gas budget of one produced block: the proposer stops selecting
    /// mempool transactions once their summed [`fi_chain::gas`] upper
    /// bounds reach this limit (§III-B.4's "clear gas used upper bound"
    /// applied to block building).
    pub block_gas_limit: u64,
    /// Maximum transactions selected into one produced block (the size
    /// bound complementing [`ProtocolParams::block_gas_limit`]).
    pub block_ops_limit: usize,
    /// How many blocks a mempool rejection tombstone (a burned nonce) is
    /// retained before the account's nonce frontier may be advanced past
    /// it. Bounds the tombstone set over long runs and un-wedges accounts
    /// whose lower nonces were committed via another node's pool. Like
    /// [`ProtocolParams::mempool_cap`], node-local admission policy, not a
    /// consensus parameter.
    pub tombstone_retention_blocks: u64,
}

/// Largest permitted [`ProtocolParams::shards`] value.
pub const MAX_SHARDS: usize = 256;

/// Largest permitted [`ProtocolParams::ingest_threads`] value.
pub const MAX_INGEST_THREADS: usize = 64;

/// `FI_TEST_SHARDS` override for `Default`. Any unusable value —
/// non-numeric, zero, above [`MAX_SHARDS`] — falls back to 1, so
/// `ProtocolParams::default()` always validates regardless of the
/// environment (explicitly-set `shards` fields are still range-checked by
/// `validate`).
fn default_shards() -> usize {
    std::env::var("FI_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|s| (1..=MAX_SHARDS).contains(s))
        .unwrap_or(1)
}

/// `FI_TEST_INGEST_THREADS` override for `Default`, with the same
/// fall-back-to-1 contract as [`default_shards`].
fn default_ingest_threads() -> usize {
    std::env::var("FI_TEST_INGEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|t| (1..=MAX_INGEST_THREADS).contains(t))
        .unwrap_or(1)
}

impl Default for ProtocolParams {
    /// Laptop-scale defaults preserving the paper's ratios: `k = 20`
    /// replicas per `minValue`, `capPara = 1000`, deposit ratio 0.46%
    /// (the Theorem 4 example), `ProofDue = 2` cycles and
    /// `ProofDeadline = 4` cycles.
    fn default() -> Self {
        ProtocolParams {
            min_capacity: 64,
            min_value: TokenAmount(1_000),
            k: 20,
            cap_para: 1_000,
            gamma_deposit_ppm: 4_600,
            proof_cycle: 100,
            proof_due: 200,
            proof_deadline: 400,
            avg_refresh: 10.0,
            delay_per_size: 1,
            unit_rent: TokenAmount(1),
            traffic_fee_per_size: TokenAmount(1),
            gas_prepay_per_cycle: TokenAmount(5),
            rent_period_cycles: 10,
            size_limit: 32,
            punish_ppm: 10_000,
            collision_retry_limit: 64,
            poisson_rebalance: false,
            seed: 0xF11E_1245,
            block_interval: 10,
            scheduler: SchedulerKind::Wheel,
            shards: default_shards(),
            audit_path_len: 8,
            ingest_threads: default_ingest_threads(),
            mempool_cap: 8_192,
            block_gas_limit: 1_000_000,
            block_ops_limit: 4_096,
            tombstone_retention_blocks: 32,
        }
    }
}

/// Validation errors for parameters and request arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// A value that must be a positive multiple of another is not.
    NotAMultiple {
        /// What was being validated.
        what: &'static str,
        /// The offending value.
        value: u128,
        /// The required divisor.
        of: u128,
    },
    /// A parameter is out of its legal range.
    OutOfRange {
        /// What was being validated.
        what: &'static str,
    },
}

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamError::NotAMultiple { what, value, of } => {
                write!(f, "{what} = {value} must be a positive multiple of {of}")
            }
            ParamError::OutOfRange { what } => write!(f, "{what} out of range"),
        }
    }
}

impl std::error::Error for ParamError {}

impl ProtocolParams {
    /// Checks internal consistency (positive periods, due < deadline, …).
    ///
    /// # Errors
    ///
    /// [`ParamError::OutOfRange`] naming the first violated constraint.
    pub fn validate(&self) -> Result<(), ParamError> {
        if self.min_capacity == 0 {
            return Err(ParamError::OutOfRange {
                what: "min_capacity",
            });
        }
        if self.min_value.is_zero() {
            return Err(ParamError::OutOfRange { what: "min_value" });
        }
        if self.k == 0 {
            return Err(ParamError::OutOfRange { what: "k" });
        }
        if self.proof_cycle == 0 {
            return Err(ParamError::OutOfRange {
                what: "proof_cycle",
            });
        }
        if self.proof_due < self.proof_cycle || self.proof_deadline <= self.proof_due {
            return Err(ParamError::OutOfRange {
                what: "proof windows",
            });
        }
        if self.avg_refresh <= 0.0 {
            return Err(ParamError::OutOfRange {
                what: "avg_refresh",
            });
        }
        if self.rent_period_cycles == 0 {
            return Err(ParamError::OutOfRange {
                what: "rent_period_cycles",
            });
        }
        if self.block_interval == 0 {
            return Err(ParamError::OutOfRange {
                what: "block_interval",
            });
        }
        if self.gamma_deposit_ppm == 0 {
            return Err(ParamError::OutOfRange {
                what: "gamma_deposit_ppm",
            });
        }
        if self.shards == 0 || self.shards > MAX_SHARDS {
            return Err(ParamError::OutOfRange { what: "shards" });
        }
        if self.audit_path_len == 0 {
            return Err(ParamError::OutOfRange {
                what: "audit_path_len",
            });
        }
        if self.ingest_threads == 0 || self.ingest_threads > MAX_INGEST_THREADS {
            return Err(ParamError::OutOfRange {
                what: "ingest_threads",
            });
        }
        if self.mempool_cap == 0 {
            return Err(ParamError::OutOfRange {
                what: "mempool_cap",
            });
        }
        if self.block_gas_limit == 0 {
            return Err(ParamError::OutOfRange {
                what: "block_gas_limit",
            });
        }
        if self.block_ops_limit == 0 {
            return Err(ParamError::OutOfRange {
                what: "block_ops_limit",
            });
        }
        if self.tombstone_retention_blocks == 0 {
            return Err(ParamError::OutOfRange {
                what: "tombstone_retention_blocks",
            });
        }
        Ok(())
    }

    /// `backupCnt(val)` from Fig. 4: `f.cp = k · value / minValue`.
    ///
    /// # Errors
    ///
    /// [`ParamError::NotAMultiple`] unless `value` is a positive multiple
    /// of `minValue` (§IV-C.1).
    pub fn backup_count(&self, value: TokenAmount) -> Result<u32, ParamError> {
        if value.is_zero() || !value.0.is_multiple_of(self.min_value.0) {
            return Err(ParamError::NotAMultiple {
                what: "file value",
                value: value.0,
                of: self.min_value.0,
            });
        }
        let multiples = value.0 / self.min_value.0;
        u32::try_from(multiples)
            .ok()
            .and_then(|m| m.checked_mul(self.k))
            .ok_or(ParamError::OutOfRange { what: "file value" })
    }

    /// Validates a sector capacity (positive multiple of `minCapacity`).
    ///
    /// # Errors
    ///
    /// [`ParamError::NotAMultiple`] on violation.
    pub fn validate_capacity(&self, capacity: u64) -> Result<(), ParamError> {
        if capacity == 0 || !capacity.is_multiple_of(self.min_capacity) {
            return Err(ParamError::NotAMultiple {
                what: "sector capacity",
                value: capacity as u128,
                of: self.min_capacity as u128,
            });
        }
        Ok(())
    }

    /// The deposit pledged for a sector of `capacity` (§IV-B):
    /// `capacity · γ_deposit · capPara · minValue / minCapacity`.
    pub fn sector_deposit(&self, capacity: u64) -> TokenAmount {
        let raw = capacity as u128
            * self.gamma_deposit_ppm as u128
            * self.cap_para as u128
            * self.min_value.0
            / self.min_capacity as u128
            / 1_000_000u128;
        TokenAmount(raw)
    }

    /// Transfer window for a file of `size`: `DelayPerSize × size` (Fig. 4).
    pub fn transfer_window(&self, size: u64) -> Time {
        self.delay_per_size.saturating_mul(size).max(1)
    }

    /// Per-cycle cost charged to the client for one file (rent for all
    /// replicas plus prepaid gas; §IV-A).
    pub fn cycle_cost(&self, size: u64, cp: u32) -> TokenAmount {
        TokenAmount(self.unit_rent.0 * size as u128 * cp as u128) + self.gas_prepay_per_cycle
    }

    /// Traffic fee for transferring one replica of `size` (§IV-A.1).
    pub fn traffic_fee(&self, size: u64) -> TokenAmount {
        TokenAmount(self.traffic_fee_per_size.0 * size as u128)
    }

    /// Punishment amount for a late proof, given the sector's pledged
    /// deposit.
    pub fn punishment(&self, deposit: TokenAmount) -> TokenAmount {
        deposit.mul_ratio(self.punish_ppm as u128, 1_000_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_params_validate() {
        ProtocolParams::default().validate().unwrap();
    }

    #[test]
    fn backup_count_scales_with_value() {
        let p = ProtocolParams::default();
        assert_eq!(p.backup_count(TokenAmount(1_000)).unwrap(), 20);
        assert_eq!(p.backup_count(TokenAmount(3_000)).unwrap(), 60);
        assert!(p.backup_count(TokenAmount(1_500)).is_err());
        assert!(p.backup_count(TokenAmount::ZERO).is_err());
    }

    #[test]
    fn capacity_validation() {
        let p = ProtocolParams::default();
        assert!(p.validate_capacity(64).is_ok());
        assert!(p.validate_capacity(640).is_ok());
        assert!(p.validate_capacity(0).is_err());
        assert!(p.validate_capacity(65).is_err());
    }

    #[test]
    fn deposit_matches_paper_formula() {
        let p = ProtocolParams::default();
        // capacity=128: 128 · (4600/1e6) · 1000 · 1000 / 64 = 9_200.
        assert_eq!(p.sector_deposit(128), TokenAmount(9_200));
        // Deposit is linear in capacity.
        assert_eq!(p.sector_deposit(256).0, 2 * p.sector_deposit(128).0);
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = ProtocolParams::default();
        p.proof_deadline = p.proof_due; // deadline must exceed due
        assert_eq!(
            p.validate(),
            Err(ParamError::OutOfRange {
                what: "proof windows"
            })
        );
        let p = ProtocolParams {
            k: 0,
            ..ProtocolParams::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn cycle_cost_and_fees() {
        let p = ProtocolParams::default();
        assert_eq!(p.cycle_cost(10, 20), TokenAmount(10 * 20 + 5));
        assert_eq!(p.traffic_fee(10), TokenAmount(10));
        assert_eq!(p.transfer_window(10), 10);
        assert_eq!(p.transfer_window(0), 1, "window never zero");
        assert_eq!(p.punishment(TokenAmount(1_000_000)), TokenAmount(10_000));
    }

    #[test]
    fn shard_and_audit_params_validated() {
        let p = ProtocolParams {
            shards: 0,
            ..ProtocolParams::default()
        };
        assert_eq!(p.validate(), Err(ParamError::OutOfRange { what: "shards" }));
        let p = ProtocolParams {
            shards: MAX_SHARDS + 1,
            ..ProtocolParams::default()
        };
        assert!(p.validate().is_err());
        let p = ProtocolParams {
            audit_path_len: 0,
            ..ProtocolParams::default()
        };
        assert_eq!(
            p.validate(),
            Err(ParamError::OutOfRange {
                what: "audit_path_len"
            })
        );
        for shards in [1, 4, 8, MAX_SHARDS] {
            let p = ProtocolParams {
                shards,
                ..ProtocolParams::default()
            };
            p.validate().unwrap();
        }
    }

    #[test]
    fn ingest_thread_param_validated() {
        for bad in [0usize, MAX_INGEST_THREADS + 1] {
            let p = ProtocolParams {
                ingest_threads: bad,
                ..ProtocolParams::default()
            };
            assert_eq!(
                p.validate(),
                Err(ParamError::OutOfRange {
                    what: "ingest_threads"
                })
            );
        }
        for threads in [1, 4, MAX_INGEST_THREADS] {
            let p = ProtocolParams {
                ingest_threads: threads,
                ..ProtocolParams::default()
            };
            p.validate().unwrap();
        }
    }

    #[test]
    fn node_params_validated() {
        for (field, p) in [
            (
                "mempool_cap",
                ProtocolParams {
                    mempool_cap: 0,
                    ..ProtocolParams::default()
                },
            ),
            (
                "block_gas_limit",
                ProtocolParams {
                    block_gas_limit: 0,
                    ..ProtocolParams::default()
                },
            ),
            (
                "block_ops_limit",
                ProtocolParams {
                    block_ops_limit: 0,
                    ..ProtocolParams::default()
                },
            ),
            (
                "tombstone_retention_blocks",
                ProtocolParams {
                    tombstone_retention_blocks: 0,
                    ..ProtocolParams::default()
                },
            ),
        ] {
            assert_eq!(p.validate(), Err(ParamError::OutOfRange { what: field }));
        }
    }

    #[test]
    fn error_display() {
        let e = ParamError::NotAMultiple {
            what: "file value",
            value: 1500,
            of: 1000,
        };
        assert!(e.to_string().contains("multiple of 1000"));
    }
}
